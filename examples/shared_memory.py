#!/usr/bin/env python3
"""Shared memory over VMMC: a two-party bounded buffer, no messages.

Section 2 lists shared memory among the models VMMC supports.  Two
processes bind mirror-image segments to each other; after that there
are no sends and no receives — just stores that appear on the other
side (with remote-update latency) and watch-assisted spinning on flags.

A producer fills a 4-entry ring in the shared segment; a consumer
drains it; head/tail indices are the only synchronization, each written
by exactly one party (the single-writer discipline the hardware's
update model requires).

Run:  python examples/shared_memory.py
"""

import struct

from repro.libs.shmem import SharedRegion
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096
SLOTS = 4
SLOT_BYTES = 64
ITEMS = 10

# Segment layout: [slots][head][tail]
HEAD_OFF = SLOTS * SLOT_BYTES          # written by the producer only
TAIL_OFF = HEAD_OFF + 4                # written by the consumer only


def _u32(value: int) -> bytes:
    return struct.pack("<I", value)


def main() -> None:
    system = make_system()
    rdv = Rendezvous(system)

    def producer(proc):
        ep = attach(system, proc)
        seg = yield from SharedRegion.join(ep, rdv, "ring", PAGE, member=0)
        head = 0
        for item in range(ITEMS):
            # Wait for a free slot (consumer publishes its tail).
            while True:
                raw = yield from seg.read(TAIL_OFF, 4)
                (tail,) = struct.unpack("<I", raw)
                if head - tail < SLOTS:
                    break
                yield from seg.wait_change(TAIL_OFF, 4, raw)
            payload = ("item-%02d" % item).encode().ljust(SLOT_BYTES, b".")
            yield from seg.write((head % SLOTS) * SLOT_BYTES, payload)
            head += 1
            yield from seg.write(HEAD_OFF, _u32(head))  # publish after data
        print("[producer @ %8.1f us] produced %d items, no messages sent"
              % (proc.sim.now, ITEMS))

    def consumer(proc):
        ep = attach(system, proc)
        seg = yield from SharedRegion.join(ep, rdv, "ring", PAGE, member=1)
        tail = 0
        got = []
        while tail < ITEMS:
            while True:
                raw = yield from seg.read(HEAD_OFF, 4)
                (head,) = struct.unpack("<I", raw)
                if head > tail:
                    break
                yield from seg.wait_change(HEAD_OFF, 4, raw)
            data = yield from seg.read((tail % SLOTS) * SLOT_BYTES, SLOT_BYTES)
            got.append(data.rstrip(b".").decode())
            tail += 1
            yield from seg.write(TAIL_OFF, _u32(tail))  # free the slot
        print("[consumer @ %8.1f us] drained: %s ... %s"
              % (proc.sim.now, got[0], got[-1]))
        assert got == ["item-%02d" % i for i in range(ITEMS)]

    p = system.spawn(0, producer, name="producer")
    c = system.spawn(1, consumer, name="consumer")
    system.run_processes([p, c])
    stats = system.machine.stats()
    print("done at t=%.1f us; backplane carried %d bytes of updates"
          % (system.sim.now, stats["bytes_routed"]))


if __name__ == "__main__":
    main()
