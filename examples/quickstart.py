#!/usr/bin/env python3
"""Quickstart: raw virtual memory-mapped communication.

Boots the 4-node SHRIMP prototype, establishes an import-export mapping
between two processes, and moves data with both transfer strategies:

* deliberate update — an explicit (blocking) send;
* automatic update — plain stores to a bound region propagate with no
  send call at all.

Run:  python examples/quickstart.py
      python examples/quickstart.py --trace out.json   # + Chrome trace

With ``--trace PATH`` the run executes with the machine tracer enabled
and writes a Chrome ``trace_event`` JSON (open in chrome://tracing or
https://ui.perfetto.dev) plus the per-resource utilization report; see
docs/OBSERVABILITY.md.
"""

import sys

from repro.hardware.config import CacheMode
from repro.testbed import Rendezvous, make_system
from repro.vmmc import attach

PAGE = 4096


def main(trace_path: str = "") -> None:
    system = make_system()          # the 4-node calibrated prototype
    if trace_path:
        system.machine.tracer.enabled = True
    rdv = Rendezvous(system)        # out-of-band bootstrap channel

    def receiver(proc):
        ep = attach(system, proc)
        # Export one page as a receive buffer and publish its id.
        buf = yield from ep.export_new(PAGE)
        rdv.put("export", (proc.node.node_id, buf.export_id))

        # There is no receive call in VMMC: data just appears.  Poll the
        # flag word the sender writes last (in-order delivery means the
        # payload is complete once the flag shows up).
        yield from proc.poll(buf.vaddr + 60, 4, lambda b: b == b"del!")
        deliberate = proc.peek(buf.vaddr, 64)
        print("[node %d @ %7.2f us] deliberate update delivered: %r"
              % (proc.node.node_id, proc.sim.now, deliberate[:20]))

        yield from proc.poll(buf.vaddr + 124, 4, lambda b: b == b"aut!")
        automatic = proc.peek(buf.vaddr + 64, 64)
        print("[node %d @ %7.2f us] automatic update delivered:  %r"
              % (proc.node.node_id, proc.sim.now, automatic[:20]))

    def sender(proc):
        ep = attach(system, proc)
        node, export_id = yield rdv.get("export")
        imported = yield from ep.import_buffer(node, export_id)

        # --- deliberate update: explicit transfer from our memory ----
        src = ep.alloc_buffer(PAGE)
        yield from proc.write(src, b"deliberate update msg".ljust(60) + b"del!")
        yield from ep.send(imported, src, 64)
        print("[node %d @ %7.2f us] deliberate update sent (64 B)"
              % (proc.node.node_id, proc.sim.now))

        # --- automatic update: bind once, then plain stores send -----
        bound = ep.alloc_buffer(PAGE, cache_mode=CacheMode.WRITE_THROUGH)
        yield from ep.bind(bound, imported, offset=0)
        # Writes at offset 64.. of the bound region land at offset 64..
        # of the remote buffer; no send call follows.
        yield from proc.write(bound + 64,
                              b"automatic update msg!".ljust(60) + b"aut!")
        print("[node %d @ %7.2f us] automatic update written (64 B, no send call)"
              % (proc.node.node_id, proc.sim.now))

    r = system.spawn(1, receiver, name="receiver")
    s = system.spawn(0, sender, name="sender")
    system.run_processes([r, s])
    stats = system.machine.stats()
    print("\ndone at t=%.2f us; %d packets crossed the mesh (%d bytes)"
          % (system.sim.now, stats["packets_routed"], stats["bytes_routed"]))
    if trace_path:
        from repro.sim import write_chrome_trace

        path = write_chrome_trace(system.machine.tracer, trace_path)
        print("\n%s" % system.machine.utilization_report(min_count=1))
        print("\nwrote %s (open in chrome://tracing or https://ui.perfetto.dev)"
              % path)


if __name__ == "__main__":
    out = ""
    if "--trace" in sys.argv:
        index = sys.argv.index("--trace")
        if index + 1 >= len(sys.argv):
            sys.exit("usage: quickstart.py [--trace PATH]")
        out = sys.argv[index + 1]
    main(out)
