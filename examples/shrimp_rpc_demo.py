#!/usr/bin/env python3
"""Specialized SHRIMP RPC example: IDL -> generated stubs -> fast calls.

Shows the whole Section 5 pipeline:

1. an interface definition file for a tiny matrix service;
2. the stub generator's output (actual Python source);
3. a server and client using the generated classes, with OUT/INOUT
   parameters returned implicitly by automatic update;
4. a head-to-head null-call latency comparison against the
   SunRPC-compatible VRPC (the Figure 8 story).

Run:  python examples/shrimp_rpc_demo.py
"""

from repro.libs.rpc import VrpcServer, clnt_create
from repro.libs.shrimp_rpc import compile_stubs, generate_stubs
from repro.testbed import make_system

IDL = """
program Matrix version 1 {
    void ping();
    double scale(inout double row[4], in double factor);
    int checksum(in opaque<64> data);
}
"""


class MatrixImpl:
    """Server-side implementation: generator methods, by-reference
    OUT/INOUT parameters."""

    def ping(self):
        return None
        yield  # pragma: no cover

    def scale(self, row, factor):
        values = yield from row.get()
        scaled = [v * factor for v in values]
        yield from row.set(scaled)       # propagates back via AU
        return sum(scaled)

    def checksum(self, data):
        return sum(data) & 0x7FFFFFFF
        yield  # pragma: no cover


def main() -> None:
    print("=== generated client stub (excerpt) ===")
    source = generate_stubs(IDL)
    in_client = False
    for line in source.splitlines():
        if line.startswith("class MatrixClient"):
            in_client = True
        if line.startswith("class MatrixServer"):
            break
        if in_client:
            print(line)

    system = make_system()
    client_cls, server_cls, idl = compile_stubs(IDL)
    timing = {}

    def server(proc):
        srv = server_cls(system, proc, MatrixImpl())
        yield from srv.serve_binding(port=3)
        yield from srv.run(max_calls=14)

    def client(proc):
        cl = client_cls(system, proc)
        yield from cl.bind(1, port=3)

        total = yield from cl.scale([1.0, 2.0, 3.0, 4.0], 2.5)
        print("\nscale(): server returned sum=%.1f" % total[0])
        print("         INOUT row came back as %s" % (total[1],))

        crc = yield from cl.checksum(b"specialized rpc!" * 4)
        print("checksum() = %d" % crc)

        # Latency: 10 timed null calls.
        yield from cl.ping()
        yield from cl.ping()
        start = proc.sim.now
        for _ in range(10):
            yield from cl.ping()
        timing["srpc"] = (proc.sim.now - start) / 10

    s = system.spawn(1, server, name="matrix-server")
    c = system.spawn(0, client, name="matrix-client")
    system.run_processes([s, c])

    # The compatible system, for comparison.
    system2 = make_system()

    def vrpc_server(proc):
        srv = VrpcServer(system2, proc, 0x300, 1)
        srv.register(0, lambda args: None)
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=12)

    def vrpc_client(proc):
        handle = yield from clnt_create(system2, proc, 1, 0x300, 1)
        yield from handle.call(0)
        yield from handle.call(0)
        start = proc.sim.now
        for _ in range(10):
            yield from handle.call(0)
        timing["vrpc"] = (proc.sim.now - start) / 10

    system2.run_processes([
        system2.spawn(1, vrpc_server),
        system2.spawn(0, vrpc_client),
    ])

    print("\nnull-call round trips:")
    print("  SHRIMP RPC (non-compatible): %5.2f us   (paper:  9.5)"
          % timing["srpc"])
    print("  VRPC (SunRPC-compatible):    %5.2f us   (paper: 29.0)"
          % timing["vrpc"])
    print("  speedup: %.1fx" % (timing["vrpc"] / timing["srpc"]))


if __name__ == "__main__":
    main()
