#!/usr/bin/env python3
"""NX example: 1-D Jacobi heat diffusion on all four nodes.

The classic multicomputer workload NX was built for: each rank owns a
strip of a 1-D rod, exchanges halo cells with its neighbours via typed
csend/crecv every iteration, and a tree reduction reports global
convergence.  Exactly the structure an Intel Paragon application would
have — unchanged, since the library is NX-compatible.

Run:  python examples/nx_stencil.py
"""

import struct

from repro.libs.collectives import reduce_int
from repro.libs.nx import VARIANTS, nx_world
from repro.testbed import make_system

PAGE = 4096
CELLS_PER_RANK = 16
ITERATIONS = 200
HALO_LEFT, HALO_RIGHT = 101, 102


def encode(values):
    return struct.pack("<%dd" % len(values), *values)


def decode(raw, n):
    return list(struct.unpack("<%dd" % n, raw[: 8 * n]))


def stencil_rank(nx):
    me, size = nx.mynode(), nx.numnodes()
    proc = nx.proc
    buf = proc.space.mmap(PAGE)
    halo = proc.space.mmap(PAGE)

    # Initial condition: rank 0 holds a hot spike at the left end.
    strip = [0.0] * CELLS_PER_RANK
    if me == 0:
        strip[0] = 1000.0

    for _step in range(ITERATIONS):
        # Exchange halos with neighbours (typed messages both ways).
        left, right = me - 1, me + 1
        if right < size:
            proc.poke(buf, encode([strip[-1]]))
            yield from nx.csend(HALO_RIGHT, buf, 8, to=right)
        if left >= 0:
            proc.poke(buf, encode([strip[0]]))
            yield from nx.csend(HALO_LEFT, buf, 8, to=left)
        left_halo = strip[0]
        right_halo = strip[-1]
        if left >= 0:
            yield from nx.crecv(HALO_RIGHT, halo, PAGE)
            left_halo = decode(proc.peek(halo, 8), 1)[0]
        if right < size:
            yield from nx.crecv(HALO_LEFT, halo, PAGE)
            right_halo = decode(proc.peek(halo, 8), 1)[0]

        # Jacobi update.
        padded = [left_halo] + strip + [right_halo]
        strip = [
            (padded[i - 1] + padded[i + 1]) / 2.0
            for i in range(1, CELLS_PER_RANK + 1)
        ]

    # Global diagnostic: total heat (scaled to int for the reduction).
    local_heat = int(sum(strip) * 1000)
    total = yield from reduce_int(nx, local_heat, lambda a, b: a + b)
    if me == 0:
        print("rank 0: total heat after %d iterations = %.3f (conserved≈1000)"
              % (ITERATIONS, total / 1000.0))
        print("rank 0: strip head = %s"
              % ["%.2f" % v for v in strip[:6]])
    return sum(strip)


def main() -> None:
    system = make_system()
    handles = nx_world(system, [stencil_rank] * 4, variant=VARIANTS["AU-1copy"])
    system.run_processes(handles)
    per_rank = [h.value for h in handles]
    print("per-rank heat: %s" % ["%.2f" % v for v in per_rank])
    print("simulated time: %.1f us; messages: csend/crecv across %d halo exchanges"
          % (system.sim.now, ITERATIONS))


if __name__ == "__main__":
    main()
