#!/usr/bin/env python3
"""Sockets example: a ttcp-style streaming transfer with live accounting.

A producer on node 0 streams a large buffer through a BSD-compatible
stream socket to a consumer on node 1, which verifies the byte stream
and reports throughput — the Section 4.3 methodology.  Connection
establishment runs over the (slow) commodity Ethernet; the data never
touches it.

Run:  python examples/sockets_streaming.py
"""

from repro.libs.sockets import SOCKET_VARIANTS, SocketLib
from repro.testbed import make_system

PAGE = 4096
MESSAGE = 7168          # ttcp's 7 KB writes
COUNT = 32              # 224 KB total, many times the 8 KB ring
PORT = 5001


def pattern(total: int) -> bytes:
    return bytes((i * 131 + 17) % 256 for i in range(total))


def main() -> None:
    for variant in ("DU-1copy", "AU-2copy"):
        system = make_system()
        report = {}

        def consumer(proc, variant=variant, report=report):
            lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant],
                            ring_bytes=8192)
            listener = lib.listen(PORT)
            sock = yield from listener.accept()
            started = proc.sim.now
            buf = proc.space.mmap(2 * PAGE)
            received = bytearray()
            while True:
                got = yield from sock.recv(buf, 2 * PAGE)
                if got == 0:
                    break
                received += proc.peek(buf, got)
            elapsed = proc.sim.now - started
            expected = pattern(MESSAGE) * COUNT
            report["ok"] = bytes(received) == expected
            report["bytes"] = len(received)
            report["mb_s"] = len(received) / elapsed

        def producer(proc, variant=variant):
            lib = SocketLib(system, proc, variant=SOCKET_VARIANTS[variant],
                            ring_bytes=8192)
            sock = yield from lib.connect(1, PORT)
            src = proc.space.mmap(2 * PAGE)
            proc.poke(src, pattern(MESSAGE))
            for _ in range(COUNT):
                yield from sock.send(src, MESSAGE)
            yield from sock.close()

        c = system.spawn(1, consumer, name="consumer")
        p = system.spawn(0, producer, name="producer")
        system.run_processes([c, p])
        print("%-8s  %6d bytes  stream intact: %-5s  one-way %.2f MB/s"
              % (variant, report["bytes"], report["ok"], report["mb_s"]))
    print("\n(paper, real hardware: ttcp peaked at 8.6 MB/s with 7 KB writes;")
    print(" the simulated receive path overlaps copy-out with incoming DMA,")
    print(" so the model lands higher — see EXPERIMENTS.md)")


if __name__ == "__main__":
    main()
