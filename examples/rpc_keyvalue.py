#!/usr/bin/env python3
"""VRPC example: a key-value store served over SunRPC-compatible RPC.

A server on node 1 registers GET/PUT/DELETE/STATS procedures with real
XDR stubs (what rpcgen would emit); clients on nodes 0 and 2 bind and
issue calls.  Every message on the wire is a genuine RFC 1057 SunRPC
call or reply carried over the VMMC cyclic stream queues.

Run:  python examples/rpc_keyvalue.py
"""

from repro.libs.rpc import VrpcServer, clnt_create
from repro.libs.rpc.xdr import XdrDecoder, XdrEncoder
from repro.testbed import make_system

PROG, VERS = 0x2000BEEF, 1
GET, PUT, DELETE, STATS = 1, 2, 3, 4


# --- stubs (the encode/decode code rpcgen would generate) ----------------

def enc_key(enc: XdrEncoder, key: str) -> None:
    enc.pack_string(key)


def dec_key(dec: XdrDecoder) -> str:
    return dec.unpack_string()


def enc_pair(enc: XdrEncoder, pair) -> None:
    enc.pack_string(pair[0])
    enc.pack_opaque(pair[1])


def dec_pair(dec: XdrDecoder):
    return dec.unpack_string(), dec.unpack_opaque()


def enc_maybe_value(enc: XdrEncoder, value) -> None:
    enc.pack_optional(value, XdrEncoder.pack_opaque)


def dec_maybe_value(dec: XdrDecoder):
    return dec.unpack_optional(XdrDecoder.unpack_opaque)


def enc_stats(enc: XdrEncoder, stats) -> None:
    enc.pack_uint(stats[0])
    enc.pack_uint(stats[1])


def dec_stats(dec: XdrDecoder):
    return dec.unpack_uint(), dec.unpack_uint()


def main() -> None:
    system = make_system()
    store = {}
    calls = {"n": 0}

    def server(proc):
        srv = VrpcServer(system, proc, PROG, VERS, automatic=True)

        def get(key):
            calls["n"] += 1
            return store.get(key)

        def put(pair):
            calls["n"] += 1
            key, value = pair
            store[key] = value
            return None

        def delete(key):
            calls["n"] += 1
            return store.pop(key, None)

        def stats(_):
            calls["n"] += 1
            return len(store), calls["n"]

        srv.register(GET, get, decode_args=dec_key, encode_result=enc_maybe_value)
        srv.register(PUT, put, decode_args=dec_pair)
        srv.register(DELETE, delete, decode_args=dec_key,
                     encode_result=enc_maybe_value)
        srv.register(STATS, stats, encode_result=enc_stats)

        # Serve the writer's binding (4 calls), then the reader's (6).
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=4)
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=6)

    def writer(proc):
        client = yield from clnt_create(system, proc, 1, PROG, VERS)
        for key, value in (("alpha", b"1"), ("beta", b"22"), ("gamma", b"333")):
            yield from client.call(PUT, (key, value), enc_pair)
        print("[writer @ %8.1f us] stored 3 keys" % proc.sim.now)
        removed = yield from client.call(DELETE, "beta", enc_key, dec_maybe_value)
        print("[writer @ %8.1f us] deleted beta (was %r)" % (proc.sim.now, removed))

    def reader(proc):
        yield from proc.compute(8000.0)  # bind after the writer finishes
        client = yield from clnt_create(system, proc, 1, PROG, VERS)
        for key in ("alpha", "beta", "gamma", "delta"):
            value = yield from client.call(GET, key, enc_key, dec_maybe_value)
            print("[reader @ %8.1f us] GET %-5s -> %r" % (proc.sim.now, key, value))
        count, served = yield from client.call(STATS, decode_result=dec_stats)
        print("[reader @ %8.1f us] server holds %d keys after %d calls"
              % (proc.sim.now, count, served))
        remaining = yield from client.call(GET, "alpha", enc_key, dec_maybe_value)
        assert remaining == b"1"

    s = system.spawn(1, server, name="kv-server")
    w = system.spawn(0, writer, name="kv-writer")
    r = system.spawn(2, reader, name="kv-reader")
    system.run_processes([s, w, r])
    print("done at t=%.1f us" % system.sim.now)


if __name__ == "__main__":
    main()
