"""Generator-based simulation processes.

A simulation *process* is a Python generator that yields :class:`Event`
objects (or other processes — a :class:`Process` is itself an event that
triggers on completion).  Yielding suspends the process until the event
triggers; the event's value is sent back into the generator, and a failed
event has its exception thrown in.

This is the execution model for everything active in the SHRIMP model:
user programs, the SHRIMP daemons, DMA engines, router pipelines, and the
benchmark drivers.  Library calls (``csend``, ``clnt_call``, ``send``...)
are written as generator functions that the application process delegates
to with ``yield from``, mirroring the paper's "runs entirely at user level"
structure: the library code literally executes on the application process.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from .core import URGENT, Event, SimulationError, Simulator, Timeout

__all__ = ["Interrupt", "Process", "spawn"]


class Interrupt(Exception):
    """Thrown into a process that gets interrupted mid-wait.

    Used to model asynchronous control transfer — most importantly signal
    delivery to a process blocked in the notification layer.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running generator, usable as an event that fires at completion.

    The process's value is the generator's return value (``StopIteration``
    payload); an uncaught exception inside the generator fails the process
    event, propagating to any process waiting on it.  An exception with no
    waiters is re-raised out of the event loop so bugs never pass silently.
    """

    __slots__ = ("_generator", "_waiting_on", "_interrupts")

    def __init__(self, sim: Simulator, generator: Generator, name: str = ""):
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                "Process requires a generator; got %r. Did you call a plain "
                "function instead of a generator function?" % (generator,)
            )
        self._generator = generator
        self._waiting_on: Optional[Event] = None
        self._interrupts: list = []
        # Kick off on the event loop (not synchronously) for determinism.
        sim.schedule_call(0.0, self._resume, None)

    # -- lifecycle -------------------------------------------------------
    @property
    def is_alive(self) -> bool:
        """True until the generator finishes or raises."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is an error.  Multiple interrupts
        queue up and are delivered one per resumption.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt finished process %r" % (self,))
        self._interrupts.append(cause)
        self.sim.schedule_call(0.0, self._deliver_interrupt)

    def _deliver_interrupt(self) -> None:
        if self.triggered or not self._interrupts:
            return
        cause = self._interrupts.pop(0)
        waited = self._waiting_on
        if waited is not None:
            self._waiting_on = None
            # The event may still fire later; detach our resumption so the
            # process isn't resumed twice.
            if waited.callbacks is not None and self._event_done in waited.callbacks:
                waited.callbacks.remove(self._event_done)
        self._advance(Interrupt(cause), throwing=True)

    # -- generator driving -------------------------------------------------
    def _resume(self, send_value: Any) -> None:
        self._advance(send_value)

    def _event_done(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale callback (we were interrupted away from it)
        self._waiting_on = None
        if event._ok:
            self._advance(event._value)
        else:
            # Throwing the exception into the waiter is consumption: the
            # failure has an owner now.
            event._defused = True
            self._advance(event._value, throwing=True)

    def _advance(self, payload: Any, throwing: bool = False) -> None:
        try:
            if throwing:
                target = self._generator.throw(payload)
            else:
                target = self._generator.send(payload)
        except StopIteration as stop:
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:
            self._crash(exc)
            return
        if target.__class__ is not Timeout and not isinstance(target, Event):
            exc = TypeError(
                "process %r yielded %r; processes must yield Event objects "
                "(Timeout, Event, Process, resource requests, ...)" % (self.name, target)
            )
            self._generator.close()
            self._crash(exc)
            return
        if target.sim is not self.sim:
            self._generator.close()
            self._crash(SimulationError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        # Inlined Event.add_callback: this runs once per process step and
        # the attribute dance is measurable at workload scale.
        callbacks = target.callbacks
        if callbacks is None:
            self.sim.schedule_call(0.0, self._event_done, target, priority=URGENT)
        else:
            callbacks.append(self._event_done)

    def _crash(self, exc: BaseException) -> None:
        if self.callbacks:
            # Someone is waiting on us: propagate as a failed event.
            self.fail(exc)
        else:
            # Nobody listening — surface the bug loudly.
            self._triggered = True
            self._ok = False
            self._value = exc
            raise exc


def spawn(sim: Simulator, generator: Generator, name: str = "") -> Process:
    """Start ``generator`` as a new simulation process."""
    return Process(sim, generator, name=name)
