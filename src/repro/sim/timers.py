"""Slotted and coalesced timers over the DES core.

The raw :meth:`Simulator.timeout` API is fire-and-forget: every armed
timer is one immutable heap entry that *will* dispatch, even when the
thing it guarded already happened.  Two recurring timer shapes in the
SHRIMP model pay for that:

* **Bounded waits** (hardened retransmission deadlines, ``poll`` with a
  deadline): the waiter usually wakes early, and each loop iteration
  re-arms a fresh full-window timeout at the *same* absolute deadline.
  N early wakes leave N dead entries that all dispatch as stale no-ops.
  :class:`TimerWheel` keys timers by their exact deadline float, so
  every re-arm at the same instant shares ONE scheduler entry, and
  :meth:`TimerWheel.cancel` is an O(1) flag flip — no heap surgery.

* **Idle timeouts** (the packetizer's user-programmable combining
  timer): the deadline slides forward with every write, but re-arming
  per write would be O(writes) heap churn.  :class:`IdleTimer` arms
  once for the full window and *re-checks* on expiry — if activity
  landed meanwhile it sleeps only the remainder, so the entry count
  scales with expiries, not with writes.

Both classes are pure sugar over :meth:`Simulator.schedule_call`; they
introduce no new event ordering.  A wheel slot's scheduler entry is
created when its first timer registers (so it carries that
registration's ``seq``), and a slot's callbacks run in registration
order — exactly where the equivalent individual timeouts would have
dispatched.  The deadline arithmetic repeats the float operations of
the open-coded versions verbatim (``now + (deadline - now)``;
``timeout - idle``), keeping the zero-regression goldens byte-identical
(see docs/SIMULATOR.md, "Determinism rules").
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from .core import Simulator

__all__ = ["TimerWheel", "IdleTimer"]

# A registered timer: [fn, args].  Cancellation nulls the fn in place,
# which is why the handle can stay O(1) — the slot list never shrinks.
_Cell = list
TimerHandle = Tuple[float, _Cell]


class TimerWheel:
    """Float-keyed timer slots with shared entries and O(1) cancel.

    Unlike the classic fixed-tick hashed wheel, slots are keyed by the
    *exact* deadline float: the simulator is discrete-event, so there
    is no tick quantum to round to, and exactness is what lets a re-arm
    at the same instant coalesce onto the existing entry without
    perturbing the report timeline.
    """

    __slots__ = ("sim", "_slots")

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._slots: Dict[float, List[_Cell]] = {}

    def at(self, deadline: float, fn: Callable, *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` at absolute sim time ``deadline``.

        The first registration for a given deadline schedules the one
        underlying entry (via ``schedule_call(deadline - now, ...)`` —
        the same float arithmetic an open-coded
        ``timeout(deadline - now)`` performs); later registrations at
        the same float ride that entry for free.  Returns a handle for
        :meth:`cancel`.
        """
        cell: _Cell = [fn, args]
        slot = self._slots.get(deadline)
        if slot is None:
            self._slots[deadline] = [cell]
            self.sim.schedule_call(deadline - self.sim.now, self._fire, deadline)
        else:
            slot.append(cell)
        return (deadline, cell)

    def cancel(self, handle: TimerHandle) -> None:
        """Disarm a timer returned by :meth:`at` (O(1), idempotent).

        The shared scheduler entry still dispatches at its instant (the
        heap is immutable), but a cancelled cell is skipped — the stale
        callback never runs, unlike a raw abandoned :class:`Timeout`
        whose callbacks must each carry their own staleness guard.
        """
        handle[1][0] = None

    def pending(self, deadline: float) -> int:
        """Live (uncancelled) timers currently registered at ``deadline``."""
        slot = self._slots.get(deadline)
        if not slot:
            return 0
        return sum(1 for cell in slot if cell[0] is not None)

    def _fire(self, deadline: float) -> None:
        # Dispatch half: pop the whole slot, run survivors in
        # registration order.  Callbacks may re-register at the same
        # float — that starts a fresh slot (and a fresh entry), which
        # is the behaviour an open-coded re-arm would have too.
        slot = self._slots.pop(deadline, None)
        if not slot:
            return
        for cell in slot:
            fn = cell[0]
            if fn is not None:
                fn(*cell[1])


class IdleTimer:
    """A coalesced idle-timeout timer (the combining-timer shape).

    Arms once for the full idle window and lazily re-checks on expiry:
    ``probe()`` reports the guarded object's ``(timeout, last_activity)``
    (or ``None`` when nothing is guarded any more), and ``expire()``
    fires the timeout action.  If activity landed since arming, the
    timer sleeps only the remainder — so a stream of W writes under one
    timer window costs O(expiries) scheduler entries, not O(W).

    The expiry test uses a clock-scaled tolerance: ``now -
    last_activity`` loses up to one ulp of ``now``, and at large sim
    times a fixed epsilon would be smaller than that rounding error —
    the timer would then re-arm by a sub-ulp remainder forever.
    """

    __slots__ = ("sim", "_probe", "_expire", "_armed")

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], Optional[Tuple[float, float]]],
        expire: Callable[[], None],
    ):
        self.sim = sim
        self._probe = probe
        self._expire = expire
        self._armed = False

    @property
    def armed(self) -> bool:
        """Whether a wake is currently scheduled."""
        return self._armed

    def arm(self, timeout: float) -> None:
        """Schedule an expiry check ``timeout`` from now (no-op if armed)."""
        if self._armed:
            return
        self._armed = True
        self.sim.schedule_call(timeout, self._fired)

    def _fired(self) -> None:
        self._armed = False
        probed = self._probe()
        if probed is None:
            return
        timeout, last_activity = probed
        idle = self.sim.now - last_activity
        tolerance = 1e-9 * max(1.0, self.sim.now)
        if idle + tolerance >= timeout:
            self._expire()
        else:
            # Activity landed since arming; re-check after the remainder.
            self._armed = True
            self.sim.schedule_call(timeout - idle, self._fired)
