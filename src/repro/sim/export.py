"""Trace exporters: Chrome ``trace_event`` JSON and text summaries.

Converts a :class:`~repro.sim.trace.Tracer`'s spans and point events
into the Trace Event Format consumed by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev).  Simulated time is microseconds
throughout the project, which is exactly the ``ts``/``dur`` unit the
format specifies, so timestamps pass through unscaled.

Track naming: a span's ``track`` string splits at its first dot into
(process, thread) — ``"n0.cpu.p1"`` renders as thread ``cpu.p1`` of
process ``n0``.  Process/thread names are emitted as ``M`` (metadata)
events, as the format requires, with small integer pids/tids.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple, Union

from .trace import Span, Tracer

__all__ = [
    "chrome_trace_events",
    "chrome_trace_dict",
    "chrome_trace_json",
    "write_chrome_trace",
    "validate_chrome_trace",
]

_VALID_PHASES = set("BEXiIPNODMCbnestfSTFR")


def _split_track(track: str) -> Tuple[str, str]:
    if "." in track:
        pid, tid = track.split(".", 1)
    else:
        pid = tid = track
    return pid, tid


class _IdAllocator:
    """Stable small-integer ids for (process, thread) track names."""

    def __init__(self):
        self.pids: Dict[str, int] = {}
        self.tids: Dict[Tuple[str, str], int] = {}

    def ids_for(self, track: str) -> Tuple[int, int]:
        """The (pid, tid) integers for one track string."""
        pname, tname = _split_track(track)
        pid = self.pids.setdefault(pname, len(self.pids) + 1)
        tid = self.tids.setdefault((pname, tname), len(self.tids) + 1)
        return pid, tid

    def metadata_events(self) -> List[dict]:
        """The process_name/thread_name M events for every track seen."""
        events: List[dict] = []
        for pname, pid in sorted(self.pids.items(), key=lambda kv: kv[1]):
            events.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                           "args": {"name": pname}})
        for (pname, tname), tid in sorted(self.tids.items(), key=lambda kv: kv[1]):
            events.append({"ph": "M", "name": "thread_name",
                           "pid": self.pids[pname], "tid": tid,
                           "args": {"name": tname}})
        return events


def _span_args(span: Span) -> dict:
    args = dict(span.data) if isinstance(span.data, dict) else (
        {} if span.data is None else {"data": span.data})
    if span.parent is not None:
        args["parent_sid"] = span.parent
    args["sid"] = span.sid
    return args


def chrome_trace_events(tracer: Tracer, include_logs: bool = True) -> List[dict]:
    """The tracer's contents as a list of Trace Event Format dicts.

    Spans become ``X`` (complete) events; still-open spans are closed
    at the simulator's current time and flagged ``{"open": true}``.
    Spans carrying an ``xparent`` causal edge additionally emit an
    ``s``/``f`` flow-event pair so cross-node request trees render as
    arrows.  Legacy :meth:`~repro.sim.trace.Tracer.log` records become
    ``i`` (instant) events when ``include_logs`` is set.
    """
    ids = _IdAllocator()
    events: List[dict] = []
    flows: List[dict] = []
    by_sid = {span.sid: span for span in tracer.spans}
    flow_id = 0
    now = tracer.sim.now
    for span in tracer.spans:
        pid, tid = ids.ids_for(span.track)
        args = _span_args(span)
        if not span.closed:
            args["open"] = True
        events.append({
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": span.start,
            "dur": max(0.0, span.duration(now)),
            "pid": pid,
            "tid": tid,
            "args": args,
        })
        # Causal cross-wire edges ("xparent" span data, written by the
        # context-propagation layer) render as flow arrows: an s event
        # anchored inside the parent slice, an f event at the child.
        data = span.data if isinstance(span.data, dict) else None
        if data is not None and "xparent" in data:
            parent = by_sid.get(data["xparent"])
            if parent is not None:
                flow_id += 1
                ppid, ptid = ids.ids_for(parent.track)
                flows.append({
                    "name": span.category, "cat": "flow", "ph": "s",
                    "id": flow_id, "ts": parent.start,
                    "pid": ppid, "tid": ptid,
                })
                flows.append({
                    "name": span.category, "cat": "flow", "ph": "f",
                    "bp": "e", "id": flow_id, "ts": span.start,
                    "pid": pid, "tid": tid,
                })
    if include_logs:
        for record in tracer.records:
            pid, tid = ids.ids_for("log." + record.category)
            events.append({
                "name": record.message,
                "cat": record.category,
                "ph": "i",
                "s": "g",
                "ts": record.time,
                "pid": pid,
                "tid": tid,
                "args": {} if record.data is None else {"data": repr(record.data)},
            })
    return ids.metadata_events() + events + flows


def chrome_trace_dict(tracer: Tracer, include_logs: bool = True) -> dict:
    """The full JSON-object form: ``{"traceEvents": [...], ...}``."""
    return {
        "traceEvents": chrome_trace_events(tracer, include_logs=include_logs),
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.sim.export", "time_unit": "us"},
    }


def chrome_trace_json(tracer: Tracer, include_logs: bool = True,
                      indent: Optional[int] = None) -> str:
    """The trace serialized as a Chrome-loadable JSON string."""
    return json.dumps(chrome_trace_dict(tracer, include_logs=include_logs),
                      indent=indent)


def write_chrome_trace(tracer: Tracer, path, include_logs: bool = True) -> str:
    """Write the Chrome trace JSON to ``path``; returns the path as str."""
    text = chrome_trace_json(tracer, include_logs=include_logs)
    with open(str(path), "w") as fh:
        fh.write(text + "\n")
    return str(path)


def validate_chrome_trace(trace: Union[str, bytes, dict, list]) -> List[str]:
    """Schema smoke check for Trace Event Format documents.

    Accepts a JSON string/bytes or an already-parsed object (either the
    JSON-object form with ``traceEvents`` or a bare event array) and
    returns a list of problems — empty means the document passes every
    structural requirement of the format that ``chrome://tracing`` and
    Perfetto enforce on load.
    """
    problems: List[str] = []
    if isinstance(trace, (str, bytes)):
        try:
            trace = json.loads(trace)
        except ValueError as exc:
            return ["not valid JSON: %s" % exc]
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["JSON-object form must carry a 'traceEvents' array"]
    elif isinstance(trace, list):
        events = trace
    else:
        return ["top level must be an object or an event array"]

    for index, event in enumerate(events):
        where = "event[%d]" % index
        if not isinstance(event, dict):
            problems.append("%s: not an object" % where)
            continue
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _VALID_PHASES:
            problems.append("%s: bad phase %r" % (where, phase))
            continue
        if phase == "M":
            if "name" not in event:
                problems.append("%s: metadata event without a name" % where)
            continue
        for key in ("name", "ts", "pid", "tid"):
            if key not in event:
                problems.append("%s: missing required key %r" % (where, key))
        if not isinstance(event.get("ts", 0), (int, float)):
            problems.append("%s: non-numeric ts" % where)
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                problems.append("%s: complete event needs dur >= 0" % where)
        if phase == "i" and event.get("s", "t") not in ("g", "p", "t"):
            problems.append("%s: instant scope must be g/p/t" % where)
        if phase in ("s", "t", "f") and "id" not in event:
            problems.append("%s: flow event needs an id" % where)
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append("%s: args must be an object" % where)
    return problems
