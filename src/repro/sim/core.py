"""Discrete-event simulation core.

This module provides the event loop that the whole SHRIMP model runs on.
Simulated time is a float in *microseconds* throughout the project, matching
the units the paper reports (latencies in microseconds, bandwidths in
MB/s == bytes/microsecond).

The design is a small, self-contained cousin of SimPy: a :class:`Simulator`
owns a time-ordered scheduler of callbacks, and :class:`Event` objects
connect producers to the processes waiting on them (see
:mod:`repro.sim.process`).

Two interchangeable schedulers sit behind the same API (see
docs/SIMULATOR.md for the measured comparison):

* ``"heap"`` (default) — a binary heap of ``(time, priority, seq, fn,
  args)`` entries via :mod:`heapq`.
* ``"calendar"`` — a classic calendar queue (:class:`CalendarQueue`):
  time is hashed into rotating day buckets so push/pop avoid the
  log-n sift, at the cost of Python-level bucket management.

Both produce the exact same total order ``(time, priority, seq)`` —
``seq`` is a monotonically increasing tiebreaker, so same-time,
same-priority callbacks run in scheduling order and every run is fully
deterministic regardless of scheduler (property-tested in
``tests/sim/test_scheduler_equivalence.py``).
"""

from __future__ import annotations

import os
from bisect import insort
from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "SimulationError",
    "StopSimulation",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "CalendarQueue",
    "Simulator",
    "NORMAL",
    "URGENT",
]

# Scheduling priorities: URGENT callbacks at the same timestamp run before
# NORMAL ones.  Used for event-triggering bookkeeping that must precede
# ordinary process resumption (e.g. releasing a bus before the next grab).
URGENT = 0
NORMAL = 1

# Default scheduler for new Simulators; overridable via the environment so
# whole-system runs (workload engine, capacity sweeps) can be flipped
# without threading a parameter through every constructor.
DEFAULT_SCHEDULER = os.environ.get("REPRO_SIM_SCHEDULER", "heap")


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once, records its value (or exception), and schedules
    all registered callbacks.  Callbacks registered after triggering are
    scheduled immediately.

    ``name`` is computed lazily: the hot paths create tens of thousands of
    short-lived events whose labels are only ever read by debuggers and
    ``repr`` — formatting them eagerly was a measurable cost.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_defused",
                 "_name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def name(self) -> str:
        """Debug label (lazily derived when not given at construction)."""
        return self._name or self._label()

    def _label(self) -> str:
        return self.__class__.__name__

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        if not self._triggered:
            raise SimulationError("event %r has not been triggered" % (self,))
        return self._value

    @property
    def defused(self) -> bool:
        """True once some consumer has taken responsibility for this
        event's failure (see :meth:`defuse`)."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event's exception as handled.

        Called automatically when the exception is thrown into a waiting
        process or consumed by a composite; anything else that swallows a
        failure on purpose must call this, or the failure is re-raised
        out of the event loop so bugs never pass silently."""
        self._defused = True

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self._triggered:
            raise SimulationError("event %r already triggered" % (self,))
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            # Inlined sim.schedule_call(0.0, cb, self, priority=URGENT):
            # triggering is the single hottest scheduling producer.
            sim = self.sim
            if sim._cal is None:
                now = sim._now
                heap = sim._heap
                seq = sim._seq
                for callback in callbacks:
                    seq += 1
                    heappush(heap, (now, URGENT, seq, callback, (self,)))
                sim._seq = seq
            else:
                for callback in callbacks:
                    sim.schedule_call(0.0, callback, self, priority=URGENT)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._triggered:
            raise SimulationError("event %r already triggered" % (self,))
        self._triggered = True
        self._ok = False
        self._value = exception
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            sim = self.sim
            for callback in callbacks:
                sim.schedule_call(0.0, callback, self, priority=URGENT)
        return self

    def succeed_later(self, delay: float, value: Any = None) -> "Event":
        """Trigger this event ``delay`` from now with ONE scheduler entry.

        Equivalent to ``schedule_call(delay, self.succeed, value)`` but
        the dispatch runs the waiters' callbacks synchronously in place
        (same ordering proof as :meth:`Timeout._fire` — the entry runs
        at NORMAL priority, so no URGENT entry at that instant is still
        pending), saving the per-waiter URGENT bounce.  Used by wake
        paths that fold a fixed post-wake charge into the wake itself
        (e.g. the poll watchpoint path, docs/SIMULATOR.md).
        """
        if self._triggered:
            raise SimulationError("event %r already triggered" % (self,))
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        entry = (sim._now + delay, NORMAL, seq, self._fire_now, (value,))
        if sim._cal is None:
            heappush(sim._heap, entry)
        else:
            sim._cal.push(entry)
        return self

    def _fire_now(self, value: Any) -> None:
        # Dispatch half of succeed_later (see Timeout._fire's proof).
        if self._triggered:
            raise SimulationError("event %r already triggered" % (self,))
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)

    def _trigger(self, ok: bool, value: Any) -> None:
        # Kept as the single slow-path entry (subclass hooks, tests).
        if ok:
            self.succeed(value)
        else:
            self.fail(value)

    # -- waiting -------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback is scheduled to run at
        the current simulation time (still via the event loop, preserving
        deterministic ordering).
        """
        if self.callbacks is None:
            self.sim.schedule_call(0.0, callback, self, priority=URGENT)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return "<%s %s at t=%.3f>" % (self.name, state, self.sim.now)


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None,
                 _at: Optional[float] = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % (delay,))
        # Flattened Event.__init__ + sim.schedule_call: one of these is
        # created for nearly every yield in the model, so the two extra
        # frames were measurable at workload scale.
        self.sim = sim
        self._name = ""
        self.callbacks = []
        self._value = None
        self._ok = None
        self._triggered = False
        self._defused = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        entry = (sim._now + delay if _at is None else _at,
                 NORMAL, seq, self._fire, (value,))
        if sim._cal is None:
            heappush(sim._heap, entry)
        else:
            sim._cal.push(entry)

    def _label(self) -> str:
        return "Timeout(%g)" % self.delay

    def _fire(self, value: Any) -> None:
        """Trigger at the scheduled time, running waiters in place.

        ``_fire`` executes as its own scheduler entry at NORMAL
        priority, which guarantees no URGENT entry at this timestamp is
        still pending (URGENT sorts first, and anything pushed by these
        callbacks gets a larger seq).  Running the callbacks
        synchronously here is therefore order-identical to bouncing each
        one through the scheduler — minus one push/pop/dispatch per
        waiter, on the single hottest wake path in the model.
        """
        if self._triggered:
            raise SimulationError("event %r already triggered" % (self,))
        self._triggered = True
        self._ok = True
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class _Composite(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: List[Event], name: str):
        super().__init__(sim, name=name)
        self.events = list(events)
        if not self.events:
            raise ValueError("%s requires at least one event" % name)
        self._pending = len(self.events)
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: Event) -> None:
        raise NotImplementedError

    def _consume_failure(self, event: Event) -> None:
        """Fail the composite with the child's exception, taking
        responsibility for it (waiters on the composite receive it)."""
        event.defuse()
        self.fail(event.value)

    def _late_child_failure(self, event: Event) -> None:
        """A child failed after the composite already triggered.

        The composite can no longer propagate the exception, but it must
        not vanish either: give the child's other consumers (scheduled at
        the same instant, URGENT) a chance to defuse it, then re-raise it
        out of the event loop."""
        self.sim.schedule_call(0.0, self._surface_unhandled, event,
                               priority=NORMAL)

    def _surface_unhandled(self, event: Event) -> None:
        if not event.defused:
            raise event.value


class AnyOf(_Composite):
    """Succeeds as soon as any child event triggers.

    The value is ``(event, event.value)`` for the first child to trigger.
    A failing child fails the composite; a child that fails *after*
    another child already won is re-raised out of the event loop unless
    some other consumer defuses it.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, events, "AnyOf")

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                self._late_child_failure(event)
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self._consume_failure(event)


class AllOf(_Composite):
    """Succeeds when every child event has succeeded.

    The value is the list of child values, in construction order.  A failing
    child fails the composite immediately; further children failing after
    that are re-raised out of the event loop unless some other consumer
    defuses them.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, events, "AllOf")

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                self._late_child_failure(event)
            return
        if not event.ok:
            self._consume_failure(event)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self.events])


class CalendarQueue:
    """A calendar queue of ``(time, priority, seq, fn, args)`` entries.

    Time is hashed into ``nbuckets`` rotating day buckets of ``width``
    simulated microseconds each; entries within a bucket stay sorted
    (``bisect.insort`` — the unique ``seq`` guarantees tuple comparison
    never reaches the non-comparable ``fn``/``args`` fields).  Pops scan
    from the current bucket, wrapping once per "year"; if a whole year
    passes without a due entry (a sparse far-future schedule), the pop
    falls back to a direct minimum over bucket heads and fast-forwards.

    The queue resizes (doubling/halving buckets, re-estimating width
    from a sample of inter-entry gaps) when occupancy leaves the
    ``[nbuckets/2, 2*nbuckets]`` band, per Brown's classic design.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_count",
                 "_bucket_index", "_year_end", "_last_time")

    def __init__(self, width: float = 1.0, nbuckets: int = 16):
        self._nbuckets = nbuckets
        self._width = width
        self._buckets: List[List[tuple]] = [[] for _ in range(nbuckets)]
        self._count = 0
        self._last_time = 0.0
        self._set_position(0.0)

    def __len__(self) -> int:
        return self._count

    def _set_position(self, time: float) -> None:
        """Point the scan at the bucket/year containing ``time``."""
        day = int(time / self._width)
        self._bucket_index = day % self._nbuckets
        self._year_end = (day + 1) * self._width

    def push(self, entry: tuple) -> None:
        """Insert one ``(time, priority, seq, fn, args)`` entry."""
        time = entry[0]
        insort(self._buckets[int(time / self._width) % self._nbuckets], entry)
        self._count += 1
        if time < self._last_time:
            # An entry landed behind the scan position (possible right
            # after a fast-forward): rewind so it is not skipped.
            self._set_position(time)
            self._last_time = time
        if self._count > 2 * self._nbuckets and self._nbuckets < 1 << 15:
            self._resize(2 * self._nbuckets)

    def pop(self) -> tuple:
        """Remove and return the earliest entry (tuple order)."""
        if not self._count:
            raise IndexError("pop from empty CalendarQueue")
        buckets = self._buckets
        nbuckets = self._nbuckets
        index = self._bucket_index
        year_end = self._year_end
        width = self._width
        for _ in range(nbuckets):
            bucket = buckets[index]
            if bucket and bucket[0][0] < year_end:
                entry = bucket.pop(0)
                self._bucket_index = index
                self._year_end = year_end
                self._count -= 1
                self._last_time = entry[0]
                if (self._count < self._nbuckets // 2
                        and self._nbuckets > 16):
                    self._resize(self._nbuckets // 2)
                return entry
            index = (index + 1) % nbuckets
            year_end += width
        # A full year with nothing due: jump straight to the earliest
        # entry across all buckets.
        head = min(bucket[0] for bucket in buckets if bucket)
        self._set_position(head[0])
        return self.pop()

    def peek_time(self) -> Optional[float]:
        """The earliest entry's time, or None when empty."""
        if not self._count:
            return None
        buckets = self._buckets
        index = self._bucket_index
        year_end = self._year_end
        width = self._width
        for _ in range(self._nbuckets):
            bucket = buckets[index]
            if bucket and bucket[0][0] < year_end:
                return bucket[0][0]
            index = (index + 1) % self._nbuckets
            year_end += width
        return min(bucket[0] for bucket in buckets if bucket)[0]

    def _resize(self, nbuckets: int) -> None:
        entries = [entry for bucket in self._buckets for entry in bucket]
        entries.sort()
        # Re-estimate the bucket width as the mean gap between a sample
        # of adjacent entries (Brown's heuristic), clamped to stay sane.
        if len(entries) > 2:
            sample = entries[: min(len(entries), 64)]
            gaps = [b[0] - a[0] for a, b in zip(sample, sample[1:])]
            mean = sum(gaps) / len(gaps)
            if mean > 0.0:
                self._width = 3.0 * mean
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        width = self._width
        for entry in entries:
            self._buckets[int(entry[0] / width) % nbuckets].append(entry)
        anchor = entries[0][0] if entries else self._last_time
        self._set_position(anchor)


class Simulator:
    """The discrete-event loop.

    Keeps a time-ordered scheduler of ``(time, priority, seq, fn, args)``
    entries.  ``seq`` is a monotonically increasing tiebreaker so
    same-time, same-priority callbacks run in scheduling order, making
    runs fully deterministic.

    ``scheduler`` selects the queue implementation (``"heap"`` or
    ``"calendar"``); both yield the identical total order.  The default
    comes from the ``REPRO_SIM_SCHEDULER`` environment variable when set.

    ``events_executed`` counts dispatched callbacks — the denominator of
    the sim-events/sec figure in ``BENCH_sim.json``.
    """

    def __init__(self, scheduler: Optional[str] = None):
        scheduler = scheduler or DEFAULT_SCHEDULER
        if scheduler not in ("heap", "calendar"):
            raise ValueError("unknown scheduler %r (use 'heap' or 'calendar')"
                             % (scheduler,))
        self.scheduler = scheduler
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Callable, tuple]] = []
        self._cal: Optional[CalendarQueue] = (
            CalendarQueue() if scheduler == "calendar" else None
        )
        self._seq = 0
        self._running = False
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------
    def schedule_call(
        self,
        delay: float,
        fn: Callable,
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past (delay=%r)" % (delay,))
        self._seq = seq = self._seq + 1
        entry = (self._now + delay, priority, seq, fn, args)
        cal = self._cal
        if cal is None:
            heappush(self._heap, entry)
        else:
            cal.push(entry)

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def timeout_at(self, time: float, value: Any = None) -> Timeout:
        """Create an event that succeeds at the *absolute* time ``time``.

        Equivalent to ``timeout(time - now)`` except the deadline float
        is used verbatim — model code coalescing consecutive sleeps
        (``t = (now + a) + b``) lands on the bit-exact instant the
        two-sleep version would have, keeping reports byte-identical
        while halving the wake count (see docs/SIMULATOR.md).
        """
        return Timeout(self, time - self._now, value, _at=time)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event: first child to trigger wins."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event: triggers when all children succeed."""
        return AllOf(self, events)

    # -- running ---------------------------------------------------------
    def step(self) -> None:
        """Run the single next callback, advancing time to it."""
        cal = self._cal
        if cal is None:
            if not self._heap:
                raise SimulationError("no more events to run")
            time, _priority, _seq, fn, args = heappop(self._heap)
        else:
            if not cal:
                raise SimulationError("no more events to run")
            time, _priority, _seq, fn, args = cal.pop()
        self._now = time
        self.events_executed += 1
        fn(*args)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or None if idle."""
        if self._cal is None:
            return self._heap[0][0] if self._heap else None
        return self._cal.peek_time()

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the scheduler drains or ``until`` microseconds is
        reached.

        Returns the value of a :class:`StopSimulation`, if one was raised
        (see :meth:`stop`), else None.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        executed = 0
        try:
            if self._cal is not None:
                return self._run_calendar(until)
            # Hot loop: dispatch straight off the heap with everything
            # localized.  Equivalent to ``while heap: self.step()`` minus
            # per-event attribute lookups and try/except setup.
            heap = self._heap
            pop = heappop
            if until is None:
                while heap:
                    entry = pop(heap)
                    self._now = entry[0]
                    executed += 1
                    entry[3](*entry[4])
            else:
                while heap:
                    if heap[0][0] > until:
                        self._now = until
                        break
                    entry = pop(heap)
                    self._now = entry[0]
                    executed += 1
                    entry[3](*entry[4])
            return None
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_executed += executed
            self._running = False

    def _run_calendar(self, until: Optional[float]) -> Any:
        cal = self._cal
        assert cal is not None
        executed = 0
        try:
            while cal:
                if until is not None:
                    head = cal.peek_time()
                    if head is not None and head > until:
                        self._now = until
                        break
                entry = cal.pop()
                self._now = entry[0]
                executed += 1
                entry[3](*entry[4])
            return None
        except StopSimulation as stop:
            return stop.value
        finally:
            self.events_executed += executed

    def stop(self, value: Any = None) -> None:
        """Stop :meth:`run` at the current time (from inside a callback)."""
        raise StopSimulation(value)
