"""Discrete-event simulation core.

This module provides the event loop that the whole SHRIMP model runs on.
Simulated time is a float in *microseconds* throughout the project, matching
the units the paper reports (latencies in microseconds, bandwidths in
MB/s == bytes/microsecond).

The design is a small, self-contained cousin of SimPy: a :class:`Simulator`
owns a time-ordered heap of callbacks, and :class:`Event` objects connect
producers to the processes waiting on them (see :mod:`repro.sim.process`).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

__all__ = [
    "SimulationError",
    "StopSimulation",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Simulator",
    "NORMAL",
    "URGENT",
]

# Scheduling priorities: URGENT callbacks at the same timestamp run before
# NORMAL ones.  Used for event-triggering bookkeeping that must precede
# ordinary process resumption (e.g. releasing a bus before the next grab).
URGENT = 0
NORMAL = 1


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to stop :meth:`Simulator.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *untriggered*.  Calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once, records its value (or exception), and schedules
    all registered callbacks.  Callbacks registered after triggering are
    scheduled immediately.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_triggered", "_defused",
                 "name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self.name = name
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._triggered

    @property
    def ok(self) -> Optional[bool]:
        """True if succeeded, False if failed, None if untriggered."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception, if it failed)."""
        if not self._triggered:
            raise SimulationError("event %r has not been triggered" % (self,))
        return self._value

    @property
    def defused(self) -> bool:
        """True once some consumer has taken responsibility for this
        event's failure (see :meth:`defuse`)."""
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event's exception as handled.

        Called automatically when the exception is thrown into a waiting
        process or consumed by a composite; anything else that swallows a
        failure on purpose must call this, or the failure is re-raised
        out of the event loop so bugs never pass silently."""
        self._defused = True

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        self._trigger(True, value)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, exception)
        return self

    def _trigger(self, ok: bool, value: Any) -> None:
        if self._triggered:
            raise SimulationError("event %r already triggered" % (self,))
        self._triggered = True
        self._ok = ok
        self._value = value
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            self.sim.schedule_call(0.0, callback, self, priority=URGENT)

    # -- waiting -------------------------------------------------------
    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event triggers.

        If the event already triggered, the callback is scheduled to run at
        the current simulation time (still via the event loop, preserving
        deterministic ordering).
        """
        if self.callbacks is None:
            self.sim.schedule_call(0.0, callback, self, priority=URGENT)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        label = self.name or self.__class__.__name__
        return "<%s %s at t=%.3f>" % (label, state, self.sim.now)


class Timeout(Event):
    """An event that succeeds after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError("timeout delay must be >= 0, got %r" % (delay,))
        super().__init__(sim, name="Timeout(%g)" % delay)
        self.delay = delay
        sim.schedule_call(delay, self._fire, value, priority=NORMAL)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class _Composite(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_pending")

    def __init__(self, sim: "Simulator", events: List[Event], name: str):
        super().__init__(sim, name=name)
        self.events = list(events)
        if not self.events:
            raise ValueError("%s requires at least one event" % name)
        self._pending = len(self.events)
        for event in self.events:
            event.add_callback(self._child_triggered)

    def _child_triggered(self, event: Event) -> None:
        raise NotImplementedError

    def _consume_failure(self, event: Event) -> None:
        """Fail the composite with the child's exception, taking
        responsibility for it (waiters on the composite receive it)."""
        event.defuse()
        self.fail(event.value)

    def _late_child_failure(self, event: Event) -> None:
        """A child failed after the composite already triggered.

        The composite can no longer propagate the exception, but it must
        not vanish either: give the child's other consumers (scheduled at
        the same instant, URGENT) a chance to defuse it, then re-raise it
        out of the event loop."""
        self.sim.schedule_call(0.0, self._surface_unhandled, event,
                               priority=NORMAL)

    def _surface_unhandled(self, event: Event) -> None:
        if not event.defused:
            raise event.value


class AnyOf(_Composite):
    """Succeeds as soon as any child event triggers.

    The value is ``(event, event.value)`` for the first child to trigger.
    A failing child fails the composite; a child that fails *after*
    another child already won is re-raised out of the event loop unless
    some other consumer defuses it.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, events, "AnyOf")

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                self._late_child_failure(event)
            return
        if event.ok:
            self.succeed((event, event.value))
        else:
            self._consume_failure(event)


class AllOf(_Composite):
    """Succeeds when every child event has succeeded.

    The value is the list of child values, in construction order.  A failing
    child fails the composite immediately; further children failing after
    that are re-raised out of the event loop unless some other consumer
    defuses them.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim, events, "AllOf")

    def _child_triggered(self, event: Event) -> None:
        if self.triggered:
            if event.ok is False:
                self._late_child_failure(event)
            return
        if not event.ok:
            self._consume_failure(event)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([e.value for e in self.events])


class Simulator:
    """The discrete-event loop.

    Keeps a heap of ``(time, priority, seq, fn, args)`` entries.  ``seq`` is a
    monotonically increasing tiebreaker so same-time, same-priority callbacks
    run in scheduling order, making runs fully deterministic.
    """

    def __init__(self):
        self._now = 0.0
        self._heap: List[Tuple[float, int, int, Callable, tuple]] = []
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    # -- scheduling ------------------------------------------------------
    def schedule_call(
        self,
        delay: float,
        fn: Callable,
        *args: Any,
        priority: int = NORMAL,
    ) -> None:
        """Schedule ``fn(*args)`` to run ``delay`` microseconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule in the past (delay=%r)" % (delay,))
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, fn, args))

    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered :class:`Event`."""
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that succeeds ``delay`` microseconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Composite event: first child to trigger wins."""
        return AnyOf(self, events)

    def all_of(self, events: List[Event]) -> AllOf:
        """Composite event: triggers when all children succeed."""
        return AllOf(self, events)

    # -- running ---------------------------------------------------------
    def step(self) -> None:
        """Run the single next callback, advancing time to it."""
        if not self._heap:
            raise SimulationError("no more events to run")
        time, _priority, _seq, fn, args = heapq.heappop(self._heap)
        self._now = time
        fn(*args)

    def peek(self) -> Optional[float]:
        """Time of the next scheduled callback, or None if idle."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: Optional[float] = None) -> Any:
        """Run until the heap drains or ``until`` microseconds is reached.

        Returns the value of a :class:`StopSimulation`, if one was raised
        (see :meth:`stop`), else None.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run())")
        self._running = True
        try:
            while self._heap:
                if until is not None and self._heap[0][0] > until:
                    self._now = until
                    break
                try:
                    self.step()
                except StopSimulation as stop:
                    return stop.value
            return None
        finally:
            self._running = False

    def stop(self, value: Any = None) -> None:
        """Stop :meth:`run` at the current time (from inside a callback)."""
        raise StopSimulation(value)
