"""Contention primitives: resources, stores, and bandwidth channels.

Three shapes of contention appear in the SHRIMP model:

* :class:`Resource` — N interchangeable slots with a priority queue of
  waiters.  Models the node CPU (interrupt handlers preempt at higher
  priority than user code in the queue sense) and bus mastership.
* :class:`Store` — a bounded FIFO of items.  Models the NIC's outgoing
  FIFO and router input queues; ``put`` blocks when full (backpressure),
  ``get`` blocks when empty.
* :class:`BandwidthChannel` — a serial link that carries one transfer at a
  time at a fixed bytes-per-microsecond rate.  Models bus data phases and
  mesh links, preserving per-link FIFO order (the property the Paragon
  backplane guarantees and the libraries rely on).

All three keep always-on utilization accounting (busy time, arbitration
waits, queue-depth integrals) — a handful of float operations per
event, cheap enough to leave on.  A :class:`MetricsRegistry` collects
any number of them and renders the per-resource utilization report
("EISA bus 87% busy") that :mod:`repro.sim.export`'s Chrome traces
complement; see docs/OBSERVABILITY.md.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, List, Optional, Tuple

from .core import Event, Simulator

__all__ = ["Request", "Resource", "Store", "BandwidthChannel", "MetricsRegistry"]


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted.

    Use as ``req = resource.request(); yield req; ...; resource.release(req)``.
    """

    __slots__ = ("resource", "priority", "_order", "requested_at", "_state")

    _QUEUED, _HELD, _DONE = range(3)

    def __init__(self, resource: "Resource", priority: int, order: int):
        Event.__init__(self, resource.sim)
        self.resource = resource
        self.priority = priority
        self._order = order
        self.requested_at = resource.sim.now
        self._state = Request._QUEUED

    def _label(self) -> str:
        return "Request(%s)" % self.resource.name

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` slots granted to waiters in (priority, FIFO) order.

    Lower ``priority`` values are served first; the default priority is 0.
    Accounts busy time (any slot held) and the total time requests spent
    queued before their grant — the "arbitration wait" the utilization
    report attributes per resource.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._holders: List[Request] = []
        # Waiters live in a (priority, order) heap; cancelled requests
        # stay in the heap (lazy deletion, skipped at grant time) and
        # ``_queued`` tracks the live count.  This replaces an O(n)
        # ``min`` + ``remove`` scan per grant that dominated profiles of
        # contended runs.
        self._pending: List[Tuple[int, int, Request]] = []
        self._queued = 0
        self._order = 0
        self.busy_time = 0.0
        self.wait_time = 0.0
        self.grants = 0
        self._busy_since: Optional[float] = None

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return self._queued

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        self._order += 1
        req = Request(self, priority, self._order)
        heappush(self._pending, (priority, self._order, req))
        self._queued += 1
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Give back a granted slot (or cancel a still-queued request)."""
        state = request._state
        if state == Request._HELD:
            request._state = Request._DONE
            self._holders.remove(request)
            if not self._holders and self._busy_since is not None:
                self.busy_time += self.sim.now - self._busy_since
                self._busy_since = None
            self._grant()
        elif state == Request._QUEUED:
            request._state = Request._DONE
            self._queued -= 1
        else:
            raise ValueError("request %r does not hold %s" % (request, self.name))

    def _grant(self) -> None:
        pending = self._pending
        holders = self._holders
        while self._queued and len(holders) < self.capacity:
            req = heappop(pending)[2]
            if req._state != Request._QUEUED:
                continue  # cancelled while queued; heap entry is stale
            req._state = Request._HELD
            if not holders:
                self._busy_since = self.sim.now
            holders.append(req)
            self._queued -= 1
            self.wait_time += self.sim.now - req.requested_at
            self.grants += 1
            req.succeed(self)

    def metrics_snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Utilization counters for the metrics registry."""
        now = self.sim.now if now is None else now
        busy = self.busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return {
            "name": self.name,
            "kind": "resource",
            "busy_time": busy,
            "count": self.grants,
            "wait_time": self.wait_time,
        }


class Store:
    """A bounded FIFO buffer of items with blocking put/get.

    ``capacity`` is in *items*; callers that need byte-capacity semantics
    (the outgoing FIFO) track byte occupancy themselves and use the item
    bound as a packet bound.  A time-weighted occupancy integral and the
    high-water mark are kept for the utilization report.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = "store"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()
        self.puts = 0
        self.high_water = 0
        self._occupancy_integral = 0.0
        self._occupancy_since = 0.0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """A read-only snapshot of buffered items (for tests/inspection)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Append ``item``; the event triggers once there is room."""
        event = Event(self.sim)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Pop the oldest item; the event's value is the item."""
        event = Event(self.sim)
        self._getters.append(event)
        self._settle()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if len(self._items) >= self.capacity:
            return False
        self._account()
        self._items.append(item)
        self.puts += 1
        if len(self._items) > self.high_water:
            self.high_water = len(self._items)
        # Only getters can make progress after a put (waiting putters
        # imply the store was already full, contradicting the append).
        if self._getters:
            self._settle()
        return True

    def try_get(self, default: Any = None) -> Any:
        """Non-blocking get; returns ``default`` when nothing is buffered.

        ``default`` disambiguates an empty store from a buffered item
        that is itself None (e.g. a shutdown sentinel) — pass a private
        sentinel object when None items are possible.
        """
        if not self._items:
            return default
        self._account()
        item = self._items.popleft()
        # Only putters can make progress after a get (waiting getters
        # imply the store was already empty, contradicting the pop).
        if self._putters:
            self._settle()
        return item

    def _account(self) -> None:
        now = self.sim._now
        self._occupancy_integral += len(self._items) * (now - self._occupancy_since)
        self._occupancy_since = now

    def _settle(self) -> None:
        items = self._items
        putters = self._putters
        getters = self._getters
        while True:
            progressed = False
            if putters and len(items) < self.capacity:
                event, item = putters.popleft()
                self._account()
                items.append(item)
                self.puts += 1
                if len(items) > self.high_water:
                    self.high_water = len(items)
                event.succeed(item)
                progressed = True
            if getters and items:
                event = getters.popleft()
                self._account()
                event.succeed(items.popleft())
                progressed = True
            if not progressed:
                return

    def mean_depth(self, now: Optional[float] = None) -> float:
        """Time-averaged number of buffered items since t=0."""
        now = self.sim.now if now is None else now
        if now <= 0.0:
            return float(len(self._items))
        integral = self._occupancy_integral + len(self._items) * (now - self._occupancy_since)
        return integral / now

    def metrics_snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Utilization counters for the metrics registry."""
        return {
            "name": self.name,
            "kind": "store",
            "count": self.puts,
            "high_water": self.high_water,
            "mean_depth": self.mean_depth(now),
        }


class BandwidthChannel:
    """A serial pipe: transfers occupy it back-to-back at a fixed rate.

    ``transfer(nbytes)`` returns an event that fires when the *last byte*
    has passed through.  Transfers queue in FIFO order; each takes
    ``overhead + nbytes / bandwidth`` microseconds of channel time.

    Busy time and head-of-line wait accumulate per transfer.  When a
    :class:`~repro.sim.trace.Tracer` is attached (``tracer``/``track``
    attributes, set by the hardware layer) and enabled, each transfer
    additionally emits one complete span on the channel's track.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        overhead: float = 0.0,
        name: str = "channel",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bytes/us)")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.overhead = overhead
        self._free_at = 0.0
        self.bytes_carried = 0
        self.transfers = 0
        self.busy_time = 0.0
        self.wait_time = 0.0
        self.tracer = None      # optional Tracer, attached by the owner
        self.track = "channel"  # span track used when tracing is enabled

    def busy_until(self) -> float:
        """Simulated time at which the channel next falls idle."""
        return max(self._free_at, self.sim.now)

    def occupancy(self, nbytes: int) -> float:
        """Channel time one transfer of ``nbytes`` consumes."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.overhead + nbytes / self.bandwidth

    def transfer(self, nbytes: int, value: Any = None) -> Event:
        """Queue a transfer; returns an event fired at completion time."""
        start = self.busy_until()
        occupied = self.occupancy(nbytes)
        finish = start + occupied
        self._free_at = finish
        self.bytes_carried += nbytes
        self.transfers += 1
        self.busy_time += occupied
        self.wait_time += start - self.sim.now
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.complete("bus", "%s xfer %dB" % (self.name, nbytes),
                            start, finish, track=self.track,
                            data={"bytes": nbytes})
        return self.sim.timeout(finish - self.sim.now, value)

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed simulated time the channel was occupied."""
        now = self.sim.now if now is None else now
        if now <= 0.0:
            return 0.0
        return min(1.0, self.busy_time / now)

    def metrics_snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Utilization counters for the metrics registry."""
        return {
            "name": self.name,
            "kind": "channel",
            "busy_time": self.busy_time,
            "count": self.transfers,
            "bytes": self.bytes_carried,
            "wait_time": self.wait_time,
        }


class MetricsRegistry:
    """A machine-wide roster of contention points with a report renderer.

    Anything exposing ``metrics_snapshot(now) -> dict`` (the three
    primitives above, mesh links, the outgoing FIFO wrapper) can
    register; :meth:`report` renders one aligned row per entry —
    busy time, utilization, arbitration wait, queue depth — against
    the elapsed simulated time.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._entries: List[Any] = []

    def register(self, entry: Any) -> Any:
        """Add one metrics source; returns it (for chaining)."""
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self, now: Optional[float] = None) -> List[Dict[str, Any]]:
        """Every entry's counters, in registration order."""
        now = self.sim.now if now is None else now
        return [entry.metrics_snapshot(now) for entry in self._entries]

    def report(self, now: Optional[float] = None, min_count: int = 0) -> str:
        """The utilization table as aligned text.

        ``min_count`` hides rows whose operation count is below it
        (quiet resources clutter a 4-node report).
        """
        now = self.sim.now if now is None else now
        header = ("resource", "kind", "busy us", "util %", "ops", "bytes",
                  "avg wait us", "depth avg/max")
        rows: List[Tuple[str, ...]] = [header]
        for snap in self.snapshot(now):
            count = snap.get("count", 0)
            if count < min_count:
                continue
            busy = snap.get("busy_time")
            util = "-"
            if busy is not None and now > 0:
                util = "%.1f" % (100.0 * min(1.0, busy / now))
            wait = snap.get("wait_time")
            avg_wait = "-"
            if wait is not None and count:
                avg_wait = "%.3f" % (wait / count)
            depth = "-"
            if "mean_depth" in snap:
                depth = "%.2f/%d" % (snap["mean_depth"], snap.get("high_water", 0))
            rows.append((
                snap["name"],
                snap["kind"],
                "-" if busy is None else "%.2f" % busy,
                util,
                str(count),
                str(snap["bytes"]) if "bytes" in snap else "-",
                avg_wait,
                depth,
            ))
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["utilization @ t=%.2f us" % now]
        for row in rows:
            lines.append("  " + "  ".join(
                cell.ljust(widths[i]) if i < 2 else cell.rjust(widths[i])
                for i, cell in enumerate(row)
            ))
        return "\n".join(lines)
