"""Contention primitives: resources, stores, and bandwidth channels.

Three shapes of contention appear in the SHRIMP model:

* :class:`Resource` — N interchangeable slots with a priority queue of
  waiters.  Models the node CPU (interrupt handlers preempt at higher
  priority than user code in the queue sense) and bus mastership.
* :class:`Store` — a bounded FIFO of items.  Models the NIC's outgoing
  FIFO and router input queues; ``put`` blocks when full (backpressure),
  ``get`` blocks when empty.
* :class:`BandwidthChannel` — a serial link that carries one transfer at a
  time at a fixed bytes-per-microsecond rate.  Models bus data phases and
  mesh links, preserving per-link FIFO order (the property the Paragon
  backplane guarantees and the libraries rely on).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from .core import Event, Simulator

__all__ = ["Request", "Resource", "Store", "BandwidthChannel"]


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted.

    Use as ``req = resource.request(); yield req; ...; resource.release(req)``.
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: int, order: int):
        super().__init__(resource.sim, name="Request(%s)" % resource.name)
        self.resource = resource
        self.priority = priority
        self._order = order

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.resource.release(self)


class Resource:
    """``capacity`` slots granted to waiters in (priority, FIFO) order.

    Lower ``priority`` values are served first; the default priority is 0.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "resource"):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._holders: List[Request] = []
        self._queue: List[Request] = []
        self._order = 0

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self, priority: int = 0) -> Request:
        """Claim a slot; the returned event triggers when granted."""
        self._order += 1
        req = Request(self, priority, self._order)
        self._queue.append(req)
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Give back a granted slot (or cancel a still-queued request)."""
        if request in self._holders:
            self._holders.remove(request)
            self._grant()
        elif request in self._queue:
            self._queue.remove(request)
        else:
            raise ValueError("request %r does not hold %s" % (request, self.name))

    def _grant(self) -> None:
        while self._queue and len(self._holders) < self.capacity:
            best = min(self._queue, key=lambda r: (r.priority, r._order))
            self._queue.remove(best)
            self._holders.append(best)
            best.succeed(self)


class Store:
    """A bounded FIFO buffer of items with blocking put/get.

    ``capacity`` is in *items*; callers that need byte-capacity semantics
    (the outgoing FIFO) track byte occupancy themselves and use the item
    bound as a packet bound.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = "store"):
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> Tuple[Any, ...]:
        """A read-only snapshot of buffered items (for tests/inspection)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Append ``item``; the event triggers once there is room."""
        event = Event(self.sim, name="put(%s)" % self.name)
        self._putters.append((event, item))
        self._settle()
        return event

    def get(self) -> Event:
        """Pop the oldest item; the event's value is the item."""
        event = Event(self.sim, name="get(%s)" % self.name)
        self._getters.append(event)
        self._settle()
        return event

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the store is full."""
        if len(self._items) >= self.capacity:
            return False
        self._items.append(item)
        self._settle()
        return True

    def _settle(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            if self._putters and len(self._items) < self.capacity:
                event, item = self._putters.popleft()
                self._items.append(item)
                event.succeed(item)
                progressed = True
            if self._getters and self._items:
                event = self._getters.popleft()
                event.succeed(self._items.popleft())
                progressed = True


class BandwidthChannel:
    """A serial pipe: transfers occupy it back-to-back at a fixed rate.

    ``transfer(nbytes)`` returns an event that fires when the *last byte*
    has passed through.  Transfers queue in FIFO order; each takes
    ``overhead + nbytes / bandwidth`` microseconds of channel time.
    """

    def __init__(
        self,
        sim: Simulator,
        bandwidth: float,
        overhead: float = 0.0,
        name: str = "channel",
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive (bytes/us)")
        self.sim = sim
        self.name = name
        self.bandwidth = bandwidth
        self.overhead = overhead
        self._free_at = 0.0
        self.bytes_carried = 0
        self.transfers = 0

    def busy_until(self) -> float:
        """Simulated time at which the channel next falls idle."""
        return max(self._free_at, self.sim.now)

    def occupancy(self, nbytes: int) -> float:
        """Channel time one transfer of ``nbytes`` consumes."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        return self.overhead + nbytes / self.bandwidth

    def transfer(self, nbytes: int, value: Any = None) -> Event:
        """Queue a transfer; returns an event fired at completion time."""
        start = self.busy_until()
        finish = start + self.occupancy(nbytes)
        self._free_at = finish
        self.bytes_carried += nbytes
        self.transfers += 1
        return self.sim.timeout(finish - self.sim.now, value)
