"""Tracing and measurement utilities for simulation runs.

The benchmark harness needs two things: a way to record *what happened*
(for debugging protocol interleavings) and a way to accumulate *how long
things took* (for the latency/bandwidth series the paper's figures plot).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Callable, List, NamedTuple, Optional

from .core import Simulator

__all__ = ["TraceRecord", "Tracer", "Series", "Stopwatch"]


class TraceRecord(NamedTuple):
    time: float
    category: str
    message: str
    data: Any


class Tracer:
    """An append-only log of simulation happenings, filterable by category.

    Tracing is off by default (``enabled=False``): the hot paths call
    :meth:`log` unconditionally, so the flag check keeps the disabled cost
    to one attribute lookup.
    """

    def __init__(self, sim: Simulator, enabled: bool = False, limit: int = 100_000):
        self.sim = sim
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.counts: Counter = Counter()

    def log(self, category: str, message: str, data: Any = None) -> None:
        """Record one event if tracing is enabled (counts are always kept)."""
        self.counts[category] += 1
        if not self.enabled:
            return
        if len(self.records) >= self.limit:
            return
        self.records.append(TraceRecord(self.sim.now, category, message, data))

    def select(self, category: str) -> List[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def format(self, categories: Optional[List[str]] = None) -> str:
        """A human-readable dump, optionally restricted to some categories."""
        wanted = set(categories) if categories is not None else None
        lines = []
        for record in self.records:
            if wanted is not None and record.category not in wanted:
                continue
            lines.append(
                "%12.3f  %-12s %s" % (record.time, record.category, record.message)
            )
        return "\n".join(lines)


class Series:
    """A named list of samples with summary statistics.

    Used for per-iteration round-trip times; the harness reports the mean
    (the paper reports averages over many ping-pong iterations).
    """

    def __init__(self, name: str = "series"):
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("series %r has no samples" % self.name)
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))


class Stopwatch:
    """Measures spans of simulated time.

    ``with Stopwatch(sim) as sw: ...`` is not possible inside a generator
    process (the body would need yields), so the API is explicit
    start()/stop() returning the elapsed span.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._started_at: Optional[float] = None
        self.elapsed = 0.0

    def start(self) -> None:
        """Begin a span at the current simulated time."""
        self._started_at = self.sim.now

    def stop(self) -> float:
        """End the span; returns (and stores) the elapsed time."""
        if self._started_at is None:
            raise ValueError("stopwatch was never started")
        self.elapsed = self.sim.now - self._started_at
        self._started_at = None
        return self.elapsed
