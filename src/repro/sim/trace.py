"""Tracing and measurement utilities for simulation runs.

The benchmark harness needs three things: a way to record *what
happened* (for debugging protocol interleavings), a way to record *how
long each stage took* (structured spans, exportable to Chrome's
``trace_event`` format — see :mod:`repro.sim.export`), and a way to
accumulate summary statistics (for the latency/bandwidth series the
paper's figures plot).

Span model
----------

A :class:`Span` is a begin/end interval on a *track*.  A track names
one serially-executing timeline — one CPU process, one NIC pipeline
stage, the mesh backplane — written as ``"<pid>.<tid>"`` (split at the
first dot for the Chrome exporter; e.g. ``"n0.cpu.p1"`` is thread
``cpu.p1`` of process ``n0``).  Spans opened on the same track nest:
:meth:`Tracer.begin` records the innermost still-open span of the
track as the new span's parent, which is how a library call's span
contains the VMMC call's span contains the CPU-store spans.

Overhead guarantee
------------------

Tracing is off by default.  Every producer call site is guarded by a
single attribute check (``if tracer.enabled:``), so the cost of a
disabled tracer on the hot paths is one attribute lookup and one
branch per site — the same discipline the original :meth:`Tracer.log`
established.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Any, Dict, List, NamedTuple, Optional

from .core import Simulator

__all__ = ["TraceRecord", "Span", "Tracer", "Series", "Stopwatch"]


class TraceRecord(NamedTuple):
    time: float
    category: str
    message: str
    data: Any


class Span:
    """One begin/end interval on a track, with a parent link.

    ``end`` is ``None`` while the span is still open; :attr:`duration`
    is then measured up to the tracer's current simulated time.
    """

    __slots__ = ("sid", "parent", "category", "name", "track", "start", "end", "data")

    def __init__(self, sid: int, parent: Optional[int], category: str, name: str,
                 track: str, start: float, end: Optional[float] = None,
                 data: Any = None):
        self.sid = sid
        self.parent = parent
        self.category = category
        self.name = name
        self.track = track
        self.start = start
        self.end = end
        self.data = data

    @property
    def closed(self) -> bool:
        """True once :meth:`Tracer.end` (or a complete event) set the end."""
        return self.end is not None

    def duration(self, now: Optional[float] = None) -> float:
        """Elapsed microseconds (open spans measure up to ``now``)."""
        if self.end is not None:
            return self.end - self.start
        return (now if now is not None else self.start) - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "%.3f..%.3f" % (self.start, self.end) if self.closed else (
            "%.3f.." % self.start)
        return "<Span #%d %s %r on %s %s>" % (
            self.sid, self.category, self.name, self.track, state)


class Tracer:
    """Structured event log of simulation happenings.

    Two families of producers feed it:

    * :meth:`log` — point events, the append-only categorized log the
      timeline renderer consumes (counts are kept even when disabled);
    * :meth:`begin`/:meth:`end`/:meth:`complete`/:meth:`instant` —
      spans, the structured begin/end intervals the Chrome exporter
      and the latency-budget cross-check consume.

    Tracing is off by default (``enabled=False``): hot-path call sites
    guard with one attribute check, keeping the disabled cost to a
    lookup and a branch per site.
    """

    def __init__(self, sim: Simulator, enabled: bool = False, limit: int = 100_000):
        self.sim = sim
        self.enabled = enabled
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.counts: Counter = Counter()
        self.spans: List[Span] = []
        self._next_sid = 0
        self._next_tid = 0
        self._stacks: Dict[str, List[Span]] = {}

    # -- point events ---------------------------------------------------
    def log(self, category: str, message: str, *args: Any,
            data: Any = None) -> None:
        """Record one event if tracing is enabled (counts are always kept).

        Extra positional ``args`` are lazily ``%``-formatted into
        ``message`` only when the record is actually kept — hot hardware
        paths log thousands of events per run, and eager string
        formatting on a disabled tracer was a measurable cost (the
        "cheap-span fast path"; see docs/SIMULATOR.md).
        """
        self.counts[category] += 1
        if not self.enabled:
            return
        if len(self.records) >= self.limit:
            return
        if args:
            message = message % args
        self.records.append(TraceRecord(self.sim.now, category, message, data))

    # -- spans ----------------------------------------------------------
    def begin(self, category: str, name: str, track: str = "sim",
              data: Any = None) -> Optional[Span]:
        """Open a span now on ``track``; returns it (None when disabled).

        The innermost still-open span of the same track becomes the new
        span's parent, so nested library/VMMC/CPU work links up without
        any caller bookkeeping.  Call sites may pass the result straight
        to :meth:`end`, which accepts None.
        """
        if not self.enabled or len(self.spans) >= self.limit:
            return None
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1].sid if stack else None
        self._next_sid += 1
        span = Span(self._next_sid, parent, category, name, track, self.sim.now,
                    data=data)
        self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Optional[Span], data: Any = None) -> None:
        """Close ``span`` at the current time (no-op when span is None)."""
        if span is None:
            return
        span.end = self.sim.now
        if data is not None:
            span.data = data if span.data is None else {**_as_dict(span.data),
                                                        **_as_dict(data)}
        stack = self._stacks.get(span.track)
        if stack and span in stack:
            # Pop it and anything opened after it that was left dangling.
            while stack:
                top = stack.pop()
                if top is span:
                    break

    def complete(self, category: str, name: str, start: float,
                 end: Optional[float] = None, track: str = "sim",
                 data: Any = None, sid: Optional[int] = None) -> Optional[Span]:
        """Record a span whose start and end are both already known.

        Used where one call site computes the whole interval (a bus
        transfer's occupancy, a packet's mesh transit).  Does not touch
        the track's open-span stack, but does adopt the innermost open
        span of the track as parent.

        ``sid`` lets a call site that announced a span id before the
        interval closed (via :meth:`reserve_sid`, so the id could
        travel in a wire header) record the span under that id.
        """
        if not self.enabled or len(self.spans) >= self.limit:
            return None
        stack = self._stacks.get(track)
        parent = stack[-1].sid if stack else None
        if sid is None:
            self._next_sid += 1
            sid = self._next_sid
        span = Span(sid, parent, category, name, track, start,
                    end=self.sim.now if end is None else end, data=data)
        self.spans.append(span)
        return span

    def reserve_sid(self) -> int:
        """Allocate a span id now for a span recorded later.

        Causal-context propagation needs a request's root span id at
        *send* time (it rides the wire so remote spans can point back),
        but the root span itself is recorded via :meth:`complete` only
        once the request finishes.  Pass the reserved id back through
        ``complete(..., sid=...)``.
        """
        self._next_sid += 1
        return self._next_sid

    def new_trace_id(self) -> int:
        """Allocate a fresh causal-trace id (one per top-level request)."""
        self._next_tid += 1
        return self._next_tid

    def instant(self, category: str, name: str, track: str = "sim",
                data: Any = None) -> Optional[Span]:
        """Record a zero-duration marker at the current time."""
        return self.complete(category, name, self.sim.now, self.sim.now,
                             track=track, data=data)

    # -- span queries ----------------------------------------------------
    def spans_of(self, category: str, track_prefix: str = "") -> List[Span]:
        """Spans of one category, optionally restricted to a track prefix."""
        return [s for s in self.spans
                if s.category == category and s.track.startswith(track_prefix)]

    def span_totals(self) -> Dict[str, float]:
        """Summed closed-span duration per category."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            if span.end is None:
                continue
            totals[span.category] = totals.get(span.category, 0.0) + span.duration()
        return totals

    def clear(self) -> None:
        """Drop all recorded events and spans (keeps counts and settings)."""
        self.records.clear()
        self.spans.clear()
        self._stacks.clear()

    # -- legacy log queries ----------------------------------------------
    def select(self, category: str) -> List[TraceRecord]:
        """All records of one category, in time order."""
        return [r for r in self.records if r.category == category]

    def format(self, categories: Optional[List[str]] = None) -> str:
        """A human-readable dump, optionally restricted to some categories."""
        wanted = set(categories) if categories is not None else None
        lines = []
        for record in self.records:
            if wanted is not None and record.category not in wanted:
                continue
            lines.append(
                "%12.3f  %-12s %s" % (record.time, record.category, record.message)
            )
        return "\n".join(lines)


def _as_dict(value: Any) -> dict:
    return value if isinstance(value, dict) else {"value": value}


class Series:
    """A named list of samples with summary statistics.

    Used for per-iteration round-trip times; the harness reports the mean
    (the paper reports averages over many ping-pong iterations).
    """

    def __init__(self, name: str = "series"):
        self.name = name
        self.samples: List[float] = []

    def add(self, value: float) -> None:
        """Record one sample."""
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        if not self.samples:
            raise ValueError("series %r has no samples" % self.name)
        return sum(self.samples) / len(self.samples)

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    @property
    def stddev(self) -> float:
        if len(self.samples) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((s - mu) ** 2 for s in self.samples) / (len(self.samples) - 1))

    def percentile(self, p: float) -> float:
        """Exact percentile of the samples (see :func:`repro.analysis.percentile`)."""
        from ..analysis import percentile

        if not self.samples:
            raise ValueError("series %r has no samples" % self.name)
        return percentile(self.samples, p)


class Stopwatch:
    """Measures spans of simulated time.

    ``with Stopwatch(sim) as sw: ...`` is not possible inside a generator
    process (the body would need yields), so the API is explicit
    start()/stop() returning the elapsed span.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self._started_at: Optional[float] = None
        self.elapsed = 0.0

    def start(self) -> None:
        """Begin a span at the current simulated time."""
        self._started_at = self.sim.now

    def stop(self) -> float:
        """End the span; returns (and stores) the elapsed time."""
        if self._started_at is None:
            raise ValueError("stopwatch was never started")
        self.elapsed = self.sim.now - self._started_at
        self._started_at = None
        return self.elapsed
