"""Discrete-event simulation kernel (system S1 in DESIGN.md).

Everything active in the SHRIMP model — user programs, daemons, DMA
engines, routers — runs as a generator-based process on a single
:class:`Simulator` event loop.  Time is in microseconds.

The kernel also hosts the observability layer (docs/OBSERVABILITY.md):
:class:`Tracer`/:class:`Span` record structured begin/end intervals on
per-component tracks, the contention primitives keep always-on
utilization counters collected by :class:`MetricsRegistry`, and
:mod:`repro.sim.export` turns a tracer into Chrome ``trace_event``
JSON (``chrome_trace_json``/``write_chrome_trace``/
``validate_chrome_trace``).
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .export import (
    chrome_trace_dict,
    chrome_trace_events,
    chrome_trace_json,
    validate_chrome_trace,
    write_chrome_trace,
)
from .faults import (
    DEFAULT_SITE_KINDS,
    Fault,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSite,
)
from .process import Interrupt, Process, spawn
from .resources import BandwidthChannel, MetricsRegistry, Request, Resource, Store
from .timers import IdleTimer, TimerWheel
from .trace import Series, Span, Stopwatch, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthChannel",
    "DEFAULT_SITE_KINDS",
    "Event",
    "Fault",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSite",
    "IdleTimer",
    "Interrupt",
    "MetricsRegistry",
    "Process",
    "Request",
    "Resource",
    "Series",
    "SimulationError",
    "Simulator",
    "Span",
    "StopSimulation",
    "Stopwatch",
    "Store",
    "TimerWheel",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "chrome_trace_dict",
    "chrome_trace_events",
    "chrome_trace_json",
    "spawn",
    "validate_chrome_trace",
    "write_chrome_trace",
]
