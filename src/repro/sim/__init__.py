"""Discrete-event simulation kernel (system S1 in DESIGN.md).

Everything active in the SHRIMP model — user programs, daemons, DMA
engines, routers — runs as a generator-based process on a single
:class:`Simulator` event loop.  Time is in microseconds.
"""

from .core import (
    AllOf,
    AnyOf,
    Event,
    SimulationError,
    Simulator,
    StopSimulation,
    Timeout,
)
from .process import Interrupt, Process, spawn
from .resources import BandwidthChannel, Request, Resource, Store
from .trace import Series, Stopwatch, TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "BandwidthChannel",
    "Event",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "Series",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Stopwatch",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "spawn",
]
