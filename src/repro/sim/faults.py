"""Deterministic, seed-driven fault injection for the SHRIMP model.

The paper's prototype assumes a reliable Paragon-style mesh, but the
protection and buffer-management arguments of Sections 3-4 only hold if
the software stack behaves sanely when transfers stall or packets die.
This module is the substrate for exercising exactly that: a
:class:`FaultPlan` is a reproducible schedule of ``(time, site, kind)``
triples, and a :class:`FaultInjector` is the machine-wide object the
hardware components consult at well-known *sites* (docs/FAULTS.md):

* ``mesh.link``  — drop / corrupt / delay one backplane packet;
* ``nic.du``     — stall or abort one deliberate-update command;
* ``nic.dma_in`` — stall the incoming DMA engine on one packet;
* ``bus.eisa``   — degrade one node's EISA bus bandwidth for a window;
* ``opt.timer``  — misfire one combining timeout (early flush or a
  late, inflated timer).

Determinism: a plan built from a seed always yields the same schedule,
and a fault fires on the *first operation to cross its site at or after
its scheduled time* — a function only of the (deterministic) simulated
workload, never of host state.  Runs with the same seed are therefore
bit-identical, which docs/FAULTS.md's reproduction recipe and the
``tests/faults`` determinism tests rely on.

Zero overhead when disabled: every hardware hook is guarded by one
attribute check (``if self.faults.enabled:``), the same discipline the
tracer uses, so fault-free runs schedule exactly the same events and
reproduce the pre-fault latency numbers byte-for-byte (the guard test
in ``tests/faults/test_zero_overhead.py``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .core import Simulator
from .trace import Tracer

__all__ = [
    "FaultKind",
    "FaultSite",
    "Fault",
    "FaultPlan",
    "FaultInjector",
    "DEFAULT_SITE_KINDS",
]


class FaultSite:
    """Well-known injection site names (where a fault can strike)."""

    MESH_LINK = "mesh.link"
    NIC_DU = "nic.du"
    NIC_DMA_IN = "nic.dma_in"
    BUS_EISA = "bus.eisa"
    OPT_TIMER = "opt.timer"
    # Application-level site: the KV replication apply loop consults it
    # per incoming record (docs/REPLICATION.md).  Deliberately NOT in
    # DEFAULT_SITE_KINDS — seeded hardware plans must stay stable —
    # so torture tests schedule it with explicit Fault entries.
    KV_REPLICA = "kv.replica"


class FaultKind:
    """Fault kind names (what happens when one strikes)."""

    DROP = "drop"          # mesh: the packet vanishes in the fabric
    CORRUPT = "corrupt"    # mesh: one payload byte is flipped in flight
    DELAY = "delay"        # mesh: extra in-fabric latency for one packet
    STALL = "stall"        # dma engines: extra latency on one operation
    ABORT = "abort"        # du engine: the command fails (typed error)
    DEGRADE = "degrade"    # eisa: bandwidth divided for a time window
    EARLY = "early"        # opt timer: fires immediately (premature flush)
    LATE = "late"          # opt timer: inflated timeout (sluggish flush)
    CRASH = "crash"        # kv.replica: the apply loop discards incoming
                           # records for duration_us (silent divergence)


# The kinds a seeded plan draws from, per site (weights are uniform).
DEFAULT_SITE_KINDS: Dict[str, Tuple[str, ...]] = {
    FaultSite.MESH_LINK: (FaultKind.DROP, FaultKind.CORRUPT, FaultKind.DELAY),
    FaultSite.NIC_DU: (FaultKind.STALL, FaultKind.ABORT),
    FaultSite.NIC_DMA_IN: (FaultKind.STALL,),
    FaultSite.BUS_EISA: (FaultKind.DEGRADE,),
    FaultSite.OPT_TIMER: (FaultKind.EARLY, FaultKind.LATE),
}


@dataclass
class Fault:
    """One scheduled fault: strike ``site`` with ``kind`` at/after ``time``.

    ``params`` carries kind-specific knobs (``delay_us``, ``stall_us``,
    ``factor``, ``duration_us``, ``offset`` for the corrupted byte,
    ``node`` to restrict a per-node site to one node).  ``fired_at`` is
    filled in by the injector when the fault actually strikes (the first
    matching operation at or after ``time``); None means it never found
    a victim.
    """

    time: float
    site: str
    kind: str
    params: Dict[str, Any] = field(default_factory=dict)
    index: int = 0
    fired_at: Optional[float] = None

    def matches(self, site: str, node: Optional[int]) -> bool:
        """Does this fault apply to an operation at ``site`` on ``node``?"""
        if self.site != site:
            return False
        want = self.params.get("node")
        return want is None or node is None or want == node

    def describe(self) -> str:
        """One-line human-readable form (CLI and trace annotations)."""
        extras = ", ".join(
            "%s=%s" % (k, v) for k, v in sorted(self.params.items())
        )
        status = ("fired@%.3f" % self.fired_at) if self.fired_at is not None else "pending"
        return "t>=%9.3f  %-10s %-8s %-14s {%s}" % (
            self.time, self.site, self.kind, status, extras
        )


class FaultPlan:
    """A reproducible schedule of faults.

    Build one explicitly from :class:`Fault` entries, or derive one from
    a seed with :meth:`from_seed` — the same seed always produces the
    same schedule.  Plans are consumed by a :class:`FaultInjector`.
    """

    def __init__(self, faults: Sequence[Fault] = (), seed: Optional[int] = None):
        self.seed = seed
        self.faults: List[Fault] = sorted(faults, key=lambda f: (f.time, f.index))
        for i, fault in enumerate(self.faults):
            fault.index = i

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self.faults)

    @classmethod
    def from_seed(
        cls,
        seed: int,
        horizon_us: float = 5000.0,
        count: int = 8,
        sites: Optional[Sequence[str]] = None,
        nodes: Optional[Sequence[int]] = None,
    ) -> "FaultPlan":
        """Derive a deterministic plan from ``seed``.

        ``count`` faults are spread uniformly over ``[0, horizon_us)``
        across the given ``sites`` (default: all known sites) with
        kind-appropriate parameters.  ``nodes`` restricts per-node sites
        (DU/EISA/OPT/incoming-DMA) to those node ids; None leaves the
        node unconstrained (the first crossing operation anywhere fires
        it).
        """
        rng = random.Random(seed)
        site_pool = list(sites) if sites is not None else sorted(DEFAULT_SITE_KINDS)
        faults: List[Fault] = []
        for i in range(count):
            site = rng.choice(site_pool)
            kind = rng.choice(DEFAULT_SITE_KINDS[site])
            time = rng.uniform(0.0, horizon_us)
            params: Dict[str, Any] = {}
            if kind == FaultKind.DELAY:
                params["delay_us"] = round(rng.uniform(5.0, 80.0), 3)
            elif kind == FaultKind.CORRUPT:
                params["offset"] = rng.randrange(0, 1 << 16)
            elif kind == FaultKind.STALL:
                params["stall_us"] = round(rng.uniform(10.0, 150.0), 3)
            elif kind == FaultKind.DEGRADE:
                params["factor"] = rng.choice([2.0, 4.0, 8.0])
                params["duration_us"] = round(rng.uniform(50.0, 500.0), 3)
            elif kind == FaultKind.LATE:
                params["factor"] = rng.choice([4.0, 16.0, 64.0])
            if nodes is not None and site != FaultSite.MESH_LINK:
                params["node"] = rng.choice(list(nodes))
            faults.append(Fault(time=time, site=site, kind=kind, params=params))
        return cls(faults, seed=seed)

    def describe(self) -> str:
        """Render the whole schedule, one fault per line."""
        header = "fault plan%s: %d faults" % (
            "" if self.seed is None else " (seed %d)" % self.seed, len(self.faults)
        )
        return "\n".join([header] + ["  " + f.describe() for f in self.faults])


class FaultInjector:
    """The machine-wide fault oracle the hardware consults.

    One injector is built per :class:`~repro.hardware.machine.Machine`
    and handed to every component that hosts a site.  ``enabled`` is a
    plain attribute so the hot-path guard is a single attribute check;
    it is True only while an armed plan still has pending faults is not
    required — it stays True for the whole run so late operations keep
    drawing (a fault scheduled at t strikes the first crossing at or
    after t).

    Components call :meth:`draw` at their site; a non-None result means
    *this* operation is the victim and the component applies the kind's
    effect.  The injector records every firing (``fired`` list, per-kind
    counters) and, when the tracer is enabled, emits a ``fault`` instant
    span on the ``faults`` track.
    """

    def __init__(self, sim: Simulator, plan: Optional[FaultPlan] = None,
                 tracer: Optional[Tracer] = None):
        self.sim = sim
        self.tracer = tracer or Tracer(sim)
        self.enabled = False
        self.plan: Optional[FaultPlan] = None
        self._pending: List[Fault] = []
        self.fired: List[Fault] = []
        self.counts: Dict[str, int] = {}
        if plan is not None:
            self.arm(plan)

    def arm(self, plan: FaultPlan) -> None:
        """Install ``plan`` and enable the injection sites."""
        self.plan = plan
        self._pending = list(plan)
        self.enabled = len(self._pending) > 0

    def pending(self) -> List[Fault]:
        """Faults that have not struck yet (scheduled or never matched)."""
        return list(self._pending)

    def draw(self, site: str, node: Optional[int] = None) -> Optional[Fault]:
        """Claim the earliest due fault for ``site`` (None if none due).

        A fault is *due* once simulated time has reached its scheduled
        time; the first operation to cross its site afterwards is the
        victim.  At most one fault is returned per call — a site hosting
        several due faults fires them on successive operations, oldest
        first, keeping multi-fault schedules deterministic.
        """
        now = self.sim.now
        for fault in self._pending:
            if fault.time <= now and fault.matches(site, node):
                self._pending.remove(fault)
                fault.fired_at = now
                self.fired.append(fault)
                key = "%s.%s" % (fault.site, fault.kind)
                self.counts[key] = self.counts.get(key, 0) + 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.instant(
                        "fault", "%s %s" % (fault.site, fault.kind),
                        track="faults",
                        data=dict(fault.params, site=fault.site, kind=fault.kind,
                                  scheduled=fault.time),
                    )
                tracer.log(
                    "fault", "injected %s/%s at t=%.3f (scheduled %.3f) %r",
                    fault.site, fault.kind, now, fault.time, fault.params,
                )
                return fault
        return None

    # -- reporting -----------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters: per-site.kind firing counts plus totals."""
        return {
            "enabled": self.enabled,
            "fired": len(self.fired),
            "pending": len(self._pending),
            "counts": dict(self.counts),
        }

    def firing_log(self) -> List[Tuple[float, str, str]]:
        """The realized schedule: (fired_at, site, kind) per strike.

        Two runs of the same seed and workload must produce identical
        logs — the determinism tests compare exactly this.
        """
        return [(f.fired_at, f.site, f.kind) for f in self.fired]

    def report(self) -> str:
        """Human-readable summary of what struck and what never matched."""
        lines = ["fault injector: %d fired, %d pending" % (len(self.fired), len(self._pending))]
        for fault in self.fired:
            lines.append("  " + fault.describe())
        for fault in self._pending:
            lines.append("  " + fault.describe())
        return "\n".join(lines)
