"""Outgoing Page Table (OPT).

The OPT 'maintains bindings to remote destination pages'.  The snoop
logic indexes it with the physical page number of a snooped write
(automatic update); the Deliberate Update Engine indexes it with a
destination selector derived from the transfer-initiation sequence.

We model both uses with one table holding two index regions:

* the *direct region* — one slot per local physical page, used by
  automatic-update bindings (index == local physical page number);
* the *import region* — proxy slots above the direct region, allocated
  when a process imports a remote buffer, used as DU destinations.

Each entry maps to one remote physical page and carries the combining /
timer / destination-interrupt configuration bits of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ...sim import FaultInjector, FaultKind, FaultSite
from ..config import MachineConfig

__all__ = ["OPTEntry", "OutgoingPageTable", "effective_timer"]


def effective_timer(
    entry: "OPTEntry",
    config: MachineConfig,
    faults: Optional[FaultInjector] = None,
    node: Optional[int] = None,
) -> float:
    """The combining timeout the timer hardware will actually honour.

    Normally the entry's ``timer_us`` override or the machine-wide
    ``combine_timeout``.  This is also the ``opt.timer`` fault site: an
    ``early`` misfire returns 0 (the open packet flushes immediately, a
    premature send), a ``late`` misfire inflates the timeout by the
    fault's ``factor`` (a sluggish flush).  Both are latency-only — the
    packet contents are never affected.
    """
    timeout = entry.timer_us if entry.timer_us is not None else config.combine_timeout
    if faults is not None and faults.enabled and entry.use_timer:
        fault = faults.draw(FaultSite.OPT_TIMER, node=node)
        if fault is not None:
            if fault.kind == FaultKind.EARLY:
                return 0.0
            return timeout * fault.params.get("factor", 16.0)
    return timeout


@dataclass
class OPTEntry:
    """One OPT slot: where a local page's traffic goes, and how.

    ``timer_us`` overrides the machine-wide combining timeout for this
    page (None = use ``MachineConfig.combine_timeout``); pages carrying
    single-burst control writes are configured with a short timer, pages
    whose packets grow across several writes with a longer one.
    """

    dst_node: int
    dst_page: int
    combining: bool = True
    use_timer: bool = True
    dest_interrupt: bool = False
    timer_us: Optional[float] = None

    def dst_paddr(self, page_size: int, offset: int) -> int:
        """Destination physical address for a write at ``offset`` in-page."""
        return self.dst_page * page_size + offset


class OutgoingPageTable:
    """The OPT of one NIC."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self._entries: Dict[int, OPTEntry] = {}
        # Proxy indexes for imported buffers live above the direct region.
        self._next_proxy = config.memory_pages
        self._free_proxies: List[int] = []

    # -- direct region (automatic update bindings) -----------------------
    def bind_page(self, local_page: int, entry: OPTEntry) -> None:
        """Install an AU binding: writes to ``local_page`` go to the entry."""
        if not 0 <= local_page < self.config.memory_pages:
            raise ValueError("local page %d out of range" % local_page)
        if local_page in self._entries:
            raise ValueError("local page %d already has an AU binding" % local_page)
        self._entries[local_page] = entry

    def unbind_page(self, local_page: int) -> None:
        """Remove a page's AU binding (ValueError if none)."""
        if self._entries.pop(local_page, None) is None:
            raise ValueError("local page %d has no AU binding" % local_page)

    def lookup(self, local_page: int) -> Optional[OPTEntry]:
        """Snoop-side lookup: the binding for a written page, if any."""
        return self._entries.get(local_page)

    # -- import region (deliberate update destinations) --------------------
    def allocate_proxy(self, entries: List[OPTEntry]) -> int:
        """Install proxy entries for an imported buffer's pages.

        Returns the base index; page ``i`` of the import is at
        ``base + i``.  Proxy indexes are what a DU command's
        transfer-initiation sequence selects.
        """
        if not entries:
            raise ValueError("an import must cover at least one page")
        base = self._next_proxy
        self._next_proxy += len(entries)
        for i, entry in enumerate(entries):
            self._entries[base + i] = entry
        return base

    def free_proxy(self, base: int, count: int) -> None:
        """Remove an import's proxy entries (unimport)."""
        for i in range(count):
            if self._entries.pop(base + i, None) is None:
                raise ValueError("proxy index %d was not allocated" % (base + i))

    def proxy_entry(self, index: int) -> OPTEntry:
        """DU-side lookup; raises if the selector is stale (unimported)."""
        entry = self._entries.get(index)
        if entry is None:
            raise KeyError("OPT index %d holds no binding" % index)
        return entry

    # -- inspection -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def bound_pages(self) -> Iterator[int]:
        """Local pages with AU bindings (direct region only)."""
        return (p for p in self._entries if p < self.config.memory_pages)
