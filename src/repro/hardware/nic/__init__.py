"""The SHRIMP network interface model (system S6): Figure 2's datapath."""

from .arbiter import Arbiter, INCOMING_PRIORITY, OUTGOING_PRIORITY
from .dma import DeliberateUpdateEngine, DUCommand, IncomingDmaEngine, ReceiveFault
from .fifo import OutgoingFifo
from .interface import NetworkInterface
from .ipt import IncomingPageTable, IPTEntry
from .opt import OPTEntry, OutgoingPageTable
from .packetizer import Packetizer
from .snoop import SnoopLogic

__all__ = [
    "Arbiter",
    "DUCommand",
    "DeliberateUpdateEngine",
    "INCOMING_PRIORITY",
    "IPTEntry",
    "IncomingDmaEngine",
    "IncomingPageTable",
    "NetworkInterface",
    "OPTEntry",
    "OUTGOING_PRIORITY",
    "OutgoingFifo",
    "OutgoingPageTable",
    "Packetizer",
    "ReceiveFault",
    "SnoopLogic",
]
