"""On-card region shadow: the snoop-fed serve cache for one-sided reads.

Automatic update works because the NIC snoops every write-through store
on the bus — the data passes the card for free.  The shadow extends
that observation one step: for pages an export has registered as
*read-served*, the card retains the snooped lines in its on-board
memory.  A remote READ_REQUEST against a resident page is then answered
entirely from NIC DRAM — the host bus and its arbiter are never
touched, which is what makes the one-sided GET a true server bypass
(docs/ONESIDED.md): the target host cannot even observe the read.

Coherence comes from the same two datapaths that already exist:

* snooped CPU stores — the region writer's write-through stores, fed in
  through :meth:`NetworkInterface.snoop_write`;
* the NIC's own landing DMA writes, mirrored by the Incoming DMA Engine
  as it writes main memory.

No third path writes an exported slot region, so the shadow never goes
stale.  Capacity is bounded by ``config.nic_shadow_bytes``; a region
that does not fit is simply not registered and its reads fall back to
the host-DMA serve path — correct either way, just slower.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

__all__ = ["RegionShadow"]


class RegionShadow:
    """Page-granular mirror of registered frames in NIC memory."""

    def __init__(self, config):
        self.page_size = config.page_size
        self.capacity = config.nic_shadow_bytes
        self.pages: Dict[int, bytearray] = {}
        self.rejects = 0

    @property
    def resident_bytes(self) -> int:
        return len(self.pages) * self.page_size

    def register(self, frames: Iterable[int]) -> bool:
        """Pin ``frames`` into the shadow; all-or-nothing.

        Returns False (and registers nothing) when the capacity bound
        would be exceeded — the caller keeps serving that region from
        host memory.
        """
        new = [f for f in frames if f not in self.pages]
        if self.resident_bytes + len(new) * self.page_size > self.capacity:
            self.rejects += 1
            return False
        for frame in new:
            self.pages[frame] = bytearray(self.page_size)
        return True

    def write(self, paddr: int, data: bytes) -> None:
        """Mirror a store the card observed; ignores unregistered pages.

        Untimed — the bytes are passing the card anyway (a snooped
        store or the NIC's own landing DMA); retaining them costs no
        extra bus time.
        """
        if not self.pages:
            return
        ps = self.page_size
        offset, n = 0, len(data)
        while offset < n:
            page, within = divmod(paddr + offset, ps)
            take = min(n - offset, ps - within)
            buf = self.pages.get(page)
            if buf is not None:
                buf[within:within + take] = data[offset:offset + take]
            offset += take

    def read(self, paddr: int, nbytes: int) -> Optional[bytes]:
        """The resident bytes at ``paddr``, or None if any page is absent."""
        ps = self.page_size
        out = bytearray()
        offset = 0
        while offset < nbytes:
            page, within = divmod(paddr + offset, ps)
            take = min(nbytes - offset, ps - within)
            buf = self.pages.get(page)
            if buf is None:
                return None
            out += buf[within:within + take]
            offset += take
        return bytes(out)
