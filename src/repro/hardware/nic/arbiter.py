"""Arbiter for the NIC chip's processor port.

'The Arbiter is needed to share the NIC's processor port between
outgoing and incoming transfer, with incoming given absolute priority.'
Modeled as a single-slot priority resource: the incoming DMA engine
claims it at priority 0, the outgoing injection stage at priority 1.
"""

from __future__ import annotations

from ...sim import Resource, Simulator

__all__ = ["Arbiter", "INCOMING_PRIORITY", "OUTGOING_PRIORITY"]

INCOMING_PRIORITY = 0
OUTGOING_PRIORITY = 1


class Arbiter(Resource):
    """The NIC-port arbiter of one network interface."""

    def __init__(self, sim: Simulator, node_id: int):
        super().__init__(sim, capacity=1, name="arbiter-n%d" % node_id)
