"""The Outgoing FIFO: closed packets waiting for the NIC chip.

A thin wrapper over :class:`repro.sim.Store` that adds occupancy
statistics (and a ``metrics_snapshot`` for the machine's
:class:`~repro.sim.MetricsRegistry`).  Capacity is in packets; a full
FIFO backpressures the packetizer (blocking put), which is how a slow
link ultimately stalls the sending CPU's deliberate-update engine.
"""

from __future__ import annotations

from ...sim import Event, Simulator, Store
from ..config import MachineConfig
from ..router.packet import Packet

__all__ = ["OutgoingFifo"]


class OutgoingFifo:
    """FIFO of closed packets between the packetizer and the arbiter."""

    def __init__(self, sim: Simulator, config: MachineConfig, name: str = "outgoing-fifo"):
        self.sim = sim
        self.config = config
        self._store = Store(sim, capacity=config.outgoing_fifo_packets, name=name)
        self.packets_enqueued = 0
        self.bytes_enqueued = 0
        self.high_water = 0

    def put(self, packet: Packet) -> Event:
        """Enqueue a packet; blocks (event pends) while the FIFO is full."""
        self.packets_enqueued += 1
        self.bytes_enqueued += packet.size
        event = self._store.put(packet)
        self.high_water = max(self.high_water, len(self._store))
        return event

    def get(self) -> Event:
        """Dequeue the oldest packet (the arbiter/injection side)."""
        return self._store.get()

    def try_get(self, default=None):
        """Non-blocking dequeue; ``default`` when the FIFO is empty."""
        return self._store.try_get(default)

    def __len__(self) -> int:
        return len(self._store)

    def metrics_snapshot(self, now=None) -> dict:
        """Utilization counters for the metrics registry."""
        snap = self._store.metrics_snapshot(now)
        snap["name"] = self._store.name
        snap["kind"] = "fifo"
        snap["bytes"] = self.bytes_enqueued
        return snap
