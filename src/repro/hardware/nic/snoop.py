"""Snoop logic: watches all writes on the Xpress memory bus.

'Automatic update is implemented by having the SHRIMP network interface
hardware snoop all writes on the memory bus.  If the write is to an
address that has an automatic update binding, the hardware builds a
packet containing the destination address and the written value.'

The node CPU calls :meth:`SnoopLogic.on_write` after every store it
performs (the Xpress card carries the bus signals to the NIC).  Writes
are split at page boundaries before the OPT lookup, since bindings are
per page.
"""

from __future__ import annotations

from ..config import MachineConfig
from .opt import OutgoingPageTable
from .packetizer import Packetizer

__all__ = ["SnoopLogic"]


class SnoopLogic:
    """The memory-bus snooper of one NIC."""

    def __init__(self, config: MachineConfig, opt: OutgoingPageTable, packetizer: Packetizer):
        self.config = config
        self.opt = opt
        self.packetizer = packetizer
        self.writes_seen = 0
        self.writes_matched = 0

    def on_write(self, paddr: int, data: bytes) -> None:
        """Process one bus write of ``data`` at physical address ``paddr``."""
        self.writes_seen += 1
        page_size = self.config.page_size
        offset = 0
        nbytes = len(data)
        while offset < nbytes:
            addr = paddr + offset
            page, page_offset = divmod(addr, page_size)
            chunk = min(nbytes - offset, page_size - page_offset)
            entry = self.opt.lookup(page)
            if entry is not None:
                self.writes_matched += 1
                self.packetizer.au_write(page_offset, data[offset : offset + chunk], entry)
            offset += chunk
