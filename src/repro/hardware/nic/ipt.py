"""Incoming Page Table (IPT).

'The IPT has an entry for every page of memory, and each entry contains
a flag which specifies whether the network interface can transfer data
to the corresponding page or not.'  A second, receiver-specified flag
enables notification interrupts for the page (Section 3.2).

If data arrives for a page that is not enabled, the incoming DMA engine
freezes the receive datapath and interrupts the node CPU — the hardware
half of VMMC's protection story (the MMU-equivalent bound on incoming
transfers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from ..config import MachineConfig

__all__ = ["IPTEntry", "IncomingPageTable"]


@dataclass
class IPTEntry:
    """Receive permission + interrupt configuration of one physical page."""

    enabled: bool = False
    interrupt: bool = False
    # Opaque kernel cookie: which export (and therefore which process /
    # handler) owns this page.  The hardware only needs the two flags;
    # the cookie is how the kernel's notification dispatch finds its way
    # back from an interrupting page to the user handler.
    owner: Any = None


class IncomingPageTable:
    """The IPT of one NIC (entries default to disabled)."""

    def __init__(self, config: MachineConfig):
        self.config = config
        self._entries: Dict[int, IPTEntry] = {}

    def entry(self, page: int) -> IPTEntry:
        """The (lazily materialized) entry for a physical page."""
        if not 0 <= page < self.config.memory_pages:
            raise ValueError("page %d out of range" % page)
        ent = self._entries.get(page)
        if ent is None:
            ent = IPTEntry()
            self._entries[page] = ent
        return ent

    def enable(self, page: int, interrupt: bool = False, owner: Any = None) -> None:
        """Permit incoming transfers to ``page`` (export-time setup)."""
        ent = self.entry(page)
        ent.enabled = True
        ent.interrupt = interrupt
        ent.owner = owner

    def disable(self, page: int) -> None:
        """Forbid incoming transfers (unexport)."""
        ent = self.entry(page)
        ent.enabled = False
        ent.interrupt = False
        ent.owner = None

    def set_interrupt(self, page: int, interrupt: bool) -> None:
        """Flip the receiver-specified interrupt flag.

        This is the per-page status bit the libraries toggle when
        switching between polling and blocking (Section 6).
        """
        self.entry(page).interrupt = interrupt

    def is_enabled(self, page: int) -> bool:
        """May the NIC deliver into this page?"""
        ent = self._entries.get(page)
        return ent is not None and ent.enabled

    def wants_interrupt(self, page: int) -> bool:
        """Is the receiver-side interrupt flag set?"""
        ent = self._entries.get(page)
        return ent is not None and ent.interrupt

    def check_range(self, paddr: int, nbytes: int) -> bool:
        """True iff every page touched by ``[paddr, paddr+nbytes)`` is enabled."""
        page_size = self.config.page_size
        first = paddr // page_size
        last = (paddr + nbytes - 1) // page_size
        return all(self.is_enabled(p) for p in range(first, last + 1))
