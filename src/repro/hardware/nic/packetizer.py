"""Packetizing hardware: turns snooped writes and DU chunks into packets.

Implements the combining behaviour of Section 3.2:

* If a page's OPT entry is configured for combining, an automatic-update
  write is buffered in an open packet at the FIFO tail; a subsequent AU
  write to the *next consecutive address* is appended to it.
* A non-consecutive write closes the open packet and starts a new one.
* A packet reaching ``max_packet_payload`` is closed.
* If the page is configured for the hardware timer, a timeout with no
  subsequent AU write sends the open packet automatically.

Deliberate-update chunks bypass combining (they are already maximal) but
share the FIFO, so AU/DU ordering from one node is preserved — the mux
in Figure 2.

With the tracer enabled, each closed packet emits one ``nic.packetize``
span on track ``n<id>.nic.pktz`` covering the lookup-plus-packetize
latency it was charged (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

from typing import Callable, Optional

from ...sim import FaultInjector, Simulator, Tracer, spawn
from ..config import MachineConfig
from ..router.packet import Packet, PacketKind
from .fifo import OutgoingFifo
from .opt import OPTEntry, effective_timer
from ...sim.timers import IdleTimer

__all__ = ["Packetizer"]


class _OpenPacket:
    """A packet under construction at the FIFO tail."""

    __slots__ = ("dst_node", "dst_paddr", "data", "interrupt", "use_timer",
                 "timeout", "last_write")

    def __init__(self, dst_node: int, dst_paddr: int, data: bytes, interrupt: bool,
                 use_timer: bool, timeout: float, now: float):
        self.dst_node = dst_node
        self.dst_paddr = dst_paddr
        self.data = bytearray(data)
        self.interrupt = interrupt
        self.use_timer = use_timer
        self.timeout = timeout
        self.last_write = now

    @property
    def end_paddr(self) -> int:
        return self.dst_paddr + len(self.data)


class Packetizer:
    """The packetizing + combining stage of one NIC's outgoing datapath."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        fifo: OutgoingFifo,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.fifo = fifo
        self.tracer = tracer or Tracer(sim)
        self.faults = faults or FaultInjector(sim)
        self._open: Optional[_OpenPacket] = None
        self._timer = IdleTimer(sim, self._timer_probe, self._close_open)
        self._last_enqueue_at = 0.0
        self.packets_formed = 0
        self.combined_writes = 0

    # -- automatic update path ------------------------------------------------
    def au_write(self, offset_in_page: int, data: bytes, entry: OPTEntry) -> None:
        """Handle one snooped write of ``data`` to a bound page.

        ``data`` never crosses a page boundary (the snoop logic splits
        bus writes per page before OPT lookup).
        """
        cfg = self.config
        dst_paddr = entry.dst_paddr(cfg.page_size, offset_in_page)
        if not entry.combining:
            # Every word of the write becomes its own packet — the
            # faithful (and expensive) uncombined behaviour; see the
            # combining ablation benchmark.
            self._close_open()
            word = cfg.word_size
            for i in range(0, len(data), word):
                self._emit_closed(
                    entry.dst_node,
                    dst_paddr + i,
                    bytes(data[i : i + word]),
                    PacketKind.AUTOMATIC_UPDATE,
                    entry.dest_interrupt,
                )
            return

        position = 0
        while position < len(data):
            open_packet = self._open
            addr = dst_paddr + position
            if (
                open_packet is not None
                and open_packet.dst_node == entry.dst_node
                and open_packet.end_paddr == addr
                and len(open_packet.data) < cfg.max_packet_payload
            ):
                room = cfg.max_packet_payload - len(open_packet.data)
                chunk = data[position : position + room]
                open_packet.data.extend(chunk)
                open_packet.interrupt = open_packet.interrupt or entry.dest_interrupt
                open_packet.last_write = self.sim.now
                self.combined_writes += 1
                position += len(chunk)
                if len(open_packet.data) >= cfg.max_packet_payload:
                    self._close_open()
                continue
            # Not combinable with the open packet: close it and open fresh.
            self._close_open()
            chunk = data[position : position + cfg.max_packet_payload]
            timeout = effective_timer(entry, cfg, self.faults, self.node_id)
            self._open = _OpenPacket(
                entry.dst_node,
                addr,
                bytes(chunk),
                entry.dest_interrupt,
                entry.use_timer,
                timeout,
                self.sim.now,
            )
            position += len(chunk)
            if len(self._open.data) >= cfg.max_packet_payload:
                self._close_open()
            elif entry.use_timer:
                self._arm_timer()

    # -- deliberate update path --------------------------------------------------
    def du_emit(self, dst_node: int, dst_paddr: int, payload: bytes, interrupt: bool) -> None:
        """Queue a DU chunk as one packet (after closing any open AU packet)."""
        self._close_open()
        self._emit_closed(dst_node, dst_paddr, payload, PacketKind.DELIBERATE_UPDATE, interrupt)

    # -- one-sided read request path ---------------------------------------------
    def request_emit(self, dst_node: int, payload: bytes) -> None:
        """Queue a READ_REQUEST descriptor as one packet.

        Request packets carry no destination store address (the target
        NIC interprets the descriptor instead of landing the payload),
        but they share the FIFO and the mesh with update traffic, so
        per-pair ordering and the mesh fault sites apply to them too.
        """
        self._close_open()
        self._emit_closed(dst_node, 0, payload, PacketKind.READ_REQUEST, False)

    # -- timer ---------------------------------------------------------------------
    def _arm_timer(self) -> None:
        if self._open is None:
            return
        self._timer.arm(self._open.timeout)

    def _timer_probe(self):
        # IdleTimer probe: the guarded object is the open packet; a
        # closed or timer-less packet disarms the check entirely.
        open_packet = self._open
        if open_packet is None or not open_packet.use_timer:
            return None
        return (open_packet.timeout, open_packet.last_write)

    def flush(self) -> None:
        """Force the open packet (if any) onto the FIFO."""
        self._close_open()

    # -- internals ----------------------------------------------------------------
    def _close_open(self) -> None:
        open_packet, self._open = self._open, None
        if open_packet is None:
            return
        self._emit_closed(
            open_packet.dst_node,
            open_packet.dst_paddr,
            bytes(open_packet.data),
            PacketKind.AUTOMATIC_UPDATE,
            open_packet.interrupt,
        )

    def _emit_closed(
        self,
        dst_node: int,
        dst_paddr: int,
        payload: bytes,
        kind: PacketKind,
        interrupt: bool,
    ) -> None:
        packet = Packet(
            src_node=self.node_id,
            dst_node=dst_node,
            dst_paddr=dst_paddr,
            payload=payload,
            kind=kind,
            interrupt=interrupt,
        )
        self.packets_formed += 1
        self.tracer.log(
            "packetize", "n%d formed #%d %s %dB -> n%d@%#x",
            self.node_id, packet.seq, kind.value, packet.size, dst_node,
            dst_paddr,
        )
        # Header formation + FIFO entry take packetize_latency; AU packets
        # additionally went through the snoop/OPT lookup stage.  Enqueue
        # times are forced monotonic so a cheaper DU packet can never
        # overtake an AU packet already in the pipeline (the mux feeds
        # one FIFO, in order).  A spawned putter keeps FIFO-full
        # backpressure working while preserving order (Store putters
        # queue FIFO).
        delay = self.config.packetize_latency
        if kind is PacketKind.AUTOMATIC_UPDATE:
            delay += self.config.snoop_opt_lookup
        target = max(self.sim.now + delay, self._last_enqueue_at)
        self._last_enqueue_at = target
        if self.tracer.enabled:
            self.tracer.complete(
                "nic.packetize",
                "pkt #%d %s %dB" % (packet.seq, kind.value, packet.size),
                self.sim.now,
                target,
                track="n%d.nic.pktz" % self.node_id,
                data={"bytes": packet.size, "dst_node": dst_node},
            )
        self.sim.schedule_call(target - self.sim.now, self._enqueue, packet)

    def _enqueue(self, packet: Packet) -> None:
        event = self.fifo.put(packet)
        if event.triggered:
            return
        # FIFO full: park a process on the pending put so backpressure
        # reaches the packetizer in FIFO order.
        def putter():
            yield event

        spawn(self.sim, putter(), name="fifo-put-n%d" % self.node_id)
