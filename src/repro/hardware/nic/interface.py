"""The SHRIMP network interface: Figure 2's datapath, assembled.

One :class:`NetworkInterface` per node ties together the snoop logic,
Outgoing Page Table, packetizer (combining), Outgoing FIFO, Deliberate
Update Engine, arbiter, Incoming Page Table, and Incoming DMA Engine,
and connects them to the mesh backplane.

The CPU side sees three entry points:

* :meth:`snoop_write` — called (synchronously, zero extra cost: the CPU
  already paid for the store) after every CPU store; the AU datapath.
* :meth:`initiate_deliberate_update` — the decoded result of the
  two-access initiation sequence; the DU datapath.  The *caller* charges
  the two EISA programmed-I/O accesses.
* the kernel hooks (:attr:`fault_handler`, :attr:`notify_handler`,
  :meth:`unfreeze`) — the interrupt side.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ...sim import BandwidthChannel, Event, FaultInjector, Simulator, Tracer, spawn
from ..config import MachineConfig
from ..memory import PhysicalMemory
from ..router.mesh import MeshBackplane
from .arbiter import Arbiter, OUTGOING_PRIORITY
from .dma import DeliberateUpdateEngine, DUCommand, IncomingDmaEngine, ReceiveFault
from .fifo import OutgoingFifo
from .ipt import IncomingPageTable
from .opt import OutgoingPageTable
from .packetizer import Packetizer
from .shadow import RegionShadow
from .snoop import SnoopLogic

__all__ = ["NetworkInterface"]


class NetworkInterface:
    """One node's SHRIMP NIC (the two custom boards of Section 3.2)."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        memory: PhysicalMemory,
        eisa: BandwidthChannel,
        mesh: MeshBackplane,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.memory = memory
        self.eisa = eisa
        self.mesh = mesh
        self.tracer = tracer or Tracer(sim)
        self.faults = faults or FaultInjector(sim)

        self.opt = OutgoingPageTable(config)
        self.ipt = IncomingPageTable(config)
        self.fifo = OutgoingFifo(sim, config, name="outgoing-fifo-n%d" % node_id)
        self.packetizer = Packetizer(sim, config, node_id, self.fifo, self.tracer,
                                     faults=self.faults)
        self.snoop = SnoopLogic(config, self.opt, self.packetizer)
        self.arbiter = Arbiter(sim, node_id)
        self.du_engine = DeliberateUpdateEngine(
            sim, config, node_id, memory, eisa, self.opt, self.packetizer,
            self.tracer, faults=self.faults
        )
        self.incoming = IncomingDmaEngine(
            sim, config, node_id, memory, eisa, self.ipt, self.arbiter,
            self.tracer, faults=self.faults
        )
        # One-sided READ_REQUEST replies leave through this node's own
        # outgoing datapath (packetizer -> FIFO -> inject -> mesh).
        self.incoming.packetizer = self.packetizer
        # Snoop-fed serve cache for exported read-served regions: fed by
        # snoop_write and by the landing engine's own DMA writes, read
        # by the READ_REQUEST serve path (docs/ONESIDED.md).
        self.shadow = RegionShadow(config)
        self.incoming.shadow = self.shadow
        mesh.attach(node_id, self.incoming.deliver)
        spawn(sim, self._inject_loop(), name="nic-inject-n%d" % node_id)

    # -- CPU-facing datapaths ------------------------------------------------
    def snoop_write(self, paddr: int, data: bytes) -> None:
        """Feed one completed CPU store into the snoop logic."""
        self.snoop.on_write(paddr, data)
        self.shadow.write(paddr, data)

    def initiate_deliberate_update(
        self,
        src_segments: List[Tuple[int, int]],
        opt_base: int,
        offset: int,
        size: int,
        interrupt: bool = False,
    ) -> Event:
        """Queue a deliberate update; returns its source-read-done event.

        The caller (VMMC layer) is responsible for charging the two EISA
        programmed-I/O accesses of the initiation sequence and for the
        word-alignment check the hardware imposes.
        """
        done = self.sim.event("du-done-n%d" % self.node_id)
        command = DUCommand(
            src_segments=src_segments,
            opt_base=opt_base,
            offset=offset,
            size=size,
            interrupt=interrupt,
            done=done,
        )
        self.du_engine.submit(command)
        return done

    # -- kernel hooks -----------------------------------------------------------
    @property
    def fault_handler(self) -> Optional[Callable[[ReceiveFault], None]]:
        return self.incoming.fault_handler

    @fault_handler.setter
    def fault_handler(self, handler: Callable[[ReceiveFault], None]) -> None:
        self.incoming.fault_handler = handler

    @property
    def notify_handler(self) -> Optional[Callable[[int, int], None]]:
        return self.incoming.notify_handler

    @notify_handler.setter
    def notify_handler(self, handler: Callable[[int, int], None]) -> None:
        self.incoming.notify_handler = handler

    def unfreeze(self, discard: bool = False) -> None:
        """Resume (optionally discarding) a frozen receive path."""
        self.incoming.unfreeze(discard=discard)

    # -- outgoing injection ---------------------------------------------------------
    def _inject_loop(self):
        """Move closed packets from the Outgoing FIFO onto the backplane.

        One serial process per NIC: this is what makes per-source
        injection (and therefore per-pair delivery) ordered.
        """
        cfg = self.config
        track = "n%d.nic.inject" % self.node_id
        fifo = self.fifo
        empty = object()
        while True:
            # Buffered-packet fast path (see IncomingEngine._run).
            packet = fifo.try_get(empty)
            if packet is empty:
                packet = yield fifo.get()
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "nic.inject", "inject #%d %dB" % (packet.seq, packet.size),
                    track=track, data={"bytes": packet.size},
                )
            grant = self.arbiter.request(priority=OUTGOING_PRIORITY)
            if not grant.triggered:
                yield grant
            yield self.sim.timeout(cfg.nic_injection_latency)
            self.tracer.log(
                "inject", "n%d injected #%d", self.node_id, packet.seq
            )
            self.mesh.inject(packet)
            self.tracer.end(span)
            self.arbiter.release(grant)

    # -- statistics -------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot for tests and benchmark reports."""
        return {
            "au_writes_seen": self.snoop.writes_seen,
            "au_writes_matched": self.snoop.writes_matched,
            "packets_formed": self.packetizer.packets_formed,
            "combined_writes": self.packetizer.combined_writes,
            "du_transfers": self.du_engine.transfers_done,
            "du_bytes": self.du_engine.bytes_sent,
            "packets_received": self.incoming.packets_received,
            "bytes_received": self.incoming.bytes_received,
            "receive_faults": self.incoming.faults,
            "read_requests_served": self.incoming.read_requests_served,
            "read_requests_shadowed": self.incoming.read_requests_shadowed,
            "read_requests_dropped": self.incoming.read_requests_dropped,
            "read_requests_denied": self.incoming.read_requests_denied,
            "shadow_resident_bytes": self.shadow.resident_bytes,
            "fifo_high_water": self.fifo.high_water,
        }
