"""The NIC's two DMA engines.

*Deliberate Update Engine* (outgoing): interprets the two-access
transfer-initiation sequence, DMAs the source data out of main memory
over the EISA bus, and feeds it to the packetizer in chunks.

*Incoming DMA Engine*: takes packets from the NIC chip, checks the
Incoming Page Table, and DMAs the payload into main memory over the
EISA bus.  Receiving into a non-enabled page freezes the receive
datapath and interrupts the node CPU (Section 3.2).

When the machine tracer is enabled each engine wraps its work in a
span — ``nic.du`` on track ``n<id>.nic.du``, ``nic.dma_in`` on
``n<id>.nic.in`` — guarded by one attribute check when disabled
(docs/OBSERVABILITY.md).

Both engines share the node's one EISA bus, so heavy receive traffic
slows concurrent deliberate-update sends on the same node — the
'aggregate DMA bandwidth of the shared EISA and Xpress buses' limit
that caps end-to-end bandwidth at ~23 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ...sim import (
    BandwidthChannel,
    Event,
    FaultInjector,
    FaultKind,
    FaultSite,
    Simulator,
    Store,
    Tracer,
    spawn,
)
from ..config import MachineConfig
from ..memory import PhysicalMemory
from .arbiter import Arbiter, INCOMING_PRIORITY
from .ipt import IncomingPageTable
from .opt import OutgoingPageTable
from .packetizer import Packetizer

__all__ = ["DUCommand", "DeliberateUpdateEngine", "IncomingDmaEngine", "ReceiveFault"]


@dataclass
class DUCommand:
    """One decoded transfer-initiation sequence.

    ``src_segments`` are physical (address, length) pieces of the source
    buffer, in order (the kernel's page tables produced them; user pages
    need not be physically contiguous).  ``opt_base``/``offset`` select
    the destination through the Outgoing Page Table's import region.
    ``done`` fires when the source has been fully read — the point at
    which a *blocking* deliberate-update send returns (the source buffer
    is then reusable; delivery completes asynchronously).
    """

    src_segments: List[Tuple[int, int]]
    opt_base: int
    offset: int
    size: int
    interrupt: bool
    done: Event

    def __post_init__(self) -> None:
        total = sum(length for _, length in self.src_segments)
        if total != self.size:
            raise ValueError(
                "source segments cover %d bytes but size is %d" % (total, self.size)
            )


@dataclass
class ReceiveFault:
    """Details handed to the kernel when the receive datapath freezes."""

    node_id: int
    paddr: int
    size: int
    src_node: int


class _SegmentReader:
    """Walks a DU command's physical source segments chunk by chunk."""

    def __init__(self, memory: PhysicalMemory, segments: List[Tuple[int, int]]):
        self.memory = memory
        self.segments = segments
        self.index = 0
        self.within = 0

    def read(self, nbytes: int) -> bytes:
        out = bytearray()
        while nbytes > 0 and self.index < len(self.segments):
            paddr, length = self.segments[self.index]
            available = length - self.within
            take = min(nbytes, available)
            out += self.memory.read(paddr + self.within, take)
            self.within += take
            nbytes -= take
            if self.within == length:
                self.index += 1
                self.within = 0
        if nbytes > 0:
            raise ValueError("source segments exhausted early")
        return bytes(out)


class DeliberateUpdateEngine:
    """Drains the DU command queue, one chunked DMA read at a time."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        memory: PhysicalMemory,
        eisa: BandwidthChannel,
        opt: OutgoingPageTable,
        packetizer: Packetizer,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.memory = memory
        self.eisa = eisa
        self.opt = opt
        self.packetizer = packetizer
        self.tracer = tracer or Tracer(sim)
        # Stored as ``injector`` engine-wide: the incoming engine's
        # ``faults`` name is already its receive-fault counter.
        self.injector = faults or FaultInjector(sim)
        self.commands: Store = Store(sim, name="du-commands-n%d" % node_id)
        self.transfers_done = 0
        self.bytes_sent = 0
        self.stalls = 0
        self.aborts = 0
        # Occupancy accounting for the metrics registry: time from
        # dequeuing a command to resolving it (done or aborted).  The
        # engine is serial, so busy_time/now is its utilization.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        spawn(sim, self._run(), name="du-engine-n%d" % node_id)

    def submit(self, command: DUCommand) -> None:
        """Queue a decoded initiation sequence (called at PIO-decode time)."""
        if not self.commands.try_put(command):
            raise RuntimeError("DU command queue unexpectedly full")

    def metrics_snapshot(self, now: Optional[float] = None) -> dict:
        """Utilization counters for the metrics registry."""
        now = self.sim.now if now is None else now
        busy = self.busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return {
            "name": "du-engine-n%d" % self.node_id,
            "kind": "engine",
            "busy_time": busy,
            "count": self.transfers_done,
            "bytes": self.bytes_sent,
        }

    def _run(self):
        cfg = self.config
        track = "n%d.nic.du" % self.node_id
        while True:
            command = yield self.commands.get()
            self._busy_since = self.sim.now
            if self.injector.enabled:
                fault = self.injector.draw(FaultSite.NIC_DU, node=self.node_id)
                if fault is not None:
                    if fault.kind == FaultKind.ABORT:
                        # The engine rejects the whole command before any
                        # chunk is emitted; the initiator's done event
                        # fails with a typed error instead of hanging.
                        from ...vmmc.errors import VmmcTransferError

                        self.aborts += 1
                        self.tracer.log(
                            "fault",
                            "n%d DU command %dB ABORTED by fault"
                            % (self.node_id, command.size),
                        )
                        command.done.fail(VmmcTransferError(
                            "deliberate update of %d bytes aborted by the "
                            "DU engine on node %d" % (command.size, self.node_id)
                        ))
                        self.busy_time += self.sim.now - self._busy_since
                        self._busy_since = None
                        continue
                    self.stalls += 1
                    yield self.sim.timeout(fault.params.get("stall_us", 50.0))
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "nic.du", "du %dB" % command.size, track=track,
                    data={"bytes": command.size},
                )
            yield self.sim.timeout(cfg.du_engine_setup)
            reader = _SegmentReader(self.memory, command.src_segments)
            offset = command.offset
            remaining = command.size
            while remaining > 0:
                # Chunk at both the packet-size bound and destination page
                # boundaries so each packet maps through one OPT entry.
                page_room = cfg.page_size - (offset % cfg.page_size)
                chunk = min(remaining, cfg.max_packet_payload, page_room)
                yield self.sim.timeout(cfg.du_dma_read_setup)
                yield self.eisa.transfer(chunk)
                data = reader.read(chunk)
                entry = self.opt.proxy_entry(command.opt_base + offset // cfg.page_size)
                dst_paddr = entry.dst_paddr(cfg.page_size, offset % cfg.page_size)
                last = remaining == chunk
                self.packetizer.du_emit(
                    entry.dst_node,
                    dst_paddr,
                    data,
                    interrupt=command.interrupt and last,
                )
                offset += chunk
                remaining -= chunk
                self.bytes_sent += chunk
            self.transfers_done += 1
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
            self.tracer.end(span)
            command.done.succeed()


class IncomingDmaEngine:
    """Moves arriving packets from the NIC chip into main memory."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        memory: PhysicalMemory,
        eisa: BandwidthChannel,
        ipt: IncomingPageTable,
        arbiter: Arbiter,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.memory = memory
        self.eisa = eisa
        self.ipt = ipt
        self.arbiter = arbiter
        self.tracer = tracer or Tracer(sim)
        self.injector = faults or FaultInjector(sim)
        self.stalls = 0
        self.incoming: Store = Store(
            sim, capacity=config.incoming_queue_packets, name="incoming-n%d" % node_id
        )
        # Kernel hooks, installed at boot:
        self.fault_handler: Optional[Callable[[ReceiveFault], None]] = None
        self.notify_handler: Optional[Callable[[int, int], None]] = None
        self._unfreeze: Optional[Event] = None
        self._discard_pending = False
        self.frozen = False
        self.packets_received = 0
        self.bytes_received = 0
        self.faults = 0
        self.packets_discarded = 0
        spawn(sim, self._run(), name="incoming-dma-n%d" % node_id)

    def deliver(self, packet) -> None:
        """Entry point wired to the mesh: a packet reached this NIC."""
        def putter():
            yield self.incoming.put(packet)

        spawn(self.sim, putter(), name="nic-recv-n%d" % self.node_id)

    def unfreeze(self, discard: bool = False) -> None:
        """Kernel action: resume the receive datapath after a fault.

        With ``discard=True`` the offending packet is dropped instead of
        retried — the kernel's recourse against traffic for a mapping it
        will not re-enable (e.g. a stale sender after an unexport).
        """
        if not self.frozen:
            raise RuntimeError("receive datapath of node %d is not frozen" % self.node_id)
        self.frozen = False
        self._discard_pending = discard
        event, self._unfreeze = self._unfreeze, None
        assert event is not None
        event.succeed()

    def _run(self):
        cfg = self.config
        while True:
            packet = yield self.incoming.get()
            if self.injector.enabled:
                fault = self.injector.draw(FaultSite.NIC_DMA_IN, node=self.node_id)
                if fault is not None:
                    # The landing engine hiccups (bus retry storm, slow
                    # card): the packet sits in the incoming queue a
                    # while longer.  Latency-only; data is untouched.
                    self.stalls += 1
                    yield self.sim.timeout(fault.params.get("stall_us", 50.0))
            grant = self.arbiter.request(priority=INCOMING_PRIORITY)
            yield grant
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "nic.dma_in", "land #%d %dB" % (packet.seq, packet.size),
                    track="n%d.nic.in" % self.node_id,
                    data={"bytes": packet.size, "src_node": packet.src_node},
                )
            yield self.sim.timeout(cfg.ipt_lookup)
            discarded = False
            while not self.ipt.check_range(packet.dst_paddr, packet.size):
                # Page not enabled: freeze the receive datapath and
                # interrupt the CPU.  We stay frozen until the kernel
                # calls unfreeze(); then the check is retried (the kernel
                # may have enabled the page, or discarded us via a new
                # mapping — retry models the hardware re-walking the IPT).
                self.frozen = True
                self.faults += 1
                self._unfreeze = self.sim.event("unfreeze-n%d" % self.node_id)
                fault = ReceiveFault(self.node_id, packet.dst_paddr, packet.size, packet.src_node)
                self.tracer.log("fault", "n%d receive fault at %#x" % (self.node_id, packet.dst_paddr))
                if self.fault_handler is None:
                    self.arbiter.release(grant)
                    raise RuntimeError(
                        "receive fault on node %d with no kernel handler: %r"
                        % (self.node_id, fault)
                    )
                self.sim.schedule_call(cfg.interrupt_latency, self.fault_handler, fault)
                yield self._unfreeze
                if self._discard_pending:
                    self._discard_pending = False
                    self.packets_discarded += 1
                    discarded = True
                    break
            if discarded:
                self.tracer.end(span, data={"discarded": True})
                self.arbiter.release(grant)
                continue
            yield self.sim.timeout(cfg.incoming_dma_setup)
            yield self.eisa.transfer(packet.size)
            self.memory.write(packet.dst_paddr, packet.payload)
            self.packets_received += 1
            self.bytes_received += packet.size
            self.tracer.log(
                "dma-in",
                "n%d landed #%d %dB at %#x"
                % (self.node_id, packet.seq, packet.size, packet.dst_paddr),
            )
            self.tracer.end(span)
            self.arbiter.release(grant)
            first_page = packet.dst_paddr // cfg.page_size
            if packet.interrupt and self.ipt.wants_interrupt(first_page):
                # Sender-specified AND receiver-specified flags both set:
                # raise the notification interrupt (Section 3.2).
                if self.notify_handler is not None:
                    self.sim.schedule_call(
                        cfg.interrupt_latency, self.notify_handler, first_page, packet.size
                    )
