"""The NIC's two DMA engines.

*Deliberate Update Engine* (outgoing): interprets the two-access
transfer-initiation sequence, DMAs the source data out of main memory
over the EISA bus, and feeds it to the packetizer in chunks.

*Incoming DMA Engine*: takes packets from the NIC chip, checks the
Incoming Page Table, and DMAs the payload into main memory over the
EISA bus.  Receiving into a non-enabled page freezes the receive
datapath and interrupts the node CPU (Section 3.2).

When the machine tracer is enabled each engine wraps its work in a
span — ``nic.du`` on track ``n<id>.nic.du``, ``nic.dma_in`` on
``n<id>.nic.in`` — guarded by one attribute check when disabled
(docs/OBSERVABILITY.md).

Both engines share the node's one EISA bus, so heavy receive traffic
slows concurrent deliberate-update sends on the same node — the
'aggregate DMA bandwidth of the shared EISA and Xpress buses' limit
that caps end-to-end bandwidth at ~23 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ...sim import (
    BandwidthChannel,
    Event,
    FaultInjector,
    FaultKind,
    FaultSite,
    Simulator,
    Store,
    Tracer,
    spawn,
)
from ..config import MachineConfig
from ..memory import PhysicalMemory
from ..router.packet import (PacketKind, decode_read_request,
                             encode_read_reply_header)
from .arbiter import Arbiter, INCOMING_PRIORITY
from .ipt import IncomingPageTable
from .opt import OutgoingPageTable
from .packetizer import Packetizer

__all__ = ["DUCommand", "DeliberateUpdateEngine", "IncomingDmaEngine", "ReceiveFault"]


@dataclass
class DUCommand:
    """One decoded transfer-initiation sequence.

    ``src_segments`` are physical (address, length) pieces of the source
    buffer, in order (the kernel's page tables produced them; user pages
    need not be physically contiguous).  ``opt_base``/``offset`` select
    the destination through the Outgoing Page Table's import region.
    ``done`` fires when the source has been fully read — the point at
    which a *blocking* deliberate-update send returns (the source buffer
    is then reusable; delivery completes asynchronously).
    """

    src_segments: List[Tuple[int, int]]
    opt_base: int
    offset: int
    size: int
    interrupt: bool
    done: Event

    def __post_init__(self) -> None:
        total = sum(length for _, length in self.src_segments)
        if total != self.size:
            raise ValueError(
                "source segments cover %d bytes but size is %d" % (total, self.size)
            )


@dataclass
class ReceiveFault:
    """Details handed to the kernel when the receive datapath freezes."""

    node_id: int
    paddr: int
    size: int
    src_node: int


class _SegmentReader:
    """Walks a DU command's physical source segments chunk by chunk."""

    def __init__(self, memory: PhysicalMemory, segments: List[Tuple[int, int]]):
        self.memory = memory
        self.segments = segments
        self.index = 0
        self.within = 0

    def read(self, nbytes: int) -> bytes:
        out = bytearray()
        while nbytes > 0 and self.index < len(self.segments):
            paddr, length = self.segments[self.index]
            available = length - self.within
            take = min(nbytes, available)
            out += self.memory.read(paddr + self.within, take)
            self.within += take
            nbytes -= take
            if self.within == length:
                self.index += 1
                self.within = 0
        if nbytes > 0:
            raise ValueError("source segments exhausted early")
        return bytes(out)


class DeliberateUpdateEngine:
    """Drains the DU command queue, one chunked DMA read at a time."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        memory: PhysicalMemory,
        eisa: BandwidthChannel,
        opt: OutgoingPageTable,
        packetizer: Packetizer,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.memory = memory
        self.eisa = eisa
        self.opt = opt
        self.packetizer = packetizer
        self.tracer = tracer or Tracer(sim)
        # Stored as ``injector`` engine-wide: the incoming engine's
        # ``faults`` name is already its receive-fault counter.
        self.injector = faults or FaultInjector(sim)
        self.commands: Store = Store(sim, name="du-commands-n%d" % node_id)
        self.transfers_done = 0
        self.bytes_sent = 0
        self.stalls = 0
        self.aborts = 0
        # Occupancy accounting for the metrics registry: time from
        # dequeuing a command to resolving it (done or aborted).  The
        # engine is serial, so busy_time/now is its utilization.
        self.busy_time = 0.0
        self._busy_since: Optional[float] = None
        spawn(sim, self._run(), name="du-engine-n%d" % node_id)

    def submit(self, command: DUCommand) -> None:
        """Queue a decoded initiation sequence (called at PIO-decode time)."""
        if not self.commands.try_put(command):
            raise RuntimeError("DU command queue unexpectedly full")

    def metrics_snapshot(self, now: Optional[float] = None) -> dict:
        """Utilization counters for the metrics registry."""
        now = self.sim.now if now is None else now
        busy = self.busy_time
        if self._busy_since is not None:
            busy += now - self._busy_since
        return {
            "name": "du-engine-n%d" % self.node_id,
            "kind": "engine",
            "busy_time": busy,
            "count": self.transfers_done,
            "bytes": self.bytes_sent,
        }

    def _run(self):
        cfg = self.config
        track = "n%d.nic.du" % self.node_id
        commands = self.commands
        empty = object()
        while True:
            # Queued-command fast path (see IncomingEngine._run).
            command = commands.try_get(empty)
            if command is empty:
                command = yield commands.get()
            self._busy_since = self.sim.now
            if self.injector.enabled:
                fault = self.injector.draw(FaultSite.NIC_DU, node=self.node_id)
                if fault is not None:
                    if fault.kind == FaultKind.ABORT:
                        # The engine rejects the whole command before any
                        # chunk is emitted; the initiator's done event
                        # fails with a typed error instead of hanging.
                        from ...vmmc.errors import VmmcTransferError

                        self.aborts += 1
                        self.tracer.log(
                            "fault",
                            "n%d DU command %dB ABORTED by fault",
                            self.node_id, command.size,
                        )
                        command.done.fail(VmmcTransferError(
                            "deliberate update of %d bytes aborted by the "
                            "DU engine on node %d" % (command.size, self.node_id)
                        ))
                        self.busy_time += self.sim.now - self._busy_since
                        self._busy_since = None
                        continue
                    self.stalls += 1
                    yield self.sim.timeout(fault.params.get("stall_us", 50.0))
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "nic.du", "du %dB" % command.size, track=track,
                    data={"bytes": command.size},
                )
            reader = _SegmentReader(self.memory, command.src_segments)
            offset = command.offset
            remaining = command.size
            if remaining <= 0:  # degenerate command: charge setup alone
                yield self.sim.timeout(cfg.du_engine_setup)
            first = True
            while remaining > 0:
                # Chunk at both the packet-size bound and destination page
                # boundaries so each packet maps through one OPT entry.
                page_room = cfg.page_size - (offset % cfg.page_size)
                chunk = min(remaining, cfg.max_packet_payload, page_room)
                if first:
                    # Engine setup and the first chunk's read setup are
                    # back-to-back sleeps with no side effects between
                    # them: one wake, bit-exact deadline arithmetic.
                    first = False
                    yield self.sim.timeout_at(
                        (self.sim.now + cfg.du_engine_setup)
                        + cfg.du_dma_read_setup)
                else:
                    yield self.sim.timeout(cfg.du_dma_read_setup)
                yield self.eisa.transfer(chunk)
                data = reader.read(chunk)
                entry = self.opt.proxy_entry(command.opt_base + offset // cfg.page_size)
                dst_paddr = entry.dst_paddr(cfg.page_size, offset % cfg.page_size)
                last = remaining == chunk
                self.packetizer.du_emit(
                    entry.dst_node,
                    dst_paddr,
                    data,
                    interrupt=command.interrupt and last,
                )
                offset += chunk
                remaining -= chunk
                self.bytes_sent += chunk
            self.transfers_done += 1
            self.busy_time += self.sim.now - self._busy_since
            self._busy_since = None
            self.tracer.end(span)
            command.done.succeed()


class IncomingDmaEngine:
    """Moves arriving packets from the NIC chip into main memory."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        memory: PhysicalMemory,
        eisa: BandwidthChannel,
        ipt: IncomingPageTable,
        arbiter: Arbiter,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.memory = memory
        self.eisa = eisa
        self.ipt = ipt
        self.arbiter = arbiter
        self.tracer = tracer or Tracer(sim)
        self.injector = faults or FaultInjector(sim)
        self.stalls = 0
        self.incoming: Store = Store(
            sim, capacity=config.incoming_queue_packets, name="incoming-n%d" % node_id
        )
        # The node's packetizer, wired by NetworkInterface after both
        # exist: READ_REQUEST replies leave through the normal outgoing
        # datapath as deliberate-update packets.
        self.packetizer = None
        # The on-card region shadow, wired by NetworkInterface: serves
        # READ_REQUESTs for registered pages without touching the host
        # bus, and is kept coherent by this engine's own landing writes.
        self.shadow = None
        self.read_requests_served = 0
        self.read_requests_shadowed = 0
        self.read_requests_dropped = 0
        self.read_requests_denied = 0
        self.read_reply_bytes = 0
        # Kernel hooks, installed at boot:
        self.fault_handler: Optional[Callable[[ReceiveFault], None]] = None
        self.notify_handler: Optional[Callable[[int, int], None]] = None
        self._unfreeze: Optional[Event] = None
        self._discard_pending = False
        self.frozen = False
        self.packets_received = 0
        self.bytes_received = 0
        self.faults = 0
        self.packets_discarded = 0
        spawn(sim, self._run(), name="incoming-dma-n%d" % node_id)

    def deliver(self, packet) -> None:
        """Entry point wired to the mesh: a packet reached this NIC."""
        if self.incoming.try_put(packet):
            return
        # Queue full: fall back to a blocking putter process so the
        # packet enters the store in FIFO order once space frees.
        def putter():
            yield self.incoming.put(packet)

        spawn(self.sim, putter(), name="nic-recv-n%d" % self.node_id)

    def unfreeze(self, discard: bool = False) -> None:
        """Kernel action: resume the receive datapath after a fault.

        With ``discard=True`` the offending packet is dropped instead of
        retried — the kernel's recourse against traffic for a mapping it
        will not re-enable (e.g. a stale sender after an unexport).
        """
        if not self.frozen:
            raise RuntimeError("receive datapath of node %d is not frozen" % self.node_id)
        self.frozen = False
        self._discard_pending = discard
        event, self._unfreeze = self._unfreeze, None
        assert event is not None
        event.succeed()

    def _run(self):
        cfg = self.config
        incoming = self.incoming
        empty = object()
        while True:
            # Buffered-packet fast path: skip the scheduler round-trip a
            # yield on an already-triggered get event would cost.
            packet = incoming.try_get(empty)
            if packet is empty:
                packet = yield incoming.get()
            if self.injector.enabled:
                fault = self.injector.draw(FaultSite.NIC_DMA_IN, node=self.node_id)
                if fault is not None:
                    # The landing engine hiccups (bus retry storm, slow
                    # card): the packet sits in the incoming queue a
                    # while longer.  Latency-only; data is untouched.
                    self.stalls += 1
                    yield self.sim.timeout(fault.params.get("stall_us", 50.0))
            if packet.kind is PacketKind.READ_REQUEST:
                yield from self._serve_remote_read(packet)
                continue
            grant = self.arbiter.request(priority=INCOMING_PRIORITY)
            if not grant.triggered:
                yield grant
            span = None
            if self.tracer.enabled:
                span = self.tracer.begin(
                    "nic.dma_in", "land #%d %dB" % (packet.seq, packet.size),
                    track="n%d.nic.in" % self.node_id,
                    data={"bytes": packet.size, "src_node": packet.src_node},
                )
            # Steady-state fast path: the IPT already enables the range,
            # so the lookup and DMA-setup delays collapse into a single
            # wake.  The deadline repeats the two-sleep float arithmetic
            # ((now + lookup) + setup), so the landing instant is
            # bit-exact; the check is re-run after the wake in case the
            # kernel revoked the mapping while the engine slept (the
            # setup charge is not repeated on that rare fault path).
            fast = self.ipt.check_range(packet.dst_paddr, packet.size)
            if fast:
                yield self.sim.timeout_at(
                    (self.sim.now + cfg.ipt_lookup) + cfg.incoming_dma_setup)
            else:
                yield self.sim.timeout(cfg.ipt_lookup)
            discarded = False
            while not self.ipt.check_range(packet.dst_paddr, packet.size):
                # Page not enabled: freeze the receive datapath and
                # interrupt the CPU.  We stay frozen until the kernel
                # calls unfreeze(); then the check is retried (the kernel
                # may have enabled the page, or discarded us via a new
                # mapping — retry models the hardware re-walking the IPT).
                self.frozen = True
                self.faults += 1
                self._unfreeze = self.sim.event("unfreeze-n%d" % self.node_id)
                fault = ReceiveFault(self.node_id, packet.dst_paddr, packet.size, packet.src_node)
                self.tracer.log("fault", "n%d receive fault at %#x",
                                self.node_id, packet.dst_paddr)
                if self.fault_handler is None:
                    self.arbiter.release(grant)
                    raise RuntimeError(
                        "receive fault on node %d with no kernel handler: %r"
                        % (self.node_id, fault)
                    )
                self.sim.schedule_call(cfg.interrupt_latency, self.fault_handler, fault)
                yield self._unfreeze
                if self._discard_pending:
                    self._discard_pending = False
                    self.packets_discarded += 1
                    discarded = True
                    break
            if discarded:
                self.tracer.end(span, data={"discarded": True})
                self.arbiter.release(grant)
                continue
            if not fast:
                yield self.sim.timeout(cfg.incoming_dma_setup)
            yield self.eisa.transfer(packet.size)
            self.memory.write(packet.dst_paddr, packet.payload)
            if self.shadow is not None:
                # The card mirrors its own landing DMA into the shadow,
                # the second of the two datapaths that keep it coherent.
                self.shadow.write(packet.dst_paddr, packet.payload)
            self.packets_received += 1
            self.bytes_received += packet.size
            self.tracer.log(
                "dma-in", "n%d landed #%d %dB at %#x",
                self.node_id, packet.seq, packet.size, packet.dst_paddr,
            )
            self.tracer.end(span)
            self.arbiter.release(grant)
            first_page = packet.dst_paddr // cfg.page_size
            if packet.interrupt and self.ipt.wants_interrupt(first_page):
                # Sender-specified AND receiver-specified flags both set:
                # raise the notification interrupt (Section 3.2).
                if self.notify_handler is not None:
                    self.sim.schedule_call(
                        cfg.interrupt_latency, self.notify_handler, first_page, packet.size
                    )

    def _serve_remote_read(self, packet):
        """Serve one READ_REQUEST entirely on the NIC — no CPU involved.

        The descriptor is validated (bad length, magic, or CRC drops the
        request; the reader's bounded completion poll then expires and
        it falls back to its RPC path) and the source range is checked
        against the Incoming Page Table like any remote access; both
        are card-local, so no bus grant is taken for them.  If the
        range is resident in the on-card region shadow the reply is
        assembled straight from NIC memory — the host bus and its
        arbiter are never touched, and the target host cannot even
        observe the read.  Otherwise the data is DMA'd out of main
        memory chunk by chunk under an arbiter grant.  Either way the
        reply leaves as ordinary deliberate-update packets addressed to
        the reply buffer named in the descriptor, completion header
        *last*: per-pair in-order delivery guarantees the data has
        landed when the reader's poll sees the header
        (docs/ONESIDED.md).  A denied or malformed request is dropped
        rather than frozen — unlike a landing write, nothing was
        received that the kernel could re-enable a page for.
        """
        cfg = self.config
        yield self.sim.timeout(cfg.ipt_lookup)
        request = decode_read_request(packet.payload)
        if request is None:
            self.read_requests_dropped += 1
            self.tracer.log(
                "dma-in", "n%d dropped malformed read request from n%d",
                self.node_id, packet.src_node,
            )
            return
        span = None
        if self.tracer.enabled:
            data = {"bytes": request.nbytes, "src_node": packet.src_node}
            if request.trace_id:
                data["tid"] = request.trace_id
                data["xparent"] = request.parent_sid
            span = self.tracer.begin(
                "nic.remote_read", "rread %dB" % request.nbytes,
                track="n%d.nic.rr" % self.node_id, data=data,
            )
        if not self.ipt.check_range(request.src_paddr, request.nbytes):
            self.read_requests_denied += 1
            self.tracer.log(
                "dma-in", "n%d denied read request at %#x (+%d) from n%d",
                self.node_id, request.src_paddr, request.nbytes,
                packet.src_node,
            )
            self.tracer.end(span, data={"denied": True})
            return
        # The completion header (seq, length, CRC, status) is
        # synthesized on the card from the data streaming past — it is
        # never fetched from host memory.
        header_size = len(encode_read_reply_header(0, b""))
        shadowed = (self.shadow.read(request.src_paddr, request.nbytes)
                    if self.shadow is not None else None)
        if shadowed is not None:
            # Shadow hit: the snoop logic already carried these bytes
            # past the card when they were stored, so the serve is a
            # read of on-card DRAM — no arbiter grant, no EISA cycle.
            if header_size + request.nbytes <= cfg.max_packet_payload:
                yield self.sim.timeout(
                    cfg.nic_shadow_read_setup
                    + cfg.nic_shadow_read_rate * request.nbytes)
                header = encode_read_reply_header(request.seq, shadowed)
                self.packetizer.du_emit(
                    packet.src_node, request.reply_paddr, header + shadowed,
                    interrupt=False,
                )
            else:
                reply_data_base = request.reply_paddr + header_size
                offset = 0
                while offset < request.nbytes:
                    chunk = min(request.nbytes - offset,
                                cfg.max_packet_payload)
                    yield self.sim.timeout(
                        cfg.nic_shadow_read_setup
                        + cfg.nic_shadow_read_rate * chunk)
                    self.packetizer.du_emit(
                        packet.src_node, reply_data_base + offset,
                        shadowed[offset:offset + chunk],
                        interrupt=False,
                    )
                    offset += chunk
                header = encode_read_reply_header(request.seq, shadowed)
                self.packetizer.du_emit(
                    packet.src_node, request.reply_paddr, header,
                    interrupt=False,
                )
            self.read_requests_shadowed += 1
        else:
            grant = self.arbiter.request(priority=INCOMING_PRIORITY)
            if not grant.triggered:
                yield grant
            if header_size + request.nbytes <= cfg.max_packet_payload:
                # Header and data ride one packet, delivered (and
                # written to the reply buffer) atomically — the common
                # case for the small reads the bypass is tuned for.
                yield self.sim.timeout(cfg.du_dma_read_setup)
                yield self.eisa.transfer(request.nbytes)
                data = self.memory.read(request.src_paddr, request.nbytes)
                header = encode_read_reply_header(request.seq, data)
                self.packetizer.du_emit(
                    packet.src_node, request.reply_paddr, header + data,
                    interrupt=False,
                )
            else:
                reply_data_base = request.reply_paddr + header_size
                chunks = []
                offset = 0
                while offset < request.nbytes:
                    chunk = min(request.nbytes - offset,
                                cfg.max_packet_payload)
                    yield self.sim.timeout(cfg.du_dma_read_setup)
                    yield self.eisa.transfer(chunk)
                    data = self.memory.read(request.src_paddr + offset, chunk)
                    self.packetizer.du_emit(
                        packet.src_node, reply_data_base + offset, data,
                        interrupt=False,
                    )
                    chunks.append(data)
                    offset += chunk
                header = encode_read_reply_header(request.seq, b"".join(chunks))
                self.packetizer.du_emit(
                    packet.src_node, request.reply_paddr, header,
                    interrupt=False,
                )
            self.arbiter.release(grant)
        self.read_requests_served += 1
        self.read_reply_bytes += request.nbytes
        self.tracer.log(
            "dma-in", "n%d served read request %#x +%d -> n%d%s",
            self.node_id, request.src_paddr, request.nbytes,
            packet.src_node, " (shadow)" if shadowed is not None else "",
        )
        self.tracer.end(span, data={"shadow": shadowed is not None})
