"""Machine configuration: every timing constant of the SHRIMP model.

The paper's prototype is fixed hardware (60 MHz Pentium nodes, Xpress
memory bus, EISA I/O bus, custom NIC, Paragon mesh backplane).  Our
substitute is a discrete-event model whose behaviour is governed entirely
by the constants defined here.  Each field's docstring ties it to the
datapath element it stands for (Section 3 of the paper / DESIGN.md S2).

Defaults come from :meth:`MachineConfig.shrimp_prototype` and are
calibrated so the headline measurements land near the paper's values:

* automatic-update one-word latency  ~ 4.75 us (write-through) / 3.7 us (uncached)
* deliberate-update one-word latency ~ 7.6 us
* DU zero-copy asymptotic bandwidth  ~ 23 MB/s (EISA DMA limit)

``tests/calibration`` asserts these; do not re-tune casually.
All times are microseconds; all bandwidths are bytes/microsecond (== MB/s).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["CacheMode", "MachineConfig", "SoftwareCosts"]


class CacheMode(enum.Enum):
    """Per-virtual-page caching policy, as in the prototype's page tables.

    Main memory can be cached write-through or write-back per page; the
    paper's AU latency experiment also ran with caching disabled.
    """

    WRITE_THROUGH = "write-through"
    WRITE_BACK = "write-back"
    UNCACHED = "uncached"


@dataclass
class SoftwareCosts:
    """Per-operation CPU costs of the user-level library code.

    The paper attributes library overhead to "procedure calls, checking
    for errors, and accessing the socket data structure" and the like.
    These constants model that code, per library, and are calibrated
    against the overheads the paper reports (NX ~6 us over raw AU,
    sockets ~13 us over the hardware limit, VRPC null call 29 us RTT,
    SHRIMP RPC null call 9.5 us RTT).
    """

    # -- generic -------------------------------------------------------
    call_overhead: float = 0.20
    """One user-level procedure call + argument setup on the 60 MHz Pentium."""

    branch_check: float = 0.10
    """A flag test / bounds check in protocol code."""

    # -- VMMC basic library ---------------------------------------------
    vmmc_send_call: float = 0.30
    """User-level bookkeeping in vmmc_send before touching the NIC."""

    vmmc_poll_check: float = 0.13
    """One iteration of the receive-flag polling loop (load + compare)."""

    # -- NX ------------------------------------------------------------
    nx_send_overhead: float = 0.70
    """csend entry: argument checks, connection lookup, descriptor build."""

    nx_recv_overhead: float = 0.70
    """crecv entry: queue scan, descriptor parse, size-field reset."""

    nx_credit_overhead: float = 0.40
    """Returning a packet-buffer credit to the sender (paper: part of the
    ~6 us of buffer management above the hardware limit)."""

    nx_scout_overhead: float = 0.90
    """Building/parsing the scout descriptor of the zero-copy protocol."""

    nx_match_overhead: float = 0.30
    """Tag/source matching of a queued message against a receive."""

    # -- sockets ---------------------------------------------------------
    socket_send_overhead: float = 2.20
    """send() entry: descriptor validation, error checks, circular-buffer
    state access (paper: ~half of the 13 us above the hardware limit,
    together with the timed control writes this side performs)."""

    socket_recv_overhead: float = 2.20
    """recv() side of the same bookkeeping."""

    socket_space_update: float = 0.50
    """Updating/propagating circular-buffer read/write positions."""

    # -- SunRPC-compatible VRPC ------------------------------------------
    vrpc_call_prep: float = 4.5
    """Client-side call preparation beyond the timed header-marshal
    memory writes.  Together with those writes this totals ~7 us —
    the paper's 'about 7 usecs spent in preparing the header and
    making the call'."""

    vrpc_header_process: float = 4.0
    """Server-side header processing beyond the timed reads (together
    ~5-6 us: the paper's 'remaining 5-6 usecs processing the header')."""

    vrpc_return_cost: float = 0.5
    """Returning from the call beyond the timed reply reads (together
    ~2 us: the paper's '1-2 usecs in returning from the call')."""

    vrpc_xdr_per_byte: float = 0.012
    """XDR encode/decode incremental cost per payload byte (beyond the
    memory copy itself, which is charged by the memory model)."""

    # -- specialized SHRIMP RPC ------------------------------------------
    srpc_client_stub: float = 0.25
    """Client stub entry (paper: total software overhead under 1 us,
    split between this and the server dispatch)."""

    srpc_server_dispatch: float = 0.30
    """Server loop: flag decode to procedure invocation."""

    # -- notifications ---------------------------------------------------
    signal_delivery: float = 70.0
    """Delivering a notification via a UNIX signal (current implementation;
    the paper notes signals are slow and plans an active-message-style
    reimplementation)."""

    notification_fast_delivery: float = 4.0
    """Projected active-message-style notification cost (used by the
    ablation benchmarks only)."""

    syscall_overhead: float = 12.0
    """Crossing into the Linux kernel and back (used for daemon syscalls
    and notification mask changes, none of which are on the data path)."""


@dataclass
class MachineConfig:
    """Hardware timing/geometry parameters of the simulated SHRIMP system.

    Construct via :meth:`shrimp_prototype` for the calibrated 4-node
    machine, or tweak fields for ablation studies.
    """

    # -- geometry --------------------------------------------------------
    n_nodes: int = 4
    """Number of PC nodes (the prototype has four; the paper plans 16)."""

    mesh_width: int = 2
    """Mesh X dimension of the routing backplane."""

    mesh_height: int = 2
    """Mesh Y dimension of the routing backplane."""

    page_size: int = 4096
    """Virtual-memory page size (i386)."""

    memory_pages: int = 10240
    """Physical pages per node (40 MB, as in the DEC 560ST prototype)."""

    word_size: int = 4
    """Word size; deliberate update requires word-aligned src and dst."""

    cpu_stream_chunk: int = 512
    """Granularity at which streaming CPU stores/copies are simulated.
    A bulk copy into an AU-bound region emits snooped writes chunk by
    chunk, so packet formation pipelines with the copy — as the real
    snooping hardware does word by word."""

    # -- CPU memory-op costs (Section 3.1: 60 MHz Pentium, 256 KB L2) -----
    # A memory operation of n bytes costs base(mode) + n * per_byte(mode).
    wt_write_base: float = 0.72
    """Fixed cost of an isolated store to a write-through page (store
    instruction, cache lookup, write buffer post to the Xpress bus)."""

    wt_write_per_byte: float = 0.038
    """Streaming write-through writes: ~26 MB/s of pure store bandwidth;
    with the read side of a copy this yields the ~20 MB/s copy rate that
    caps automatic-update bandwidth (Figure 3)."""

    wb_write_base: float = 0.22
    """Isolated store to a write-back page (usually a cache hit)."""

    wb_write_per_byte: float = 0.022
    """Streaming write-back writes (dirty lines retire in bursts)."""

    uc_write_base: float = 0.10
    """Isolated uncached store: a single bus transaction, no cache logic."""

    uc_write_per_byte: float = 0.030
    """Uncached streaming writes: word-at-a-time bus transactions."""

    wt_read_base: float = 0.58
    """Isolated load from a write-through page whose line was just
    invalidated by a snooped DMA write (the receive-flag poll case)."""

    wb_read_base: float = 0.20
    """Isolated load from a write-back page."""

    uc_read_base: float = 0.065
    """Isolated uncached load."""

    read_per_byte: float = 0.012
    """Streaming read bandwidth (cache-line fills at ~80 MB/s)."""

    uc_read_per_byte: float = 0.055
    """Uncached streaming reads: every word is a bus transaction."""

    # -- buses (Section 3.1) ----------------------------------------------
    xpress_bandwidth: float = 73.0
    """Xpress memory bus maximum burst write bandwidth: 73 MB/s."""

    eisa_peak_bandwidth: float = 33.0
    """EISA burst bandwidth: 33 MB/s (documentation value; not reached)."""

    eisa_dma_bandwidth: float = 26.5
    """Effective EISA DMA streaming rate.  The paper measured ~23 MB/s
    end-to-end 'limited only by the aggregate DMA bandwidth of the shared
    EISA and Xpress buses'; 25 MB/s raw minus per-packet setup lands
    there."""

    eisa_pio_access: float = 1.0
    """One programmed-I/O access decoded by the NIC on the EISA bus.  A
    deliberate update is initiated by a sequence of two such accesses."""

    # -- SHRIMP NIC (Section 3.2) ------------------------------------------
    snoop_opt_lookup: float = 0.65
    """Snoop logic latching an Xpress write and indexing the OPT."""

    packetize_latency: float = 0.30
    """Forming a packet header and entering the Outgoing FIFO."""

    nic_injection_latency: float = 0.20
    """Arbiter grant plus handoff of a packet to the NIC chip."""

    outgoing_fifo_packets: int = 64
    """Outgoing FIFO capacity, in packets (backpressure bound)."""

    incoming_queue_packets: int = 64
    """NIC-side incoming packet queue capacity."""

    max_packet_payload: int = 1024
    """Largest packet payload.  AU write-combining and DU chunking both
    cut transfers at this size."""

    packet_header_bytes: int = 16
    """Packet header: destination base address, size, flags."""

    combine_timeout: float = 1.0
    """OPT hardware timer: a combining packet with no subsequent AU write
    for this long is sent automatically."""

    du_engine_setup: float = 0.80
    """Deliberate Update Engine decoding a queued transfer-initiation
    sequence and preparing the DMA read."""

    du_dma_read_setup: float = 1.10
    """Per-chunk EISA bus acquisition + DMA read startup on the send side."""

    incoming_dma_setup: float = 1.20
    """Incoming DMA Engine: IPT check done, EISA bus acquisition + DMA
    write startup, per packet."""

    ipt_lookup: float = 0.15
    """Indexing the Incoming Page Table with the packet's destination page."""

    nic_shadow_bytes: int = 1 << 20
    """On-card region shadow capacity (the snoop-fed serve cache of
    docs/ONESIDED.md): exported read-served pages whose snooped stores
    the NIC retains in its on-board DRAM, so READ_REQUESTs are answered
    without touching the host bus.  0 disables the shadow; every read
    request is then served by host DMA over EISA."""

    nic_shadow_read_setup: float = 0.50
    """Per-chunk serve turnaround out of the on-card shadow: no bus
    arbitration or DMA startup, just the engine indexing its own DRAM."""

    nic_shadow_read_rate: float = 0.010
    """Per-byte cost of streaming shadow bytes from on-card DRAM into a
    reply packet (µs/B) — card-local, so much faster than EISA DMA."""

    interrupt_latency: float = 18.0
    """Raising an interrupt to the node CPU and entering the kernel
    handler (used by notifications and by receive-path faults)."""

    # -- routing backplane (Section 3.1: iMRC mesh) ------------------------
    router_hop_latency: float = 0.15
    """Per-hop header routing decision + switch traversal (wormhole)."""

    link_bandwidth: float = 175.0
    """Backplane link rate.  The iMRC is 'a wider, faster version of the
    Caltech MRC'; fast enough that the EISA bus, not the network, is the
    end-to-end bottleneck, as in the paper."""

    nic_link_latency: float = 0.10
    """NIC chip to router (and router to NIC) handoff."""

    # -- commodity Ethernet (diagnostics / connection setup) ---------------
    ethernet_bandwidth: float = 1.1
    """10 Mbit/s Ethernet minus framing ~= 1.1 MB/s."""

    ethernet_latency: float = 400.0
    """Per-message software latency of the kernel UDP/IP path on Linux of
    the era (used only off the critical path: daemons, connect/accept)."""

    ethernet_max_frame: int = 1500
    """MTU of the control network."""

    # -- software ---------------------------------------------------------
    costs: SoftwareCosts = field(default_factory=SoftwareCosts)

    # -- derived / validation ----------------------------------------------
    def __post_init__(self) -> None:
        if self.mesh_width * self.mesh_height < self.n_nodes:
            raise ValueError(
                "mesh %dx%d cannot hold %d nodes"
                % (self.mesh_width, self.mesh_height, self.n_nodes)
            )
        if self.page_size % self.word_size != 0:
            raise ValueError("page size must be a multiple of the word size")
        if self.max_packet_payload <= 0:
            raise ValueError("max_packet_payload must be positive")

    @property
    def memory_bytes(self) -> int:
        """Physical memory per node."""
        return self.memory_pages * self.page_size

    # -- cost helpers -------------------------------------------------------
    def write_cost(self, mode: CacheMode, nbytes: int) -> float:
        """CPU cost of writing ``nbytes`` to memory of the given mode."""
        if mode is CacheMode.WRITE_THROUGH:
            return self.wt_write_base + nbytes * self.wt_write_per_byte
        if mode is CacheMode.WRITE_BACK:
            return self.wb_write_base + nbytes * self.wb_write_per_byte
        return self.uc_write_base + nbytes * self.uc_write_per_byte

    def read_cost(self, mode: CacheMode, nbytes: int) -> float:
        """CPU cost of reading ``nbytes`` from memory of the given mode."""
        if mode is CacheMode.WRITE_THROUGH:
            return self.wt_read_base + nbytes * self.read_per_byte
        if mode is CacheMode.WRITE_BACK:
            return self.wb_read_base + nbytes * self.read_per_byte
        return self.uc_read_base + nbytes * self.uc_read_per_byte

    def write_rate(self, mode: CacheMode) -> "tuple[float, float]":
        """(base, per_byte) write cost components for streaming loops."""
        if mode is CacheMode.WRITE_THROUGH:
            return self.wt_write_base, self.wt_write_per_byte
        if mode is CacheMode.WRITE_BACK:
            return self.wb_write_base, self.wb_write_per_byte
        return self.uc_write_base, self.uc_write_per_byte

    def read_rate(self, mode: CacheMode) -> "tuple[float, float]":
        """(base, per_byte) read cost components for streaming loops."""
        if mode is CacheMode.WRITE_THROUGH:
            return self.wt_read_base, self.read_per_byte
        if mode is CacheMode.WRITE_BACK:
            return self.wb_read_base, self.read_per_byte
        return self.uc_read_base, self.uc_read_per_byte

    def copy_cost(self, src_mode: CacheMode, dst_mode: CacheMode, nbytes: int) -> float:
        """CPU cost of a memory-to-memory copy (read + write, serialized)."""
        return self.read_cost(src_mode, nbytes) + self.write_cost(dst_mode, nbytes)

    def node_position(self, node_id: int) -> "tuple[int, int]":
        """(x, y) placement of a node on the mesh backplane."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError("node id %d out of range" % node_id)
        return node_id % self.mesh_width, node_id // self.mesh_width

    # -- canned configurations ----------------------------------------------
    @classmethod
    def shrimp_prototype(cls) -> "MachineConfig":
        """The calibrated 4-node prototype of the paper."""
        return cls()

    @classmethod
    def sixteen_node(cls) -> "MachineConfig":
        """The 16-node expansion the paper's conclusion plans."""
        return cls(n_nodes=16, mesh_width=4, mesh_height=4)
