"""Mesh routing backplane (system S7): packet format, iMRC model, mesh."""

from .imrc import Link, RouterNode
from .mesh import MeshBackplane
from .packet import Packet, PacketKind

__all__ = ["Link", "MeshBackplane", "Packet", "PacketKind", "RouterNode"]
