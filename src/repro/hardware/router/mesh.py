"""The Paragon-style mesh routing backplane.

The backplane connects the NICs: a packet injected by node A's network
interface crosses a dimension-order path of routers and is handed to
node B's incoming side.  Delivery timing is computed analytically per
packet (head latency per hop + FIFO link occupancy), which models
wormhole cut-through and per-pair ordering without per-flit events.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...sim import FaultInjector, FaultKind, FaultSite, Simulator, Tracer
from ..config import MachineConfig
from .imrc import RouterNode
from .packet import Packet

__all__ = ["MeshBackplane"]

DeliverFn = Callable[[Packet], None]


class MeshBackplane:
    """A ``width x height`` mesh of iMRC routers with NICs at the nodes."""

    def __init__(self, sim: Simulator, config: MachineConfig, tracer: Optional[Tracer] = None,
                 faults: Optional[FaultInjector] = None):
        self.sim = sim
        self.config = config
        self.tracer = tracer or Tracer(sim)
        self.faults = faults or FaultInjector(sim)
        self.routers: Dict[Tuple[int, int], RouterNode] = {}
        for y in range(config.mesh_height):
            for x in range(config.mesh_width):
                self.routers[(x, y)] = RouterNode(sim, config, x, y)
        self._receivers: Dict[int, DeliverFn] = {}
        # Loopback traffic still crosses the NIC/router port serially;
        # one pseudo-link per node keeps self-sends FIFO too.
        self._loopback: Dict[int, "Link"] = {}
        # Dimension-order routing is deterministic, so the link sequence
        # of each (src, dst) pair is computed once and cached; inject()
        # then just walks the cached links.
        self._paths: Dict[Tuple[int, int], List] = {}
        # Conservation counters: routed == delivered + dropped + in-flight
        # at every instant (the invariant the tests/conftest audit checks).
        self.packets_routed = 0
        self.bytes_routed = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0
        self.packets_dropped = 0
        self.bytes_dropped = 0
        self.packets_in_flight = 0
        self.bytes_in_flight = 0
        self.packets_corrupted = 0
        self.packets_delayed = 0

    # -- wiring ---------------------------------------------------------
    def attach(self, node_id: int, deliver: DeliverFn) -> None:
        """Register the incoming-side handler of a node's NIC."""
        if node_id in self._receivers:
            raise ValueError("node %d already attached" % node_id)
        self._receivers[node_id] = deliver

    def _build_path(self, src_node: int, dst_node: int) -> List:
        """The ordered links a (src, dst) packet claims, per dimension-
        order routing (one pseudo-link for loopback)."""
        cfg = self.config
        if src_node == dst_node:
            loop = self._loopback.get(src_node)
            if loop is None:
                from .imrc import Link

                loop = Link("loopback-n%d" % src_node, cfg.link_bandwidth)
                self._loopback[src_node] = loop
            return [loop]
        links: List = []
        x, y = cfg.node_position(src_node)
        dest_x, dest_y = cfg.node_position(dst_node)
        while (x, y) != (dest_x, dest_y):
            router = self.routers[(x, y)]
            next_x, next_y = router.route_step(dest_x, dest_y)
            links.append(router.link_to(self.routers[(next_x, next_y)]))
            x, y = next_x, next_y
        return links

    def hops(self, src_node: int, dst_node: int) -> int:
        """Manhattan hop count between two nodes' routers."""
        sx, sy = self.config.node_position(src_node)
        dx, dy = self.config.node_position(dst_node)
        return abs(sx - dx) + abs(sy - dy)

    # -- injection -------------------------------------------------------
    def inject(self, packet: Packet) -> float:
        """Send ``packet``; returns the simulated arrival time.

        Called by the sending NIC at the moment the packet leaves its
        outgoing FIFO.  Must be called in the order packets should be
        delivered (per source) — the NIC's single injection process
        guarantees this, and FIFO links preserve it across the mesh.
        """
        if packet.dst_node not in self._receivers:
            raise ValueError("no NIC attached at node %d" % packet.dst_node)
        cfg = self.config
        wire_bytes = packet.wire_size(cfg.packet_header_bytes)
        now = self.sim.now

        head = now + cfg.nic_link_latency
        hop_latency = cfg.router_hop_latency
        path = self._paths.get((packet.src_node, packet.dst_node))
        if path is None:
            path = self._build_path(packet.src_node, packet.dst_node)
            self._paths[(packet.src_node, packet.dst_node)] = path
        for link in path:
            head = link.claim(now, head + hop_latency, wire_bytes)
        arrival = head + wire_bytes / cfg.link_bandwidth + cfg.nic_link_latency

        self.packets_routed += 1
        self.bytes_routed += packet.size
        if self.faults.enabled:
            fault = self.faults.draw(FaultSite.MESH_LINK)
            if fault is not None:
                if fault.kind == FaultKind.DROP:
                    # The packet dies in the fabric: nothing is scheduled
                    # at the destination, the bytes are accounted as
                    # dropped (conservation stays checkable).
                    self.packets_dropped += 1
                    self.bytes_dropped += packet.size
                    self.tracer.log(
                        "mesh", "packet #%d n%d->n%d DROPPED by fault",
                        packet.seq, packet.src_node, packet.dst_node,
                    )
                    return arrival
                if fault.kind == FaultKind.CORRUPT:
                    # Flip one payload byte in flight; the seq is kept so
                    # delivery ordering and tracing stay coherent.  The
                    # libraries' CRC checks are what must catch this.
                    offset = fault.params.get("offset", 0) % packet.size
                    payload = bytearray(packet.payload)
                    payload[offset] ^= 0xFF
                    packet = Packet(
                        src_node=packet.src_node,
                        dst_node=packet.dst_node,
                        dst_paddr=packet.dst_paddr,
                        payload=bytes(payload),
                        kind=packet.kind,
                        interrupt=packet.interrupt,
                        seq=packet.seq,
                    )
                    self.packets_corrupted += 1
                elif fault.kind == FaultKind.DELAY:
                    arrival += fault.params.get("delay_us", 20.0)
                    self.packets_delayed += 1
        self.packets_in_flight += 1
        self.bytes_in_flight += packet.size
        if self.tracer.enabled:
            self.tracer.complete(
                "mesh.transit",
                "pkt #%d n%d->n%d %dB" % (packet.seq, packet.src_node,
                                          packet.dst_node, packet.size),
                now,
                arrival,
                track="mesh.backplane",
                data={"bytes": packet.size, "wire_bytes": wire_bytes,
                      "hops": self.hops(packet.src_node, packet.dst_node)},
            )
        self.tracer.log(
            "mesh", "packet #%d n%d->n%d %dB arrives %.3f",
            packet.seq, packet.src_node, packet.dst_node, packet.size,
            arrival,
        )
        self.sim.schedule_call(arrival - now, self._deliver, packet)
        return arrival

    def _deliver(self, packet: Packet) -> None:
        self.packets_in_flight -= 1
        self.bytes_in_flight -= packet.size
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        self._receivers[packet.dst_node](packet)

    # -- inspection --------------------------------------------------------
    def link_utilization(self) -> Dict[str, int]:
        """Bytes carried per directed link (for the ablation benches)."""
        stats: Dict[str, int] = {}
        for router in self.routers.values():
            for link in router.links.values():
                stats[link.name] = link.bytes_carried
        return stats
