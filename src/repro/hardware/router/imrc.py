"""Intel Mesh Routing Chip (iMRC) model.

The backplane is a 2-D mesh of iMRCs — 'essentially a wider, faster
version of the Caltech Mesh Routing Chip' — doing deadlock-free,
oblivious wormhole routing and preserving the order of messages from
each sender to each receiver.

We model each *directed link* as a serially-occupied channel and each
router as a fixed per-hop decision latency.  Wormhole (cut-through)
behaviour is approximated: the packet head advances hop by hop, each
link is occupied for the packet's full wire time, and the tail arrives
one wire-time after the head reaches the final router.  Because routing
is deterministic (dimension order) and links are FIFO, per-pair ordering
holds by construction.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...sim import Simulator
from ..config import MachineConfig

__all__ = ["Link", "RouterNode"]


class Link:
    """One directed mesh link with FIFO occupancy bookkeeping."""

    __slots__ = ("name", "bandwidth", "_free_at", "bytes_carried", "packets",
                 "busy_time")

    def __init__(self, name: str, bandwidth: float):
        self.name = name
        self.bandwidth = bandwidth
        self._free_at = 0.0
        self.bytes_carried = 0
        self.packets = 0
        self.busy_time = 0.0

    def claim(self, now: float, head_arrival: float, wire_bytes: int) -> float:
        """Occupy the link for one packet.

        ``head_arrival`` is when the packet's head shows up at this link's
        input.  Returns when the head leaves the link's output — delayed
        if the link is still draining a previous packet (the wormhole
        blocking case).  The link stays busy for the full wire time.
        """
        start = max(head_arrival, self._free_at, now)
        wire_time = wire_bytes / self.bandwidth
        self._free_at = start + wire_time
        self.bytes_carried += wire_bytes
        self.packets += 1
        self.busy_time += wire_time
        return start

    def busy_until(self) -> float:
        """When this link finishes its current packet."""
        return self._free_at

    def metrics_snapshot(self, now: float = None) -> dict:
        """Utilization counters for the metrics registry."""
        return {
            "name": self.name,
            "kind": "link",
            "busy_time": self.busy_time,
            "count": self.packets,
            "bytes": self.bytes_carried,
        }


class RouterNode:
    """One iMRC: per-hop latency plus its four outgoing mesh links.

    Links are created on demand by the mesh (a 2x2 mesh has no +x link on
    its right column, etc.).
    """

    def __init__(self, sim: Simulator, config: MachineConfig, x: int, y: int):
        self.sim = sim
        self.config = config
        self.x = x
        self.y = y
        self.links: Dict[Tuple[int, int], Link] = {}

    def link_to(self, other: "RouterNode") -> Link:
        """The directed link from this router to an adjacent one."""
        key = (other.x, other.y)
        if abs(self.x - other.x) + abs(self.y - other.y) != 1:
            raise ValueError(
                "routers (%d,%d) and (%d,%d) are not mesh neighbours"
                % (self.x, self.y, other.x, other.y)
            )
        link = self.links.get(key)
        if link is None:
            link = Link(
                "link(%d,%d)->(%d,%d)" % (self.x, self.y, other.x, other.y),
                self.config.link_bandwidth,
            )
            self.links[key] = link
        return link

    def route_step(self, dest_x: int, dest_y: int) -> Tuple[int, int]:
        """Dimension-order (X then Y) next hop towards (dest_x, dest_y).

        This is the oblivious, deadlock-free routing of the Paragon
        backplane; determinism is what gives per-pair in-order delivery.
        """
        if self.x != dest_x:
            step = 1 if dest_x > self.x else -1
            return self.x + step, self.y
        if self.y != dest_y:
            step = 1 if dest_y > self.y else -1
            return self.x, self.y + step
        raise ValueError("already at destination (%d,%d)" % (dest_x, dest_y))
