"""Packet format of the SHRIMP interconnect.

A packet is what the Packetizing hardware emits into the Outgoing FIFO:
a header carrying the *destination physical base address* (VMMC packets
address memory, not processes) plus flags, followed by the payload bytes.
The mesh preserves per-(source, destination) order, which VMMC turns
into its in-order delivery guarantee.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["PacketKind", "Packet"]

_SEQUENCE = itertools.count(1)


class PacketKind(enum.Enum):
    """Origin of a packet, for tracing and statistics."""

    AUTOMATIC_UPDATE = "au"
    DELIBERATE_UPDATE = "du"


@dataclass
class Packet:
    """One wormhole packet on the backplane.

    ``dst_paddr`` is the destination *physical* byte address the incoming
    DMA engine will write to after checking the Incoming Page Table.
    ``interrupt`` is the sender-specified interrupt flag of Section 3.2:
    an interrupt is raised at the destination only if this AND the
    receiving page's IPT interrupt flag are both set.
    """

    src_node: int
    dst_node: int
    dst_paddr: int
    payload: bytes
    kind: PacketKind
    interrupt: bool = False
    seq: int = field(default_factory=lambda: next(_SEQUENCE))

    def __post_init__(self) -> None:
        if not self.payload:
            raise ValueError("packet must carry at least one byte")
        # Payload is kept immutable so in-flight packets cannot alias the
        # sender's memory (the hardware latches the written data).
        if not isinstance(self.payload, bytes):
            self.payload = bytes(self.payload)

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.payload)

    def wire_size(self, header_bytes: int) -> int:
        """Total bytes on a link, including the header."""
        return header_bytes + self.size

    @property
    def end_paddr(self) -> int:
        """One past the last destination byte (for combining checks)."""
        return self.dst_paddr + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Packet #%d %s n%d->n%d paddr=%#x len=%d%s>" % (
            self.seq,
            self.kind.value,
            self.src_node,
            self.dst_node,
            self.dst_paddr,
            self.size,
            " INTR" if self.interrupt else "",
        )
