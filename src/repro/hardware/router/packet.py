"""Packet format of the SHRIMP interconnect.

A packet is what the Packetizing hardware emits into the Outgoing FIFO:
a header carrying the *destination physical base address* (VMMC packets
address memory, not processes) plus flags, followed by the payload bytes.
The mesh preserves per-(source, destination) order, which VMMC turns
into its in-order delivery guarantee.

Besides the two store-carrying kinds (automatic and deliberate update),
the NIC understands one *request* kind: a ``READ_REQUEST`` carries a
fixed-size descriptor asking the destination NIC to DMA a physical
range out of its memory and return it as ordinary deliberate-update
packets addressed to a reply buffer named in the descriptor
(docs/ONESIDED.md).  The descriptor and the reply completion header are
hardware wire formats, so their structs live here next to the packet.
"""

from __future__ import annotations

import enum
import itertools
import struct
import zlib
from dataclasses import dataclass, field
from typing import NamedTuple, Optional

__all__ = ["PacketKind", "Packet", "ReadRequest", "READ_REPLY_HEADER",
           "READ_REQUEST_MAGIC", "encode_read_request",
           "decode_read_request", "encode_read_reply_header"]

_SEQUENCE = itertools.count(1)


class PacketKind(enum.Enum):
    """Origin of a packet, for tracing and statistics."""

    AUTOMATIC_UPDATE = "au"
    DELIBERATE_UPDATE = "du"
    READ_REQUEST = "rr"


# One-sided read request descriptor: magic, seq, src_paddr, nbytes,
# reply_paddr, trace id, parent span id, crc32 of the preceding fields.
# Trace id zero means "untraced" (repro.obs.context convention).
READ_REQUEST_MAGIC = 0x52445231  # "RDR1"
_READ_REQUEST = struct.Struct("<IIIIIII")
_READ_REQUEST_CRC = struct.Struct("<I")

# Reply completion header, written at offset 0 of the reply buffer
# *after* the data chunks (in-order per-pair delivery makes it the
# commit point): seq, data length, crc32 of the data, status.
READ_REPLY_HEADER = struct.Struct("<IIII")
READ_REPLY_OK = 0


class ReadRequest(NamedTuple):
    """A decoded, CRC-verified READ_REQUEST descriptor."""

    seq: int
    src_paddr: int
    nbytes: int
    reply_paddr: int
    trace_id: int
    parent_sid: int


def encode_read_request(seq: int, src_paddr: int, nbytes: int,
                        reply_paddr: int, trace_id: int = 0,
                        parent_sid: int = 0) -> bytes:
    """The wire descriptor of one one-sided read request."""
    body = _READ_REQUEST.pack(READ_REQUEST_MAGIC, seq, src_paddr, nbytes,
                              reply_paddr, trace_id, parent_sid)
    return body + _READ_REQUEST_CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def decode_read_request(payload: bytes) -> Optional[ReadRequest]:
    """Validate and decode a descriptor; None if malformed or corrupt."""
    if len(payload) != _READ_REQUEST.size + _READ_REQUEST_CRC.size:
        return None
    body = payload[:_READ_REQUEST.size]
    (crc,) = _READ_REQUEST_CRC.unpack(payload[_READ_REQUEST.size:])
    if crc != zlib.crc32(body) & 0xFFFFFFFF:
        return None
    magic, seq, src_paddr, nbytes, reply_paddr, tid, psid = \
        _READ_REQUEST.unpack(body)
    if magic != READ_REQUEST_MAGIC or nbytes <= 0:
        return None
    return ReadRequest(seq, src_paddr, nbytes, reply_paddr, tid, psid)


def encode_read_reply_header(seq: int, data: bytes,
                             status: int = READ_REPLY_OK) -> bytes:
    """The completion header stamped after the reply data landed."""
    return READ_REPLY_HEADER.pack(seq, len(data),
                                  zlib.crc32(data) & 0xFFFFFFFF, status)


@dataclass
class Packet:
    """One wormhole packet on the backplane.

    ``dst_paddr`` is the destination *physical* byte address the incoming
    DMA engine will write to after checking the Incoming Page Table.
    ``interrupt`` is the sender-specified interrupt flag of Section 3.2:
    an interrupt is raised at the destination only if this AND the
    receiving page's IPT interrupt flag are both set.
    """

    src_node: int
    dst_node: int
    dst_paddr: int
    payload: bytes
    kind: PacketKind
    interrupt: bool = False
    seq: int = field(default_factory=lambda: next(_SEQUENCE))

    #: Payload size in bytes (fixed at construction; payload is immutable).
    size: int = field(init=False)

    def __post_init__(self) -> None:
        if not self.payload:
            raise ValueError("packet must carry at least one byte")
        # Payload is kept immutable so in-flight packets cannot alias the
        # sender's memory (the hardware latches the written data).
        if not isinstance(self.payload, bytes):
            self.payload = bytes(self.payload)
        self.size = len(self.payload)

    def wire_size(self, header_bytes: int) -> int:
        """Total bytes on a link, including the header."""
        return header_bytes + self.size

    @property
    def end_paddr(self) -> int:
        """One past the last destination byte (for combining checks)."""
        return self.dst_paddr + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<Packet #%d %s n%d->n%d paddr=%#x len=%d%s>" % (
            self.seq,
            self.kind.value,
            self.src_node,
            self.dst_node,
            self.dst_paddr,
            self.size,
            " INTR" if self.interrupt else "",
        )
