"""One SHRIMP node: a DEC 560ST PC with the custom NIC installed.

The node owns its physical memory, the two buses, and the network
interface, and exposes the CPU's view of memory: timed stores and loads
that go through the cache-mode cost model and feed the NIC's snoop
logic.  Address translation lives a layer up, in the OS model
(:mod:`repro.kernel.vm`); the node deals in physical addresses only.
"""

from __future__ import annotations

from typing import Optional

from ..sim import FaultInjector, Resource, Simulator, Tracer
from .bus import EisaBus, XpressBus
from .config import CacheMode, MachineConfig
from .memory import PhysicalMemory
from .nic.interface import NetworkInterface
from .router.mesh import MeshBackplane

__all__ = ["Node"]


class Node:
    """Hardware of one PC node."""

    def __init__(
        self,
        sim: Simulator,
        config: MachineConfig,
        node_id: int,
        mesh: MeshBackplane,
        tracer: Optional[Tracer] = None,
        faults: Optional[FaultInjector] = None,
    ):
        self.sim = sim
        self.config = config
        self.node_id = node_id
        self.tracer = tracer or Tracer(sim)
        self.faults = faults or FaultInjector(sim)
        self.memory = PhysicalMemory(config, node_id)
        self.eisa = EisaBus(sim, config, node_id, faults=self.faults)
        self.eisa.tracer = self.tracer
        self.eisa.track = "n%d.bus.eisa" % node_id
        self.xpress = XpressBus(sim, config, node_id)
        self.xpress.tracer = self.tracer
        self.xpress.track = "n%d.bus.xpress" % node_id
        self.nic = NetworkInterface(
            sim, config, node_id, self.memory, self.eisa, mesh, self.tracer,
            faults=self.faults,
        )
        # Optional CPU scheduler: None means the historical model where
        # every process computes on its own infinite CPU (handlers on
        # one node never contend).  ``enable_cpu`` turns contention on
        # for overload studies; with it off every timed path is
        # byte-identical to the uncontended machine.
        self.cpu: Optional[Resource] = None

    def enable_cpu(self, slots: int = 1) -> Resource:
        """Model this node's CPU as ``slots`` schedulable execution slots.

        Idempotent: a second call returns the existing scheduler (the
        slot count of the first call wins).  Processes opt in per
        compute call via :meth:`repro.kernel.process.UserProcess.compute`'s
        ``priority`` argument — lower values run first, matching
        :class:`~repro.sim.Resource` semantics.
        """
        if self.cpu is None:
            self.cpu = Resource(self.sim, capacity=slots,
                                name="n%d.cpu" % self.node_id)
        return self.cpu

    # -- the CPU's memory operations ------------------------------------------
    def cpu_write(self, paddr: int, data: bytes, mode: CacheMode):
        """Timed CPU store: charge the cache-model cost, store the bytes,
        and present the write to the NIC's snoop logic.

        Generator — the caller's process pays the time.  The snoop sees
        the write *after* the store retires, matching the bus ordering.
        """
        cost = self.config.write_cost(mode, len(data))
        yield self.sim.timeout(cost)
        self.memory.write(paddr, data)
        self.nic.snoop_write(paddr, data)

    def cpu_read(self, paddr: int, nbytes: int, mode: CacheMode):
        """Timed CPU load; returns the bytes."""
        cost = self.config.read_cost(mode, nbytes)
        yield self.sim.timeout(cost)
        return self.memory.read(paddr, nbytes)

    def cpu_copy(self, src_paddr: int, dst_paddr: int, nbytes: int,
                 src_mode: CacheMode, dst_mode: CacheMode):
        """Timed CPU memcpy between physical ranges (read + write cost).

        The destination write is snooped, so copying into an AU-bound
        region *is* the send operation — the paper's 'extra copy' that
        automatic update trades for not needing an explicit send.
        """
        cost = self.config.copy_cost(src_mode, dst_mode, nbytes)
        yield self.sim.timeout(cost)
        data = self.memory.read(src_paddr, nbytes)
        self.memory.write(dst_paddr, data)
        self.nic.snoop_write(dst_paddr, data)

    # -- zero-cost debug access (test assertions, not simulated work) -----------
    def peek(self, paddr: int, nbytes: int) -> bytes:
        """Untimed read for test assertions."""
        return self.memory.read(paddr, nbytes)

    def poke(self, paddr: int, data: bytes) -> None:
        """Untimed store that still fires watches but is NOT snooped.

        For test setup only — production code paths must use cpu_write.
        """
        self.memory.write(paddr, data)
