"""The simulated SHRIMP hardware (systems S2-S9 in DESIGN.md).

Substitutes for the paper's physical prototype: Pentium PC nodes with
Xpress/EISA buses, the custom two-board network interface, the Paragon
mesh routing backplane, and the side Ethernet.
"""

from .bus import EisaBus, XpressBus
from .config import CacheMode, MachineConfig, SoftwareCosts
from .ethernet import Ethernet, EthernetFrame
from .machine import Machine
from .memory import FrameAllocator, MemoryError_, PhysicalMemory, Watch
from .node import Node

__all__ = [
    "CacheMode",
    "EisaBus",
    "Ethernet",
    "EthernetFrame",
    "FrameAllocator",
    "Machine",
    "MachineConfig",
    "MemoryError_",
    "Node",
    "PhysicalMemory",
    "SoftwareCosts",
    "Watch",
    "XpressBus",
]
