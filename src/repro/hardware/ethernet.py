"""The commodity Ethernet control network.

'In addition to the fast backplane interconnect, the PC nodes are
connected by a commodity Ethernet, which is used for diagnostics,
booting, and exchange of low-priority messages.'

In our model it carries daemon-to-daemon mapping negotiations and the
internet-domain sockets the stream-sockets library uses for connection
establishment and connection-break detection.  It is deliberately slow
(hundreds of microseconds of kernel protocol-stack latency) — nothing
on the VMMC data path touches it.

Payloads are Python objects with an explicitly declared wire size;
the Ethernet is a control channel, so object identity (not byte-exact
encoding) is the level of fidelity we need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from ..sim import BandwidthChannel, Event, Simulator, Store
from .config import MachineConfig

__all__ = ["EthernetFrame", "Ethernet"]


@dataclass
class EthernetFrame:
    """One control message on the Ethernet."""

    src_node: int
    dst_node: int
    port: int
    payload: Any
    wire_bytes: int


class Ethernet:
    """A shared 10 Mbit/s segment connecting all nodes."""

    def __init__(self, sim: Simulator, config: MachineConfig):
        self.sim = sim
        self.config = config
        self._medium = BandwidthChannel(
            sim, bandwidth=config.ethernet_bandwidth, name="ethernet"
        )
        # Inboxes keyed by (node, port) — port multiplexes daemons apart
        # from the sockets library's control connections.
        self._inboxes: Dict[tuple, Store] = {}
        self.frames_sent = 0

    def _inbox(self, node_id: int, port: int) -> Store:
        key = (node_id, port)
        box = self._inboxes.get(key)
        if box is None:
            box = Store(self.sim, name="eth-inbox-n%d:%d" % key)
            self._inboxes[key] = box
        return box

    def send(self, src_node: int, dst_node: int, port: int, payload: Any,
             wire_bytes: int = 128) -> None:
        """Transmit a control message; returns immediately (fire and forget).

        Delivery is reliable and ordered per sender (a simplification of
        UDP-with-retry that every control protocol here would layer on
        anyway), and takes ``ethernet_latency`` plus shared-medium time.
        """
        # No explicit fragmentation model: the shared-medium time below
        # already scales with the full byte count, which is all the
        # control plane's latency depends on.
        frame = EthernetFrame(src_node, dst_node, port, payload, wire_bytes)
        self.frames_sent += 1
        done = self._medium.transfer(wire_bytes)
        done.add_callback(lambda _ev: self._deliver(frame))

    def _deliver(self, frame: EthernetFrame) -> None:
        self.sim.schedule_call(
            self.config.ethernet_latency,
            lambda: self._inbox(frame.dst_node, frame.port).try_put(frame),
        )

    def recv(self, node_id: int, port: int) -> Event:
        """Event yielding the next frame for ``(node_id, port)``."""
        return self._inbox(node_id, port).get()
