"""The assembled SHRIMP multicomputer hardware.

A :class:`Machine` is Figure 1 minus the software: N PC nodes with NICs,
the mesh routing backplane connecting them, and the commodity Ethernet
on the side.  The OS and daemon layers wrap this in
:class:`repro.kernel.system.ShrimpSystem`.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim import FaultInjector, FaultPlan, MetricsRegistry, Simulator, Tracer
from .config import MachineConfig
from .ethernet import Ethernet
from .node import Node
from .router.mesh import MeshBackplane

__all__ = ["Machine"]


class Machine:
    """Hardware of the prototype: nodes + backplane + Ethernet.

    ``fault_plan`` arms a machine-wide :class:`FaultInjector` consulted
    by the mesh, the DMA engines, the EISA buses, and the combining
    timers (docs/FAULTS.md).  Without a plan the injector stays disabled
    and every hook is a single false attribute check — zero overhead.
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 sim: Optional[Simulator] = None,
                 trace: bool = False,
                 fault_plan: Optional[FaultPlan] = None):
        self.config = config or MachineConfig.shrimp_prototype()
        self.sim = sim or Simulator()
        self.tracer = Tracer(self.sim, enabled=trace)
        self.faults = FaultInjector(self.sim, fault_plan, self.tracer)
        self.mesh = MeshBackplane(self.sim, self.config, self.tracer,
                                  faults=self.faults)
        self.ethernet = Ethernet(self.sim, self.config)
        self.nodes: List[Node] = [
            Node(self.sim, self.config, node_id, self.mesh, self.tracer,
                 faults=self.faults)
            for node_id in range(self.config.n_nodes)
        ]
        self.metrics = MetricsRegistry(self.sim)
        for node in self.nodes:
            self.metrics.register(node.eisa)
            self.metrics.register(node.xpress)
            self.metrics.register(node.nic.fifo)
            self.metrics.register(node.nic.arbiter)
            self.metrics.register(node.nic.du_engine)

    def node(self, node_id: int) -> Node:
        """The node with this id (ValueError if out of range)."""
        if not 0 <= node_id < len(self.nodes):
            raise ValueError("node id %d out of range" % node_id)
        return self.nodes[node_id]

    def run(self, until: Optional[float] = None):
        """Run the event loop (convenience passthrough)."""
        return self.sim.run(until=until)

    def stats(self) -> dict:
        """Machine-wide hardware counters."""
        return {
            "packets_routed": self.mesh.packets_routed,
            "bytes_routed": self.mesh.bytes_routed,
            "packets_delivered": self.mesh.packets_delivered,
            "packets_dropped": self.mesh.packets_dropped,
            "ethernet_frames": self.ethernet.frames_sent,
            "faults": self.faults.stats(),
            "nodes": {n.node_id: n.nic.stats() for n in self.nodes},
        }

    def utilization_report(self, min_count: int = 0) -> str:
        """Per-resource utilization across buses, FIFOs, arbiters, links.

        Mesh links are created lazily on first traffic, so any not yet
        registered are added here before rendering.
        """
        registered = set(id(entry) for entry in self.metrics._entries)
        for router in self.mesh.routers.values():
            for link in router.links.values():
                if id(link) not in registered:
                    self.metrics.register(link)
                    registered.add(id(link))
        for link in self.mesh._loopback.values():
            if id(link) not in registered:
                self.metrics.register(link)
                registered.add(id(link))
        return self.metrics.report(min_count=min_count)

    def stats_report(self) -> str:
        """A human-readable counter summary (for examples and debugging)."""
        stats = self.stats()
        lines = [
            "machine @ t=%.1f us: %d packets / %d bytes on the backplane, "
            "%d Ethernet frames"
            % (self.sim.now, stats["packets_routed"], stats["bytes_routed"],
               stats["ethernet_frames"])
        ]
        header = ("node", "au-writes", "packets", "combined", "du-bytes",
                  "recv-pkts", "faults")
        lines.append("  %-5s %10s %8s %9s %9s %10s %7s" % header)
        for node_id, node_stats in stats["nodes"].items():
            lines.append(
                "  %-5d %10d %8d %9d %9d %10d %7d"
                % (
                    node_id,
                    node_stats["au_writes_matched"],
                    node_stats["packets_formed"],
                    node_stats["combined_writes"],
                    node_stats["du_bytes"],
                    node_stats["packets_received"],
                    node_stats["receive_faults"],
                )
            )
        return "\n".join(lines)
