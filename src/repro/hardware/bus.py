"""Node buses: the Xpress memory bus and the EISA expansion bus.

The Xpress bus carries CPU stores (snooped by the NIC) and the memory
side of DMA; the EISA bus carries the NIC's DMA traffic — deliberate-
update source reads and incoming-packet writes — plus the programmed-
I/O accesses that initiate deliberate updates.

Both are modeled as serially-occupied bandwidth channels.  The EISA
channel is the end-to-end bottleneck of the system, as in the paper
(~23 MB/s effective after per-packet setup costs).  CPU store/load
*costs* are charged by the cache model (config.write_cost/read_cost),
so the Xpress channel is only occupied by DMA, avoiding double
charging; it exists so that ablations can model memory-bus saturation.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim import BandwidthChannel, Event, FaultInjector, FaultSite, Simulator
from .config import MachineConfig

__all__ = ["EisaBus", "XpressBus"]


class EisaBus(BandwidthChannel):
    """The EISA expansion bus of one node.

    Hosts the ``bus.eisa`` fault site: a ``degrade`` fault divides the
    bus bandwidth by ``factor`` for ``duration_us`` (a flaky card or a
    bus-hog peripheral stealing cycles).  Transfers that start inside
    the window take proportionally longer; the window opens when the
    first transfer at or after the fault's time crosses the bus.
    """

    def __init__(self, sim: Simulator, config: MachineConfig, node_id: int,
                 faults: Optional[FaultInjector] = None):
        super().__init__(
            sim,
            bandwidth=config.eisa_dma_bandwidth,
            name="eisa-n%d" % node_id,
        )
        self.config = config
        self.node_id = node_id
        self.faults = faults or FaultInjector(sim)
        self.pio_accesses = 0
        self._degraded_until = 0.0
        self._degrade_factor = 1.0
        self.degrade_windows = 0

    def occupancy(self, nbytes: int) -> float:
        """Channel time for one transfer, stretched while degraded."""
        base = super().occupancy(nbytes)
        if self.sim.now < self._degraded_until:
            return base * self._degrade_factor
        return base

    def transfer(self, nbytes: int, value: Any = None) -> Event:
        """Queue a DMA transfer, consulting the fault site first."""
        if self.faults.enabled:
            fault = self.faults.draw(FaultSite.BUS_EISA, node=self.node_id)
            if fault is not None:
                self._degrade_factor = fault.params.get("factor", 4.0)
                self._degraded_until = self.sim.now + fault.params.get(
                    "duration_us", 200.0
                )
                self.degrade_windows += 1
        return super().transfer(nbytes, value)

    def pio_cost(self, accesses: int = 1) -> float:
        """CPU time of ``accesses`` programmed-I/O accesses decoded by the NIC.

        A deliberate update is initiated by a sequence of two of these.
        """
        self.pio_accesses += accesses
        return accesses * self.config.eisa_pio_access


class XpressBus(BandwidthChannel):
    """The Xpress memory bus of one node (73 MB/s burst writes)."""

    def __init__(self, sim: Simulator, config: MachineConfig, node_id: int):
        super().__init__(
            sim,
            bandwidth=config.xpress_bandwidth,
            name="xpress-n%d" % node_id,
        )
        self.config = config
