"""Node buses: the Xpress memory bus and the EISA expansion bus.

The Xpress bus carries CPU stores (snooped by the NIC) and the memory
side of DMA; the EISA bus carries the NIC's DMA traffic — deliberate-
update source reads and incoming-packet writes — plus the programmed-
I/O accesses that initiate deliberate updates.

Both are modeled as serially-occupied bandwidth channels.  The EISA
channel is the end-to-end bottleneck of the system, as in the paper
(~23 MB/s effective after per-packet setup costs).  CPU store/load
*costs* are charged by the cache model (config.write_cost/read_cost),
so the Xpress channel is only occupied by DMA, avoiding double
charging; it exists so that ablations can model memory-bus saturation.
"""

from __future__ import annotations

from ..sim import BandwidthChannel, Simulator
from .config import MachineConfig

__all__ = ["EisaBus", "XpressBus"]


class EisaBus(BandwidthChannel):
    """The EISA expansion bus of one node."""

    def __init__(self, sim: Simulator, config: MachineConfig, node_id: int):
        super().__init__(
            sim,
            bandwidth=config.eisa_dma_bandwidth,
            name="eisa-n%d" % node_id,
        )
        self.config = config
        self.pio_accesses = 0

    def pio_cost(self, accesses: int = 1) -> float:
        """CPU time of ``accesses`` programmed-I/O accesses decoded by the NIC.

        A deliberate update is initiated by a sequence of two of these.
        """
        self.pio_accesses += accesses
        return accesses * self.config.eisa_pio_access


class XpressBus(BandwidthChannel):
    """The Xpress memory bus of one node (73 MB/s burst writes)."""

    def __init__(self, sim: Simulator, config: MachineConfig, node_id: int):
        super().__init__(
            sim,
            bandwidth=config.xpress_bandwidth,
            name="xpress-n%d" % node_id,
        )
        self.config = config
