"""Per-node physical memory: real bytes, page frames, and write watches.

Data integrity is a first-class concern of this reproduction (DESIGN.md
decision 1): every transfer moves actual bytes through these arrays, so
tests can assert that what was sent is what arrived, in order.

Pages are allocated lazily (a 40 MB `bytearray` per node times N nodes
would be wasteful for microbenchmarks that touch a few hundred KB).

Watchpoints let a simulated process "poll a flag" without burning one
simulation event per spin iteration: the poller registers a watch on the
flag's address and is re-checked whenever *any* write (CPU or incoming
DMA) touches the watched range.  The CPU cost of the detecting check is
charged by the caller (see ``UserProcess.poll``), preserving the paper's
cost structure while keeping the event count proportional to real work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .config import MachineConfig

__all__ = ["MemoryError_", "Watch", "PhysicalMemory", "FrameAllocator"]


class MemoryError_(Exception):
    """Physical-address out of range or frame exhaustion.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class Watch:
    """A registered write-watch over ``[start, start+length)``.

    ``callback(paddr, nbytes)`` fires for every write overlapping the
    range, after the bytes have been stored.  Deregister with
    :meth:`PhysicalMemory.remove_watch`.
    """

    __slots__ = ("start", "length", "callback", "active", "_id")

    def __init__(self, start: int, length: int, callback: Callable[[int, int], None]):
        self.start = start
        self.length = length
        self.callback = callback
        self.active = True
        self._id = 0  # registration order, set by PhysicalMemory.add_watch

    def overlaps(self, paddr: int, nbytes: int) -> bool:
        """Does a write at ``paddr`` of ``nbytes`` touch this watch?"""
        return paddr < self.start + self.length and self.start < paddr + nbytes


class PhysicalMemory:
    """The DRAM of one node, addressed by physical byte address."""

    def __init__(self, config: MachineConfig, node_id: int = 0):
        self.config = config
        self.node_id = node_id
        self.size = config.memory_bytes
        self.page_size = config.page_size
        self._pages: Dict[int, bytearray] = {}
        # Watches are bucketed by the page(s) they span, so a write only
        # scans the watchers of the pages it touches (pollers register
        # and remove watches every sleep, and writes far outnumber
        # matches).  ``_watch_count``/``_watch_seq`` keep the public
        # count and the deterministic registration order.
        self._watch_pages: Dict[int, List[Watch]] = {}
        self._watch_count = 0
        self._watch_seq = 0
        self.bytes_written = 0
        self.bytes_read = 0

    # -- bounds ------------------------------------------------------------
    def _check(self, paddr: int, nbytes: int) -> None:
        if nbytes < 0:
            raise MemoryError_("negative length %d" % nbytes)
        if paddr < 0 or paddr + nbytes > self.size:
            raise MemoryError_(
                "physical access [%#x, %#x) outside node %d memory (%#x bytes)"
                % (paddr, paddr + nbytes, self.node_id, self.size)
            )

    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(self.page_size)
            self._pages[page_number] = page
        return page

    # -- access --------------------------------------------------------------
    def read(self, paddr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``paddr`` (may span pages)."""
        if nbytes < 0 or paddr < 0 or paddr + nbytes > self.size:
            self._check(paddr, nbytes)
        self.bytes_read += nbytes
        page_size = self.page_size
        page_number, page_offset = divmod(paddr, page_size)
        if page_offset + nbytes <= page_size:
            # Fast path: the read sits inside one page (flag polls and
            # small transfers, i.e. almost everything).
            page = self._pages.get(page_number)
            if page is None:
                return bytes(nbytes)
            return bytes(page[page_offset : page_offset + nbytes])
        out = bytearray(nbytes)
        offset = 0
        while offset < nbytes:
            addr = paddr + offset
            page_number, page_offset = divmod(addr, page_size)
            chunk = min(nbytes - offset, page_size - page_offset)
            page = self._pages.get(page_number)
            if page is not None:
                out[offset : offset + chunk] = page[page_offset : page_offset + chunk]
            offset += chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        """Store ``data`` at ``paddr`` and fire overlapping watches."""
        nbytes = len(data)
        if nbytes < 0 or paddr < 0 or paddr + nbytes > self.size:
            self._check(paddr, nbytes)
        self.bytes_written += nbytes
        page_size = self.page_size
        page_number, page_offset = divmod(paddr, page_size)
        if page_offset + nbytes <= page_size:
            page = self._pages.get(page_number)
            if page is None:
                page = bytearray(page_size)
                self._pages[page_number] = page
            page[page_offset : page_offset + nbytes] = data
        else:
            offset = 0
            while offset < nbytes:
                addr = paddr + offset
                page_number, page_offset = divmod(addr, page_size)
                chunk = min(nbytes - offset, page_size - page_offset)
                self._page(page_number)[page_offset : page_offset + chunk] = data[
                    offset : offset + chunk
                ]
                offset += chunk
        if self._watch_count:
            self._fire_watches(paddr, nbytes)

    def _fire_watches(self, paddr: int, nbytes: int) -> None:
        first_page = paddr // self.page_size
        last_page = (paddr + nbytes - 1) // self.page_size if nbytes else first_page
        watch_pages = self._watch_pages
        if last_page == first_page:
            bucket = watch_pages.get(first_page)
            if not bucket:
                return
            matches = [w for w in bucket
                       if w.active and w.start < paddr + nbytes
                       and paddr < w.start + w.length]
        else:
            matches = []
            for page in range(first_page, last_page + 1):
                bucket = watch_pages.get(page)
                if bucket:
                    matches.extend(
                        w for w in bucket
                        if w.active and w.start < paddr + nbytes
                        and paddr < w.start + w.length)
            if len(matches) > 1:
                # A watch spanning a page boundary appears in several
                # buckets; fire each watch once, in registration order.
                matches = sorted(set(matches), key=lambda w: w._id)
        # Callbacks may add/remove watches (typical: a poll that
        # matched); ``matches`` is already a private snapshot.
        for watch in matches:
            if watch.active:
                watch.callback(paddr, nbytes)

    # -- watches ---------------------------------------------------------------
    def add_watch(
        self, paddr: int, nbytes: int, callback: Callable[[int, int], None]
    ) -> Watch:
        """Watch writes to ``[paddr, paddr+nbytes)``."""
        self._check(paddr, nbytes)
        watch = Watch(paddr, nbytes, callback)
        self._watch_seq += 1
        watch._id = self._watch_seq
        first_page = paddr // self.page_size
        last_page = (paddr + nbytes - 1) // self.page_size if nbytes else first_page
        for page in range(first_page, last_page + 1):
            bucket = self._watch_pages.get(page)
            if bucket is None:
                bucket = self._watch_pages[page] = []
            bucket.append(watch)
        self._watch_count += 1
        return watch

    def remove_watch(self, watch: Watch) -> None:
        """Deregister a watch (harmless if already removed)."""
        if not watch.active:
            return
        watch.active = False
        self._watch_count -= 1
        first_page = watch.start // self.page_size
        end = watch.start + watch.length
        last_page = (end - 1) // self.page_size if watch.length else first_page
        for page in range(first_page, last_page + 1):
            bucket = self._watch_pages.get(page)
            if bucket is not None:
                try:
                    bucket.remove(watch)
                except ValueError:
                    pass
                if not bucket:
                    del self._watch_pages[page]

    @property
    def watch_count(self) -> int:
        return self._watch_count

    @property
    def resident_pages(self) -> int:
        """Number of lazily-materialized page frames (for tests)."""
        return len(self._pages)


class FrameAllocator:
    """Hands out physical page frames of one node's memory.

    The SHRIMP daemon uses this (via the OS) to place pinned receive
    buffers; user address spaces use it for ordinary anonymous pages.
    Frame 0 is reserved so that physical address 0 never appears in user
    mappings (catching uninitialized-address bugs).
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.total_frames = config.memory_pages
        self._next_frame = 1
        self._free: List[int] = []

    def allocate(self, nframes: int) -> List[int]:
        """Allocate ``nframes`` physical frames (not necessarily contiguous)."""
        if nframes <= 0:
            raise ValueError("nframes must be positive")
        frames: List[int] = []
        while self._free and len(frames) < nframes:
            frames.append(self._free.pop())
        remaining = nframes - len(frames)
        if self._next_frame + remaining > self.total_frames:
            # Roll back partial allocation before failing.
            self._free.extend(frames)
            raise MemoryError_(
                "out of physical frames: want %d, have %d"
                % (remaining, self.total_frames - self._next_frame)
            )
        for _ in range(remaining):
            frames.append(self._next_frame)
            self._next_frame += 1
        return frames

    def allocate_contiguous(self, nframes: int) -> int:
        """Allocate ``nframes`` adjacent frames; returns the first frame.

        Pinned receive-buffer regions use contiguous frames so a single
        incoming DMA can be bounds-checked with one IPT range.
        """
        if nframes <= 0:
            raise ValueError("nframes must be positive")
        if self._next_frame + nframes > self.total_frames:
            raise MemoryError_("out of contiguous physical frames")
        first = self._next_frame
        self._next_frame += nframes
        return first

    def free(self, frames: List[int]) -> None:
        """Return frames to the free pool."""
        self._free.extend(frames)

    @property
    def frames_in_use(self) -> int:
        return self._next_frame - 1 - len(self._free)
