"""Per-node physical memory: real bytes, page frames, and write watches.

Data integrity is a first-class concern of this reproduction (DESIGN.md
decision 1): every transfer moves actual bytes through these arrays, so
tests can assert that what was sent is what arrived, in order.

Pages are allocated lazily (a 40 MB `bytearray` per node times N nodes
would be wasteful for microbenchmarks that touch a few hundred KB).

Watchpoints let a simulated process "poll a flag" without burning one
simulation event per spin iteration: the poller registers a watch on the
flag's address and is re-checked whenever *any* write (CPU or incoming
DMA) touches the watched range.  The CPU cost of the detecting check is
charged by the caller (see ``UserProcess.poll``), preserving the paper's
cost structure while keeping the event count proportional to real work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .config import MachineConfig

__all__ = ["MemoryError_", "Watch", "PhysicalMemory", "FrameAllocator"]


class MemoryError_(Exception):
    """Physical-address out of range or frame exhaustion.

    Named with a trailing underscore to avoid shadowing the builtin.
    """


class Watch:
    """A registered write-watch over ``[start, start+length)``.

    ``callback(paddr, nbytes)`` fires for every write overlapping the
    range, after the bytes have been stored.  Deregister with
    :meth:`PhysicalMemory.remove_watch`.
    """

    __slots__ = ("start", "length", "callback", "active")

    def __init__(self, start: int, length: int, callback: Callable[[int, int], None]):
        self.start = start
        self.length = length
        self.callback = callback
        self.active = True

    def overlaps(self, paddr: int, nbytes: int) -> bool:
        """Does a write at ``paddr`` of ``nbytes`` touch this watch?"""
        return paddr < self.start + self.length and self.start < paddr + nbytes


class PhysicalMemory:
    """The DRAM of one node, addressed by physical byte address."""

    def __init__(self, config: MachineConfig, node_id: int = 0):
        self.config = config
        self.node_id = node_id
        self.size = config.memory_bytes
        self.page_size = config.page_size
        self._pages: Dict[int, bytearray] = {}
        self._watches: List[Watch] = []
        self.bytes_written = 0
        self.bytes_read = 0

    # -- bounds ------------------------------------------------------------
    def _check(self, paddr: int, nbytes: int) -> None:
        if nbytes < 0:
            raise MemoryError_("negative length %d" % nbytes)
        if paddr < 0 or paddr + nbytes > self.size:
            raise MemoryError_(
                "physical access [%#x, %#x) outside node %d memory (%#x bytes)"
                % (paddr, paddr + nbytes, self.node_id, self.size)
            )

    def _page(self, page_number: int) -> bytearray:
        page = self._pages.get(page_number)
        if page is None:
            page = bytearray(self.page_size)
            self._pages[page_number] = page
        return page

    # -- access --------------------------------------------------------------
    def read(self, paddr: int, nbytes: int) -> bytes:
        """Read ``nbytes`` starting at ``paddr`` (may span pages)."""
        self._check(paddr, nbytes)
        self.bytes_read += nbytes
        out = bytearray(nbytes)
        offset = 0
        while offset < nbytes:
            addr = paddr + offset
            page_number, page_offset = divmod(addr, self.page_size)
            chunk = min(nbytes - offset, self.page_size - page_offset)
            page = self._pages.get(page_number)
            if page is not None:
                out[offset : offset + chunk] = page[page_offset : page_offset + chunk]
            offset += chunk
        return bytes(out)

    def write(self, paddr: int, data: bytes) -> None:
        """Store ``data`` at ``paddr`` and fire overlapping watches."""
        nbytes = len(data)
        self._check(paddr, nbytes)
        self.bytes_written += nbytes
        offset = 0
        while offset < nbytes:
            addr = paddr + offset
            page_number, page_offset = divmod(addr, self.page_size)
            chunk = min(nbytes - offset, self.page_size - page_offset)
            self._page(page_number)[page_offset : page_offset + chunk] = data[
                offset : offset + chunk
            ]
            offset += chunk
        if self._watches:
            self._fire_watches(paddr, nbytes)

    def _fire_watches(self, paddr: int, nbytes: int) -> None:
        # Copy: callbacks may remove watches (typical: a poll that matched).
        for watch in list(self._watches):
            if watch.active and watch.overlaps(paddr, nbytes):
                watch.callback(paddr, nbytes)

    # -- watches ---------------------------------------------------------------
    def add_watch(
        self, paddr: int, nbytes: int, callback: Callable[[int, int], None]
    ) -> Watch:
        """Watch writes to ``[paddr, paddr+nbytes)``."""
        self._check(paddr, nbytes)
        watch = Watch(paddr, nbytes, callback)
        self._watches.append(watch)
        return watch

    def remove_watch(self, watch: Watch) -> None:
        """Deregister a watch (harmless if already removed)."""
        watch.active = False
        try:
            self._watches.remove(watch)
        except ValueError:
            pass

    @property
    def watch_count(self) -> int:
        return len(self._watches)

    @property
    def resident_pages(self) -> int:
        """Number of lazily-materialized page frames (for tests)."""
        return len(self._pages)


class FrameAllocator:
    """Hands out physical page frames of one node's memory.

    The SHRIMP daemon uses this (via the OS) to place pinned receive
    buffers; user address spaces use it for ordinary anonymous pages.
    Frame 0 is reserved so that physical address 0 never appears in user
    mappings (catching uninitialized-address bugs).
    """

    def __init__(self, config: MachineConfig):
        self.config = config
        self.total_frames = config.memory_pages
        self._next_frame = 1
        self._free: List[int] = []

    def allocate(self, nframes: int) -> List[int]:
        """Allocate ``nframes`` physical frames (not necessarily contiguous)."""
        if nframes <= 0:
            raise ValueError("nframes must be positive")
        frames: List[int] = []
        while self._free and len(frames) < nframes:
            frames.append(self._free.pop())
        remaining = nframes - len(frames)
        if self._next_frame + remaining > self.total_frames:
            # Roll back partial allocation before failing.
            self._free.extend(frames)
            raise MemoryError_(
                "out of physical frames: want %d, have %d"
                % (remaining, self.total_frames - self._next_frame)
            )
        for _ in range(remaining):
            frames.append(self._next_frame)
            self._next_frame += 1
        return frames

    def allocate_contiguous(self, nframes: int) -> int:
        """Allocate ``nframes`` adjacent frames; returns the first frame.

        Pinned receive-buffer regions use contiguous frames so a single
        incoming DMA can be bounds-checked with one IPT range.
        """
        if nframes <= 0:
            raise ValueError("nframes must be positive")
        if self._next_frame + nframes > self.total_frames:
            raise MemoryError_("out of contiguous physical frames")
        first = self._next_frame
        self._next_frame += nframes
        return first

    def free(self, frames: List[int]) -> None:
        """Return frames to the free pool."""
        self._free.extend(frames)

    @property
    def frames_in_use(self) -> int:
        return self._next_frame - 1 - len(self._free)
