"""Command-line interface: regenerate the paper's results from a shell.

    python -m repro scalars          # the headline scalar table
    python -m repro fig3|fig4|fig5|fig7|fig8
    python -m repro ttcp
    python -m repro budget           # analytic one-word latency budgets
    python -m repro all              # everything, in order

Each figure command prints the same rows the paper plots (and that
``pytest benchmarks/`` asserts the shape of).
"""

from __future__ import annotations

import argparse
import sys

from .analysis import au_word_budget, du_word_budget
from .bench import (
    figure3_raw_vmmc,
    figure4_nx,
    figure5_vrpc,
    figure7_sockets,
    figure8_rpc_comparison,
    headline_scalars,
    ttcp_results,
)
from .bench.report import format_table
from .hardware.config import CacheMode

_PAPER_SCALARS = {
    "au_word_wt_us": ("AU one-word latency, write-through (us)", 4.75),
    "au_word_uncached_us": ("AU one-word latency, uncached (us)", 3.7),
    "du_word_us": ("DU one-word latency (us)", 7.6),
    "du_0copy_peak_mb_s": ("DU-0copy peak bandwidth (MB/s)", 23.0),
    "nx_small_au_us": ("NX small-message latency (us)", None),
    "raw_small_au_us": ("raw AU small-message latency (us)", None),
    "socket_small_au_us": ("socket small-message latency (us)", None),
    "vrpc_null_rtt_us": ("VRPC null round trip (us)", 29.0),
    "srpc_null_inout_rtt_us": ("SHRIMP RPC null+INOUT round trip (us)", 9.5),
}


def _cmd_scalars() -> None:
    measured = headline_scalars()
    rows = [["scalar", "paper", "measured"]]
    for key, value in measured.items():
        label, paper = _PAPER_SCALARS.get(key, (key, None))
        rows.append([label, "%.2f" % paper if paper else "-", "%.2f" % value])
    print("\n".join(format_table(rows)))


def _cmd_ttcp() -> None:
    results = ttcp_results()
    rows = [["measurement", "MB/s"]]
    for key, value in results.items():
        rows.append([key, "%.2f" % value])
    print("\n".join(format_table(rows)))


def _cmd_budget() -> None:
    print(au_word_budget(cache_mode=CacheMode.WRITE_THROUGH).report())
    print()
    print(au_word_budget(cache_mode=CacheMode.UNCACHED).report())
    print()
    print(du_word_budget().report())


_FIGURES = {
    "fig3": figure3_raw_vmmc,
    "fig4": figure4_nx,
    "fig5": figure5_vrpc,
    "fig7": figure7_sockets,
    "fig8": figure8_rpc_comparison,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SHRIMP paper's evaluation results.",
    )
    parser.add_argument(
        "command",
        choices=sorted(_FIGURES) + ["scalars", "ttcp", "budget", "all"],
        help="which experiment to run",
    )
    args = parser.parse_args(argv)

    if args.command in _FIGURES:
        print(_FIGURES[args.command]().report())
    elif args.command == "scalars":
        _cmd_scalars()
    elif args.command == "ttcp":
        _cmd_ttcp()
    elif args.command == "budget":
        _cmd_budget()
    else:  # all
        _cmd_budget()
        print()
        _cmd_scalars()
        print()
        for name in sorted(_FIGURES):
            print(_FIGURES[name]().report())
            print()
        _cmd_ttcp()
    return 0


if __name__ == "__main__":
    sys.exit(main())
