"""Command-line interface: regenerate the paper's results from a shell.

    python -m repro scalars          # the headline scalar table
    python -m repro fig3|fig4|fig5|fig7|fig8
    python -m repro ttcp
    python -m repro budget           # analytic one-word latency budgets
    python -m repro trace            # traced one-word journey + Chrome JSON
    python -m repro faults --seed N  # replay a seeded fault schedule
    python -m repro serve            # scripted demo against the KV service
    python -m repro workload --seed N --load L   # one workload run
    python -m repro capacity         # offered load vs tail latency sweep
    python -m repro antientropy      # replica divergence + Merkle healing
    python -m repro explain          # one request's cross-node causal tree
    python -m repro profile          # fleet-wide flame profile of a traced run
    python -m repro diff             # A/B stage attribution, or bench diffs
    python -m repro all              # everything, in order

Each figure command prints the same rows the paper plots (and that
``pytest benchmarks/`` asserts the shape of).  ``trace`` runs a Figure 3
one-word transfer with tracing on, writes Chrome ``trace_event`` JSON
(loadable in chrome://tracing or https://ui.perfetto.dev), and prints the
measured-vs-analytic latency budget plus the utilization report; see
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import sys

from .analysis import au_word_budget, du_word_budget
from .bench import (
    figure3_raw_vmmc,
    figure4_nx,
    figure5_vrpc,
    figure7_sockets,
    figure8_rpc_comparison,
    headline_scalars,
    ttcp_results,
)
from .bench.report import format_table
from .hardware.config import CacheMode

_PAPER_SCALARS = {
    "au_word_wt_us": ("AU one-word latency, write-through (us)", 4.75),
    "au_word_uncached_us": ("AU one-word latency, uncached (us)", 3.7),
    "du_word_us": ("DU one-word latency (us)", 7.6),
    "du_0copy_peak_mb_s": ("DU-0copy peak bandwidth (MB/s)", 23.0),
    "nx_small_au_us": ("NX small-message latency (us)", None),
    "raw_small_au_us": ("raw AU small-message latency (us)", None),
    "socket_small_au_us": ("socket small-message latency (us)", None),
    "vrpc_null_rtt_us": ("VRPC null round trip (us)", 29.0),
    "srpc_null_inout_rtt_us": ("SHRIMP RPC null+INOUT round trip (us)", 9.5),
}


def _cmd_scalars() -> None:
    measured = headline_scalars()
    rows = [["scalar", "paper", "measured"]]
    for key, value in measured.items():
        label, paper = _PAPER_SCALARS.get(key, (key, None))
        rows.append([label, "%.2f" % paper if paper else "-", "%.2f" % value])
    print("\n".join(format_table(rows)))


def _cmd_ttcp() -> None:
    results = ttcp_results()
    rows = [["measurement", "MB/s"]]
    for key, value in results.items():
        rows.append([key, "%.2f" % value])
    print("\n".join(format_table(rows)))


def _cmd_budget() -> None:
    print(au_word_budget(cache_mode=CacheMode.WRITE_THROUGH).report())
    print()
    print(au_word_budget(cache_mode=CacheMode.UNCACHED).report())
    print()
    print(du_word_budget().report())


def _cmd_faults(args) -> int:
    from .libs.nx import VARIANTS, nx_world
    from .sim.faults import FaultPlan
    from .testbed import make_system
    from .vmmc import VmmcTimeoutError

    plan = FaultPlan.from_seed(args.seed, horizon_us=args.horizon,
                               count=args.count)
    print(plan.describe())
    if args.plan_only:
        return 0

    system = make_system(fault_plan=plan)
    nbytes = 1024
    payload = bytes((args.seed * 37 + i * 17 + 5) % 256 for i in range(nbytes))
    outcome = {}

    def make_rank(me, peer, initiator):
        def program(nx):
            src = nx.proc.space.mmap(4096)
            dst = nx.proc.space.mmap(4096)
            nx.proc.poke(src, payload)
            try:
                if initiator:
                    yield from nx.csend(7, src, nbytes, to=peer)
                    size = yield from nx.crecv(8, dst, 4096)
                else:
                    size = yield from nx.crecv(7, dst, 4096)
                    yield from nx.csend(8, src, nbytes, to=peer)
                intact = nx.proc.peek(dst, size) == payload
                outcome[me] = "ok" if intact else "CORRUPT PAYLOAD"
            except VmmcTimeoutError as exc:
                outcome[me] = "typed timeout (%s)" % type(exc).__name__

        return program

    handles = nx_world(system, [make_rank(0, 1, True), make_rank(1, 0, False)],
                       variant=VARIANTS[args.variant])
    system.run_processes(handles, timeout=20_000_000.0)
    print()
    print(system.faults.report())
    print()
    print("workload: NX %s ping-pong, %d bytes each way" % (args.variant, nbytes))
    for rank in sorted(outcome):
        print("  rank %d: %s" % (rank, outcome[rank]))
    return 0 if all(v.startswith(("ok", "typed")) for v in outcome.values()) else 1


def _cmd_trace(args) -> int:
    from .bench.tracing import trace_one_word
    from .sim import validate_chrome_trace

    if args.check is not None:
        try:
            with open(args.check) as fh:
                text = fh.read()
        except OSError as exc:
            print("cannot read %s: %s" % (args.check, exc.strerror))
            return 1
        problems = validate_chrome_trace(text)
        if problems:
            for problem in problems:
                print("INVALID: %s" % problem)
            return 1
        print("%s: valid Chrome trace_event JSON" % args.check)
        return 0

    cache_mode = CacheMode.UNCACHED if args.uncached else CacheMode.WRITE_THROUGH
    result = trace_one_word(mode=args.mode, cache_mode=cache_mode)
    print(result.report())
    print()
    print(result.utilization_report())
    if args.out:
        try:
            path = result.write_chrome_trace(args.out)
        except OSError as exc:
            print("cannot write %s: %s" % (args.out, exc.strerror))
            return 1
        problems = validate_chrome_trace(result.chrome_json())
        if problems:
            for problem in problems:
                print("INVALID: %s" % problem)
            return 1
        print()
        print("wrote %s (open in chrome://tracing or https://ui.perfetto.dev)"
              % path)
    return 0 if result.agreement_error <= 0.01 else 1


def _cmd_workload(args) -> int:
    from .sim.faults import FaultPlan
    from .workload import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        seed=args.seed, transport=args.transport, arrival=args.arrival,
        load=args.load, concurrency=args.concurrency, requests=args.requests,
        keys=args.keys, read_fraction=args.read_fraction,
        scan_fraction=args.scan_fraction, key_distribution=args.dist,
        zipf_s=args.zipf_s, nodes=args.nodes, replicas=args.replicas,
        pipeline_window=args.pipeline_window, batch_keys=args.batch_keys,
        cache_keys=args.cache_keys, cache_ttl_us=args.cache_ttl,
        read_spread=args.read_spread, onesided_reads=args.onesided,
        cpu_slots=args.cpu_slots, cpu_op_us=args.cpu_op_us,
        admission=args.admission, admit_queue=args.admit_queue,
        admit_deadline_us=args.admit_deadline,
        retry_budget=args.retry_budget, retry_base_us=args.retry_base,
        retry_jitter=args.retry_jitter, backpressure=args.backpressure,
        slo_latency_us=args.slo_latency,
        consistency=args.consistency, quorum_r=args.quorum_r,
        quorum_w=args.quorum_w, read_repair=args.read_repair,
        staleness=args.staleness, antientropy=args.antientropy,
        antientropy_interval_us=args.antientropy_interval,
        repl_queue_cap=args.repl_queue_cap)
    plan = None
    if args.fault_seed is not None:
        plan = FaultPlan.from_seed(args.fault_seed,
                                   horizon_us=args.fault_horizon,
                                   count=args.fault_count)
        print(plan.describe())
        print()
    report = run_workload(spec, fault_plan=plan)
    print(report.report())
    return 0


def _coerce_spec_field(name: str, raw: str):
    """Coerce a ``field=value`` CLI override to the spec field's type."""
    import dataclasses

    from .workload import WorkloadSpec

    types = {f.name: f.type for f in dataclasses.fields(WorkloadSpec)}
    if name not in types:
        raise SystemExit("unknown WorkloadSpec field %r" % name)
    kind = str(types[name])
    if "bool" in kind:
        if raw.lower() in ("1", "true", "yes", "on"):
            return True
        if raw.lower() in ("0", "false", "no", "off"):
            return False
        raise SystemExit("boolean field %s takes true/false, not %r"
                         % (name, raw))
    if "int" in kind:
        return int(raw)
    if "float" in kind:
        return float(raw)
    if "str" in kind:
        return raw
    raise SystemExit("field %s cannot be set from the command line" % name)


def _spec_overrides(pairs):
    """Parse repeated ``field=value`` arguments into a replace() dict."""
    overrides = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit("expected field=value, got %r" % pair)
        name, raw = pair.split("=", 1)
        overrides[name] = _coerce_spec_field(name, raw)
    return overrides


def _cmd_record(args) -> int:
    from .workload import (WorkloadSpec, diurnal, flash_crowd,
                           record_stream, save_stream, skew_shift)

    spec = WorkloadSpec(
        seed=args.seed, arrival=args.arrival, load=args.load,
        concurrency=args.concurrency, requests=args.requests,
        keys=args.keys, read_fraction=args.read_fraction,
        scan_fraction=args.scan_fraction, key_distribution=args.dist,
        zipf_s=args.zipf_s)
    stream = record_stream(spec)
    for scenario in args.scenario or []:
        if scenario == "flash_crowd":
            stream = flash_crowd(stream, start_us=args.flash_at,
                                 duration_us=args.flash_duration,
                                 factor=args.flash_factor)
        elif scenario == "diurnal":
            stream = diurnal(stream, period_us=args.diurnal_period,
                             amplitude=args.diurnal_amplitude)
        else:
            stream = skew_shift(stream, at_request=args.shift_at,
                                key_distribution=args.shift_dist,
                                zipf_s=args.shift_zipf_s)
    save_stream(stream, args.out)
    print(stream.describe())
    print("wrote %s" % args.out)
    return 0


def _replay_spec(args, stream):
    """The replay spec: stream provenance + CLI serving overrides."""
    import dataclasses

    from .workload import WorkloadSpec

    meta = stream.meta
    spec = WorkloadSpec(
        seed=int(meta.get("seed", 1)),
        arrival=stream.arrival,
        load=float(meta.get("load", 20000.0)),
        concurrency=int(meta.get("concurrency", 8)),
        requests=len(stream),
        keys=int(meta.get("keys", 200)),
        read_fraction=float(meta.get("read_fraction", 0.90)),
        scan_fraction=float(meta.get("scan_fraction", 0.0)),
        key_distribution=str(meta.get("key_distribution", "zipf")),
        zipf_s=float(meta.get("zipf_s", 1.1)))
    overrides = _spec_overrides(args.set)
    if overrides:
        spec = dataclasses.replace(spec, **overrides)
    return spec


def _plain_path(spec) -> bool:
    """Whether the engine serves this spec request-per-request.

    Grouped dispatch (an SRPC pipeline window or GET batching under
    open arrivals, workload/engine.py) covers several requests with
    one root span, so per-request arrival tagging — and hence stage
    attribution — only applies to the plain path.
    """
    return not (spec.arrival == "open"
                and max(spec.pipeline_window, spec.batch_keys) > 1
                and spec.transport == "srpc")


_GROUPED_NOTE = ("(stage attribution skipped: grouped dispatch — an SRPC "
                 "pipeline window or GET batch — folds several requests "
                 "into one root span, so per-stage totals cannot close "
                 "against per-request latency; see docs/OBSERVABILITY.md)")


def _cmd_replay(args) -> int:
    import dataclasses

    from .workload import load_stream, run_workload

    stream = load_stream(args.stream)
    print(stream.describe())
    print()
    spec = _replay_spec(args, stream)
    report_a = run_workload(spec, stream=stream)
    if not args.ab:
        print(report_a.report())
        return 0
    spec_b = dataclasses.replace(spec, **_spec_overrides(args.ab))
    report_b = run_workload(spec_b, stream=stream)
    print("== A: baseline ==")
    print(report_a.report())
    print()
    print("== B: %s ==" % " ".join(args.ab))
    print(report_b.report())
    print()
    print("== paired A/B (same offered traffic, request for request) ==")
    rows = [["metric", "A", "B"]]
    rows.append(["completed", "%d" % report_a.completed,
                 "%d" % report_b.completed])
    rows.append(["errors", "%d" % report_a.errors, "%d" % report_b.errors])
    rows.append(["throughput ops/s", "%.0f" % report_a.throughput_ops_s,
                 "%.0f" % report_b.throughput_ops_s])
    for p in (50.0, 95.0, 99.0):
        rows.append(["p%g us" % p, "%.1f" % report_a.percentile(p),
                     "%.1f" % report_b.percentile(p)])
    from .bench.report import format_table
    print("\n".join(format_table(rows)))
    print()
    if _plain_path(spec) and _plain_path(spec_b):
        from .bench.attribution import attribute_pair
        result = attribute_pair(spec, spec_b, stream=stream,
                                label=" ".join(args.ab))
        print(result.report())
    else:
        print(_GROUPED_NOTE)
    return 0


def _cmd_profile(args) -> int:
    from .obs import build_profile, render_folded
    from .workload import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        seed=args.seed, transport=args.transport, arrival="open",
        load=args.load, concurrency=args.concurrency,
        requests=args.requests, keys=args.keys,
        read_fraction=args.read_fraction, trace=True,
        onesided_reads=args.onesided, tenant=args.tenant)
    report = run_workload(spec)
    profile = build_profile(report.spans or [], metrics=report.metrics,
                            top_k=args.top)
    if not profile.requests:
        print("no request traces recorded (is tracing enabled?)")
        return 1
    print(profile.report(top=args.top))
    if args.folded:
        try:
            with open(args.folded, "w") as fh:
                fh.write(render_folded(profile))
                fh.write("\n")
        except OSError as exc:
            print("cannot write %s: %s" % (args.folded, exc.strerror))
            return 1
        print()
        print("wrote %s (collapsed stacks, flamegraph.pl-compatible)"
              % args.folded)
    ok = not profile.problems and profile.conservation_error <= 0.01
    return 0 if ok else 1


def _cmd_diff(args) -> int:
    import dataclasses

    if args.bench:
        from .bench.report import load_bench_json
        from .obs import diff_bench_payloads

        try:
            payload_a = load_bench_json(args.bench[0])
            payload_b = load_bench_json(args.bench[1])
        except (OSError, ValueError) as exc:
            print("cannot load bench artifact: %s" % exc)
            return 1
        print(diff_bench_payloads(payload_a, payload_b))
        return 0
    if not args.stream or not args.ab:
        print("diff needs either --bench A.json B.json or "
              "--stream PATH with --ab FIELD=VALUE")
        return 2
    from .bench.attribution import attribute_pair
    from .workload import load_stream

    stream = load_stream(args.stream)
    print(stream.describe())
    print()
    spec = _replay_spec(args, stream)
    spec_b = dataclasses.replace(spec, **_spec_overrides(args.ab))
    result = attribute_pair(spec, spec_b, stream=stream,
                            label=" ".join(args.ab))
    print(result.report())
    return 0 if result.ok else 1


def _cmd_capacity(args) -> int:
    from .bench.capacity import (capacity_payload, capacity_sweep,
                                 mitigation_spec_pair,
                                 paired_capacity_sweep)
    from .workload import WorkloadSpec

    attr_pair = None

    loads = [float(x) for x in args.loads.split(",")]
    spec = WorkloadSpec(
        seed=args.seed, transport=args.transport, arrival="open",
        concurrency=args.concurrency, requests=args.requests, keys=args.keys,
        read_fraction=args.read_fraction, key_distribution=args.dist,
        zipf_s=args.zipf_s)
    # Unset mitigation flags mean "off" for a plain sweep but the
    # documented defaults for the --ab B side (an A/B with everything
    # off would compare a run against itself).
    if args.consistency:
        # The replica-correctness experiment (docs/REPLICATION.md):
        # A = eventual + read-spreading, B = quorum + read repair.
        # Implies --ab.
        result = paired_capacity_sweep(
            loads, spec, consistency=True,
            quorum_r=args.quorum_r, quorum_w=args.quorum_w)
        from dataclasses import replace
        spec = replace(spec, consistency="quorum", read_repair=True,
                       staleness=True, quorum_r=args.quorum_r,
                       quorum_w=args.quorum_w)
    elif args.overload:
        # The overload experiment (docs/OVERLOAD.md): both sides model
        # contended node CPUs; only B arms admission + retry +
        # backpressure.  Implies --ab.
        result = paired_capacity_sweep(
            loads, spec, overload=True,
            cpu_slots=args.cpu_slots, cpu_op_us=args.cpu_op_us,
            admit_queue=args.admit_queue,
            admit_deadline_us=args.admit_deadline,
            retry_budget=args.retry_budget,
            retry_base_us=args.retry_base,
            backpressure=not args.no_backpressure,
            slo_latency_us=args.slo_latency)
        # Document the B side in the JSON config block so the artifact
        # is reproducible from its own payload (and the acceptance test
        # can read the SLO threshold out of it).
        from dataclasses import replace
        spec = replace(spec, cpu_slots=args.cpu_slots,
                       cpu_op_us=args.cpu_op_us,
                       slo_latency_us=args.slo_latency,
                       admission=True, admit_queue=args.admit_queue,
                       admit_deadline_us=args.admit_deadline,
                       retry_budget=args.retry_budget,
                       retry_base_us=args.retry_base,
                       backpressure=not args.no_backpressure)
    elif args.ab:
        if args.onesided:
            # Isolate the bypass: unset client-side knobs stay neutral
            # on the B side, so the knee movement is attributable to
            # the one-sided read path alone.
            ab_kwargs = dict(
                pipeline_window=args.pipeline_window or 1,
                batch_keys=args.batch_keys or 1,
                cache_keys=args.cache_keys or 0,
                cache_ttl_us=args.cache_ttl or 0.0,
                read_spread=bool(args.read_spread),
                onesided=True)
        else:
            ab_kwargs = dict(
                pipeline_window=args.pipeline_window or 4,
                batch_keys=args.batch_keys or 4,
                cache_keys=args.cache_keys if args.cache_keys is not None
                else 64,
                cache_ttl_us=args.cache_ttl if args.cache_ttl is not None
                else 2000.0,
                read_spread=True if args.read_spread is None
                else args.read_spread)
        result = paired_capacity_sweep(loads, spec, **ab_kwargs)
        attr_pair = mitigation_spec_pair(spec, **ab_kwargs)
    else:
        from dataclasses import replace
        spec = replace(spec,
                       pipeline_window=args.pipeline_window or 1,
                       batch_keys=args.batch_keys or 1,
                       cache_keys=args.cache_keys or 0,
                       cache_ttl_us=args.cache_ttl or 0.0,
                       read_spread=bool(args.read_spread),
                       onesided_reads=args.onesided)
        result = capacity_sweep(loads, spec)
    print(result.report())
    if attr_pair is not None:
        # Auto-emit the stage attribution for the mitigation A/B: one
        # traced paired run at the most interesting load (the baseline
        # knee if the sweep found one) explains *where* the knee moved.
        base, mitigated = attr_pair
        attr_load = (result.baseline.knee_load
                     or result.mitigated.knee_load or max(loads))
        print()
        if _plain_path(base) and _plain_path(mitigated):
            from dataclasses import replace

            from .bench.attribution import attribute_pair
            attr = attribute_pair(
                replace(base, load=attr_load),
                replace(mitigated, load=attr_load),
                label="capacity --ab at %.0f ops/s" % attr_load)
            print("== stage attribution at %.0f ops/s ==" % attr_load)
            print(attr.report())
        else:
            print(_GROUPED_NOTE)
    if args.json:
        from .bench.report import write_bench_json
        payload = capacity_payload(result, spec, loads)
        try:
            write_bench_json(args.json, payload)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc.strerror))
            return 1
        except ValueError as exc:
            print(exc)
            return 1
        print()
        print("wrote %s" % args.json)
    return 0


def _cmd_antientropy(args) -> int:
    from .sim.faults import Fault, FaultKind, FaultPlan, FaultSite
    from .workload import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        seed=args.seed, arrival="open", load=args.load,
        concurrency=args.concurrency, requests=args.requests,
        keys=args.keys, read_fraction=args.read_fraction,
        staleness=True, antientropy=True,
        antientropy_interval_us=args.interval,
        repl_queue_cap=args.repl_queue_cap)
    plan = None
    if args.crash_node >= 0:
        # One explicit replica-crash fault: the victim's apply loop
        # silently discards incoming replication records for the
        # window, so its shard diverges until anti-entropy repairs it.
        plan = FaultPlan([Fault(time=args.crash_at,
                                site=FaultSite.KV_REPLICA,
                                kind=FaultKind.CRASH,
                                params={"node": args.crash_node,
                                        "duration_us": args.crash_for})])
        print(plan.describe())
        print()
    report = run_workload(spec, fault_plan=plan)
    print(report.report())
    conv = report.convergence or {}
    if args.json:
        payload = {
            "schema": "repro.antientropy.convergence/v1",
            "seed": spec.seed,
            "interval_us": spec.antientropy_interval_us,
            "repl_queue_cap": spec.repl_queue_cap,
            "fault": ({"site": FaultSite.KV_REPLICA,
                       "kind": FaultKind.CRASH,
                       "node": args.crash_node,
                       "time_us": args.crash_at,
                       "duration_us": args.crash_for}
                      if plan is not None else None),
            "staleness": report.staleness,
            "convergence": conv,
            "spec_line": report.spec_line,
        }
        from .bench.report import write_bench_json
        try:
            write_bench_json(args.json, payload)
        except OSError as exc:
            print("cannot write %s: %s" % (args.json, exc.strerror))
            return 1
        except ValueError as exc:
            print(exc)
            return 1
        print()
        print("wrote %s" % args.json)
    # Success means the sweeper drove the divergence back to zero.
    return 0 if conv.get("divergent_last", 1) == 0 and conv.get("rounds") \
        else 1


def _cmd_explain(args) -> int:
    from .obs import assemble_traces, audit, explain_trace, format_tree
    from .workload import WorkloadSpec, run_workload

    spec = WorkloadSpec(
        seed=args.seed, transport=args.transport, arrival="open",
        load=args.load, concurrency=args.concurrency,
        requests=args.requests, keys=args.keys,
        read_fraction=args.read_fraction, trace=True,
        onesided_reads=args.onesided,
        telemetry=not args.no_telemetry,
        slo_latency_us=args.slo_latency,
        slo_latency_budget=args.slo_latency_budget,
        slo_error_budget=args.slo_error_budget)
    report = run_workload(spec)
    spans = report.spans or []
    trees = assemble_traces(spans)
    if not trees:
        print("no request traces recorded (is tracing enabled?)")
        return 1
    problems = audit(spans)
    if args.trace_id is not None:
        tree = trees.get(args.trace_id)
        if tree is None:
            print("trace id %d not found (%d traces recorded: %d..%d)"
                  % (args.trace_id, len(trees), min(trees), max(trees)))
            return 1
    else:
        # Default to the widest tree: most mesh nodes touched, then
        # most spans — a replicated PUT rather than a cache-local GET.
        tree = max(trees.values(),
                   key=lambda t: (len(t.nodes()), len(t.spans), -t.tid))
    result = explain_trace(tree, spans)
    print("assembled %d request traces from %d spans (%d audit problems)"
          % (len(trees), len(spans), len(problems)))
    print()
    print(format_tree(tree))
    print()
    print(result.budget.report())
    print("measured %.2f us  stage sum %.2f us  error %.2f%%"
          % (result.measured_us, result.budget.total,
             100.0 * result.budget_error))
    if problems:
        print()
        print("audit problems:")
        for problem in problems:
            print("  " + problem)
    if report.telemetry_lines:
        print()
        print("\n".join(report.telemetry_lines))
    ok = result.budget_error <= 0.01 and not problems and not tree.problems
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from .apps.kv import KVClient, KVService, ST_MISS, ST_OK
    from .testbed import make_system

    system = make_system()
    service = KVService(system)
    service.preload({"boot/%02d" % i: b"seed-%02d" % i for i in range(8)})
    service.start(srpc_handlers=1, socket_handlers=1)
    lines = []

    def driver(proc):
        client = KVClient(service, proc, transport=args.transport,
                          want_sockets=True)
        yield from client.connect()
        status = yield from client.put("demo/alpha", b"first value")
        lines.append("put demo/alpha -> status %d" % status)
        status, value = yield from client.get("demo/alpha")
        lines.append("get demo/alpha -> status %d value %r"
                     % (status, bytes(value) if value else None))
        status, value = yield from client.get("demo/missing")
        lines.append("get demo/missing -> %s"
                     % ("miss" if status == ST_MISS else "status %d" % status))
        status, records = yield from client.scan("boot/", 4)
        lines.append("scan boot/ limit 4 -> %d records: %s"
                     % (len(records), [k for k, _ in records]))
        status = yield from client.delete("demo/alpha")
        lines.append("delete demo/alpha -> status %d" % status)
        status, _ = yield from client.get("demo/alpha")
        lines.append("get demo/alpha -> %s (deleted)"
                     % ("miss" if status == ST_MISS else "UNEXPECTED HIT"))
        yield from client.shutdown()
        assert status == ST_MISS or status == ST_OK

    handle = system.spawn(0, driver, name="serve-demo")
    system.run_processes([handle], timeout=30_000_000.0)
    service.shutdown()
    system.run_processes(service.handles, timeout=30_000_000.0)

    print("KV service demo: %d nodes, %d replicas, transport %s"
          % (len(service.nodes), service.replicas, args.transport))
    for line in lines:
        print("  " + line)
    print()
    for node_label, counters in service.counters().items():
        print("  %s: %s" % (node_label,
                            " ".join("%s=%d" % kv
                                     for kv in sorted(counters.items()))))
    print()
    print(system.machine.utilization_report(min_count=1))
    return 0


_FIGURES = {
    "fig3": figure3_raw_vmmc,
    "fig4": figure4_nx,
    "fig5": figure5_vrpc,
    "fig7": figure7_sockets,
    "fig8": figure8_rpc_comparison,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the SHRIMP paper's evaluation results.",
    )
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    for name in sorted(_FIGURES) + ["scalars", "ttcp", "budget", "all"]:
        sub.add_parser(name, help="run the %r experiment" % name)
    faults = sub.add_parser(
        "faults",
        help="replay a seeded fault schedule against an NX ping-pong",
    )
    faults.add_argument("--seed", type=int, default=0,
                        help="fault plan seed (same seed => same run)")
    faults.add_argument("--count", type=int, default=8,
                        help="number of faults in the plan")
    faults.add_argument("--horizon", type=float, default=4000.0,
                        help="schedule faults over [0, horizon) microseconds")
    faults.add_argument("--variant", default="AU-1copy",
                        help="NX variant for the driven workload")
    faults.add_argument("--plan-only", action="store_true",
                        help="print the schedule without running a workload")
    trace = sub.add_parser(
        "trace",
        help="trace a Figure 3 one-word transfer and export Chrome JSON",
    )
    trace.add_argument("--mode", choices=["au", "du"], default="au",
                       help="transfer mode: automatic or deliberate update")
    trace.add_argument("--uncached", action="store_true",
                       help="uncached communication memory (the 3.7 us point)")
    trace.add_argument("--out", default="trace.json", metavar="PATH",
                       help="Chrome trace output path ('' to skip writing)")
    trace.add_argument("--check", default=None, metavar="FILE",
                       help="only validate an existing trace JSON file")
    workload = sub.add_parser(
        "workload",
        help="run one deterministic workload against the KV service",
    )
    workload.add_argument("--seed", type=int, default=1,
                          help="workload seed (same seed => same report)")
    workload.add_argument("--transport", choices=["srpc", "sockets"],
                          default="srpc", help="client transport")
    workload.add_argument("--arrival", choices=["open", "closed"],
                          default="open", help="arrival process")
    workload.add_argument("--load", type=float, default=20000.0,
                          help="open-loop offered load (ops/s)")
    workload.add_argument("--concurrency", type=int, default=8,
                          help="worker processes")
    workload.add_argument("--requests", type=int, default=400,
                          help="total requests")
    workload.add_argument("--keys", type=int, default=200,
                          help="keyspace size")
    workload.add_argument("--read-fraction", type=float, default=0.90,
                          help="fraction of requests that are GETs")
    workload.add_argument("--scan-fraction", type=float, default=0.0,
                          help="fraction that are scans (uses sockets)")
    workload.add_argument("--dist", choices=["zipf", "uniform"],
                          default="zipf", help="key popularity")
    workload.add_argument("--zipf-s", type=float, default=1.1,
                          help="Zipf skew exponent (hotter keys as s grows)")
    workload.add_argument("--nodes", type=int, choices=[4, 16], default=4,
                          help="machine size")
    workload.add_argument("--replicas", type=int, default=2,
                          help="replicas per key")
    workload.add_argument("--pipeline-window", type=int, default=1,
                          help="SRPC multi-call window per binding (1 = off)")
    workload.add_argument("--batch-keys", type=int, default=1,
                          help="group GETs into multi_get batches (1 = off)")
    workload.add_argument("--cache-keys", type=int, default=0,
                          help="client LRU cache entries (0 = off)")
    workload.add_argument("--cache-ttl", type=float, default=0.0,
                          help="cache entry lifetime in us (0 = no TTL)")
    workload.add_argument("--read-spread", action="store_true",
                          help="rotate reads over the replica set")
    workload.add_argument("--onesided", action="store_true",
                          help="one-sided bypass GETs from exported shard "
                               "regions (docs/ONESIDED.md)")
    workload.add_argument("--cpu-slots", type=int, default=0,
                          help="per-node CPU scheduler slots (0 = off)")
    workload.add_argument("--cpu-op-us", type=float, default=10.0,
                          help="handler CPU charge per op once --cpu-slots "
                               "is set")
    workload.add_argument("--admission", action="store_true",
                          help="server-side admission control "
                               "(docs/OVERLOAD.md)")
    workload.add_argument("--admit-queue", type=int, default=32,
                          help="bounded accept-queue occupancy per node")
    workload.add_argument("--admit-deadline", type=float, default=0.0,
                          help="queueing-delay budget in us (0 = none)")
    workload.add_argument("--retry-budget", type=int, default=0,
                          help="client retries after a rejection")
    workload.add_argument("--retry-base", type=float, default=100.0,
                          help="backoff base in us (doubles per attempt)")
    workload.add_argument("--retry-jitter", type=float, default=0.5,
                          help="jitter fraction on each backoff")
    workload.add_argument("--backpressure", action="store_true",
                          help="adaptive open-loop rate trimming on "
                               "rejections")
    workload.add_argument("--slo-latency", type=float, default=0.0,
                          help="goodput threshold in us (0 = off)")
    workload.add_argument("--consistency",
                          choices=["eventual", "session", "quorum"],
                          default="eventual",
                          help="client consistency mode "
                               "(docs/REPLICATION.md)")
    workload.add_argument("--quorum-r", type=int, default=0,
                          help="read quorum size (0 = majority)")
    workload.add_argument("--quorum-w", type=int, default=0,
                          help="write quorum size (0 = majority)")
    workload.add_argument("--read-repair", action="store_true",
                          help="repair stale replicas off the request path")
    workload.add_argument("--staleness", action="store_true",
                          help="score every GET against the newest "
                               "acknowledged write")
    workload.add_argument("--antientropy", action="store_true",
                          help="run the background Merkle anti-entropy "
                               "sweeper")
    workload.add_argument("--antientropy-interval", type=float,
                          default=2000.0,
                          help="gap between anti-entropy sweeps (us)")
    workload.add_argument("--repl-queue-cap", type=int, default=0,
                          help="bound the replication queues (0 = "
                               "unbounded; full queues drop and count)")
    workload.add_argument("--fault-seed", type=int, default=None,
                          help="arm a seeded fault plan")
    workload.add_argument("--fault-count", type=int, default=8,
                          help="faults in the armed plan")
    workload.add_argument("--fault-horizon", type=float, default=4000.0,
                          help="fault schedule horizon (us)")
    record = sub.add_parser(
        "record",
        help="freeze a workload's request stream into a JSON artifact",
    )
    record.add_argument("--out", default="stream.json", metavar="PATH",
                        help="stream artifact output path")
    record.add_argument("--seed", type=int, default=1,
                        help="sampler seed (same seed => same stream)")
    record.add_argument("--arrival", choices=["open", "closed"],
                        default="open", help="arrival process to freeze")
    record.add_argument("--load", type=float, default=20000.0,
                        help="open-loop offered load (ops/s)")
    record.add_argument("--concurrency", type=int, default=8,
                        help="worker processes the stream is shaped for")
    record.add_argument("--requests", type=int, default=400,
                        help="total requests")
    record.add_argument("--keys", type=int, default=200,
                        help="keyspace size")
    record.add_argument("--read-fraction", type=float, default=0.90,
                        help="fraction of requests that are GETs")
    record.add_argument("--scan-fraction", type=float, default=0.0,
                        help="fraction that are scans")
    record.add_argument("--dist", choices=["zipf", "uniform"],
                        default="zipf", help="key popularity")
    record.add_argument("--zipf-s", type=float, default=1.1,
                        help="Zipf skew exponent")
    record.add_argument("--scenario", action="append",
                        choices=["flash_crowd", "diurnal", "skew_shift"],
                        help="shape the stream (repeatable, applied in "
                             "order; see docs/WORKLOADS.md)")
    record.add_argument("--flash-at", type=float, default=5000.0,
                        help="flash crowd: surge start (us)")
    record.add_argument("--flash-duration", type=float, default=3000.0,
                        help="flash crowd: surge length (us)")
    record.add_argument("--flash-factor", type=float, default=4.0,
                        help="flash crowd: arrival-rate multiplier")
    record.add_argument("--diurnal-period", type=float, default=10000.0,
                        help="diurnal: sinusoid period (us)")
    record.add_argument("--diurnal-amplitude", type=float, default=0.6,
                        help="diurnal: load swing fraction in [0, 1)")
    record.add_argument("--shift-at", type=int, default=200,
                        help="skew shift: request index of the hot-set cut")
    record.add_argument("--shift-dist", choices=["zipf", "uniform"],
                        default="zipf",
                        help="skew shift: post-cut key distribution")
    record.add_argument("--shift-zipf-s", type=float, default=1.1,
                        help="skew shift: post-cut Zipf exponent")
    replay = sub.add_parser(
        "replay",
        help="replay a recorded stream verbatim (optionally as a "
             "paired A/B)",
    )
    replay.add_argument("--stream", required=True, metavar="PATH",
                        help="stream artifact from 'record'")
    replay.add_argument("--set", action="append", metavar="FIELD=VALUE",
                        help="override a WorkloadSpec field for the run "
                             "(repeatable), e.g. --set transport=sockets")
    replay.add_argument("--ab", action="append", metavar="FIELD=VALUE",
                        help="run twice on the same stream: baseline vs "
                             "these overrides (repeatable)")
    capacity = sub.add_parser(
        "capacity",
        help="sweep offered load vs tail latency and find the knee",
    )
    capacity.add_argument("--seed", type=int, default=1,
                          help="workload seed for every point")
    capacity.add_argument("--transport", choices=["srpc", "sockets"],
                          default="srpc", help="client transport")
    capacity.add_argument("--loads",
                          default="10000,20000,40000,80000,160000,320000",
                          help="comma-separated offered loads (ops/s)")
    capacity.add_argument("--concurrency", type=int, default=8,
                          help="worker processes per point")
    capacity.add_argument("--requests", type=int, default=300,
                          help="requests per point")
    capacity.add_argument("--keys", type=int, default=200,
                          help="keyspace size")
    capacity.add_argument("--read-fraction", type=float, default=0.90,
                          help="fraction of requests that are GETs")
    capacity.add_argument("--dist", choices=["zipf", "uniform"],
                          default="zipf", help="key popularity")
    capacity.add_argument("--zipf-s", type=float, default=1.1,
                          help="Zipf skew exponent (hotter keys as s grows)")
    capacity.add_argument("--ab", action="store_true",
                          help="paired A/B sweep: mitigations off, then on")
    capacity.add_argument("--pipeline-window", type=int, default=None,
                          help="SRPC multi-call window (B side of --ab)")
    capacity.add_argument("--batch-keys", type=int, default=None,
                          help="multi_get batch size (B side of --ab)")
    capacity.add_argument("--cache-keys", type=int, default=None,
                          help="client LRU cache entries (B side of --ab)")
    capacity.add_argument("--cache-ttl", type=float, default=None,
                          help="cache entry lifetime in us (B side of --ab)")
    capacity.add_argument("--read-spread", action="store_const", const=True,
                          default=None,
                          help="rotate reads over replicas (B side of --ab)")
    capacity.add_argument("--onesided", action="store_true",
                          help="one-sided bypass GETs; as the B side of "
                               "--ab the client-side mitigations default "
                               "to off so the bypass is isolated")
    capacity.add_argument("--overload", action="store_true",
                          help="overload-control A/B (docs/OVERLOAD.md): "
                               "both sides model contended CPUs, only B "
                               "arms admission + retry + backpressure")
    capacity.add_argument("--cpu-slots", type=int, default=1,
                          help="per-node CPU slots (--overload both sides)")
    capacity.add_argument("--cpu-op-us", type=float, default=50.0,
                          help="handler CPU per op (--overload both sides)")
    capacity.add_argument("--admit-queue", type=int, default=8,
                          help="accept-queue bound (--overload B side)")
    capacity.add_argument("--admit-deadline", type=float, default=400.0,
                          help="queueing deadline us (--overload B side)")
    capacity.add_argument("--retry-budget", type=int, default=1,
                          help="client retry budget (--overload B side)")
    capacity.add_argument("--retry-base", type=float, default=50.0,
                          help="backoff base us (--overload B side)")
    capacity.add_argument("--consistency", action="store_true",
                          help="consistency A/B (docs/REPLICATION.md): A "
                               "spreads reads under eventual consistency, "
                               "B runs quorum reads/writes + read repair "
                               "and must serve zero stale reads")
    capacity.add_argument("--quorum-r", type=int, default=0,
                          help="read quorum size (--consistency B side; "
                               "0 = majority)")
    capacity.add_argument("--quorum-w", type=int, default=0,
                          help="write quorum size (--consistency B side; "
                               "0 = majority)")
    capacity.add_argument("--no-backpressure", action="store_true",
                          help="disable the B side's rate trimming "
                               "(--overload)")
    capacity.add_argument("--slo-latency", type=float, default=1000.0,
                          help="goodput threshold us (--overload)")
    capacity.add_argument("--json", default=None, metavar="PATH",
                          help="also write the machine-readable sweep "
                               "(knee, p50/p95/p99 per point, config, seed)")
    antientropy = sub.add_parser(
        "antientropy",
        help="provoke replica divergence and watch anti-entropy heal it",
    )
    antientropy.add_argument("--seed", type=int, default=1,
                             help="workload seed (same seed => same run)")
    antientropy.add_argument("--load", type=float, default=40000.0,
                             help="open-loop offered load (ops/s)")
    antientropy.add_argument("--concurrency", type=int, default=4,
                             help="worker processes")
    antientropy.add_argument("--requests", type=int, default=300,
                             help="total requests")
    antientropy.add_argument("--keys", type=int, default=80,
                             help="keyspace size")
    antientropy.add_argument("--read-fraction", type=float, default=0.60,
                             help="GET fraction (writes create divergence "
                                  "when replication drops)")
    antientropy.add_argument("--interval", type=float, default=1500.0,
                             help="gap between anti-entropy sweeps (us)")
    antientropy.add_argument("--repl-queue-cap", type=int, default=2,
                             help="replication queue bound; full queues "
                                  "drop records (0 = unbounded, no loss)")
    antientropy.add_argument("--crash-node", type=int, default=1,
                             help="replica whose apply loop crashes "
                                  "(-1 = no crash fault)")
    antientropy.add_argument("--crash-at", type=float, default=1500.0,
                             help="crash time (us)")
    antientropy.add_argument("--crash-for", type=float, default=4000.0,
                             help="crash window: incoming replication "
                                  "records are discarded this long (us)")
    antientropy.add_argument("--json", default=None, metavar="PATH",
                             help="also write the machine-readable "
                                  "convergence record (divergent-keys "
                                  "series, rounds, repairs)")
    explain = sub.add_parser(
        "explain",
        help="run a traced workload and explain one request's causal tree",
    )
    explain.add_argument("--seed", type=int, default=1,
                         help="workload seed (same seed => same trees)")
    explain.add_argument("--transport", choices=["srpc", "sockets"],
                         default="srpc", help="client transport")
    explain.add_argument("--load", type=float, default=20000.0,
                         help="open-loop offered load (ops/s)")
    explain.add_argument("--concurrency", type=int, default=4,
                         help="worker processes")
    explain.add_argument("--requests", type=int, default=80,
                         help="total requests in the traced run")
    explain.add_argument("--keys", type=int, default=64,
                         help="keyspace size")
    explain.add_argument("--read-fraction", type=float, default=0.70,
                         help="GET fraction (writes replicate cross-node)")
    explain.add_argument("--trace-id", type=int, default=None,
                         help="explain this trace id (default: the tree "
                              "touching the most mesh nodes)")
    explain.add_argument("--onesided", action="store_true",
                         help="trace with one-sided bypass GETs enabled")
    explain.add_argument("--no-telemetry", action="store_true",
                         help="skip the time-series sampler and SLO report")
    explain.add_argument("--slo-latency", type=float, default=400.0,
                         help="per-request slow threshold (us)")
    explain.add_argument("--slo-latency-budget", type=float, default=0.1,
                         help="allowed slow-request fraction")
    explain.add_argument("--slo-error-budget", type=float, default=0.01,
                         help="allowed error fraction")
    profile = sub.add_parser(
        "profile",
        help="fold a traced workload into a fleet-wide flame profile",
    )
    profile.add_argument("--seed", type=int, default=1,
                         help="workload seed (same seed => same profile)")
    profile.add_argument("--transport", choices=["srpc", "sockets"],
                         default="srpc", help="client transport")
    profile.add_argument("--load", type=float, default=20000.0,
                         help="open-loop offered load (ops/s)")
    profile.add_argument("--concurrency", type=int, default=4,
                         help="worker processes")
    profile.add_argument("--requests", type=int, default=120,
                         help="total requests in the traced run")
    profile.add_argument("--keys", type=int, default=64,
                         help="keyspace size")
    profile.add_argument("--read-fraction", type=float, default=0.70,
                         help="GET fraction (writes replicate cross-node)")
    profile.add_argument("--tenant", default="",
                         help="tag every request for per-tenant grouping")
    profile.add_argument("--onesided", action="store_true",
                         help="profile with one-sided bypass GETs enabled")
    profile.add_argument("--folded", default=None, metavar="PATH",
                         help="also write collapsed stacks "
                              "(flamegraph.pl-compatible)")
    profile.add_argument("--top", type=int, default=3,
                         help="hot spans listed per stage")
    diff = sub.add_parser(
        "diff",
        help="attribute an A/B latency delta to stages, or diff two "
             "bench artifacts",
    )
    diff.add_argument("--stream", default=None, metavar="PATH",
                      help="stream artifact from 'record' (both sides "
                           "replay it, op for op)")
    diff.add_argument("--set", action="append", metavar="FIELD=VALUE",
                      help="override a WorkloadSpec field on BOTH sides "
                           "(repeatable)")
    diff.add_argument("--ab", action="append", metavar="FIELD=VALUE",
                      help="the B side's overrides (repeatable); A is "
                           "the stream's baseline spec")
    diff.add_argument("--bench", nargs=2, default=None,
                      metavar=("A.json", "B.json"),
                      help="diff two bench artifacts (any BENCH_*.json "
                           "schema) instead of replaying a stream")
    serve = sub.add_parser(
        "serve",
        help="boot the sharded KV service and run a scripted demo client",
    )
    serve.add_argument("--transport", choices=["srpc", "sockets"],
                       default="srpc", help="transport for point ops")
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)

    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "workload":
        return _cmd_workload(args)
    if args.command == "record":
        return _cmd_record(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "capacity":
        return _cmd_capacity(args)
    if args.command == "antientropy":
        return _cmd_antientropy(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "diff":
        return _cmd_diff(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command in _FIGURES:
        print(_FIGURES[args.command]().report())
    elif args.command == "scalars":
        _cmd_scalars()
    elif args.command == "ttcp":
        _cmd_ttcp()
    elif args.command == "budget":
        _cmd_budget()
    else:  # all
        _cmd_budget()
        print()
        _cmd_scalars()
        print()
        for name in sorted(_FIGURES):
            print(_FIGURES[name]().report())
            print()
        _cmd_ttcp()
    return 0


if __name__ == "__main__":
    sys.exit(main())
