"""Run an exactly-paired A/B traced and attribute the delta to stages.

The one-call harness behind ``python -m repro diff`` and the
attribution tables ``capacity --ab`` / ``replay --ab`` auto-emit:
run both sides of a pair with tracing on (same recorded stream when
given, same seed always — so the offered traffic is op-for-op
identical), fold each side with :func:`repro.obs.profile.build_profile`,
and difference them with :func:`repro.obs.diff.diff_profiles`.

Closure is scored against the *measured* end-to-end delta (the two
workload reports' histogram means), the run-level analogue of
``explain``'s 1% budget gate: the acceptance bar is 5%
(docs/OBSERVABILITY.md, "Profiles & diffs").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from ..obs.diff import DiffResult, diff_profiles
from ..obs.profile import Profile, build_profile

__all__ = ["AttributionResult", "attribute_pair"]


@dataclass
class AttributionResult:
    """Both traced runs, their profiles, and the stage-attributed diff."""

    diff: DiffResult
    profile_a: Profile
    profile_b: Profile
    report_a: object   # WorkloadReport
    report_b: object
    label: str = ""

    @property
    def ok(self) -> bool:
        """Whether the attribution closed within the 5% gate (and the
        causal-tree audit stayed clean on both sides)."""
        return (self.diff.closure_error <= 0.05
                and not self.profile_a.problems
                and not self.profile_b.problems)

    def report(self) -> str:
        """The attribution table plus per-side context lines."""
        lines = ["attribution pair: A %d requests, B %d requests "
                 "(same offered traffic, request for request)"
                 % (self.diff.a_requests, self.diff.b_requests)]
        lines.append("  A: %s" % self.report_a.spec_line)
        lines.append("  B: %s" % self.report_b.spec_line)
        lines.append("")
        lines.append(self.diff.report())
        problems = self.profile_a.problems + self.profile_b.problems
        if problems:
            lines.append("")
            lines.append("audit problems:")
            lines.extend("  " + p for p in problems)
        return "\n".join(lines)


def attribute_pair(spec_a, spec_b, stream=None,
                   label: str = "") -> AttributionResult:
    """Trace both sides of a pair and attribute the latency delta.

    ``spec_a``/``spec_b`` are the two :class:`WorkloadSpec`\\ s (trace
    is forced on for both); ``stream`` replays a recorded request
    sequence on both sides (docs/WORKLOADS.md) — without one the
    shared seed still makes the open-loop offered traffic identical,
    which is how ``capacity --ab`` pairs its sweeps.
    """
    # Imported here, not at module scope: the engine renders tables
    # via repro.bench.report, so a module-level import would close an
    # import cycle (same pattern as capacity_sweep).
    from ..workload.engine import run_workload

    report_a = run_workload(replace(spec_a, trace=True), stream=stream)
    report_b = run_workload(replace(spec_b, trace=True), stream=stream)
    profile_a = build_profile(report_a.spans or [],
                              metrics=report_a.metrics)
    profile_b = build_profile(report_b.spans or [],
                              metrics=report_b.metrics)

    def _mean(report) -> Optional[float]:
        return report.overall.mean if report.overall.count else None

    def _p99(report) -> Optional[float]:
        return (report.percentile(99.0) if report.overall.count
                else None)

    diff = diff_profiles(profile_a, profile_b,
                         measured_a=_mean(report_a),
                         measured_b=_mean(report_b),
                         p99_a=_p99(report_a), p99_b=_p99(report_b),
                         label=label)
    return AttributionResult(diff=diff, profile_a=profile_a,
                             profile_b=profile_b, report_a=report_a,
                             report_b=report_b, label=label)
