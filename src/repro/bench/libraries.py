"""Measurement drivers for the four communication libraries.

Each function boots a fresh prototype system, runs the paper's
methodology (ping-pong round trips, or a one-way pump), and returns the
averaged one-way latency in microseconds.  These are the building
blocks the figure harnesses (:mod:`repro.bench.figures`) sweep.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hardware.config import MachineConfig
from ..libs.nx import NXVariant, VARIANTS as NX_VARIANTS, nx_world
from ..libs.rpc import VrpcServer, clnt_create
from ..libs.rpc.xdr import XdrDecoder, XdrEncoder
from ..libs.shrimp_rpc import compile_stubs
from ..libs.sockets import SOCKET_VARIANTS, SocketLib
from ..testbed import make_system

__all__ = [
    "nx_pingpong",
    "socket_pingpong",
    "socket_oneway",
    "vrpc_pingpong",
    "srpc_inout_rtt",
]

PAGE = 4096
_FIG8_IDL = "program Fig8 version 1 {\nvoid touch(inout opaque<1000> buf);\n}"


def nx_pingpong(variant_name: str, size: int, iterations: int = 10,
                warmup: int = 2, config: Optional[MachineConfig] = None,
                **world_kwargs) -> float:
    """NX csend/crecv ping-pong (Figure 4); returns one-way latency."""
    system = make_system(config)
    timing: Dict[str, float] = {}
    buf_pages = max(4, -(-size // PAGE) + 1)

    def make(initiator: bool):
        def program(nx):
            src = nx.proc.space.mmap(buf_pages * PAGE)
            dst = nx.proc.space.mmap(buf_pages * PAGE)
            nx.proc.poke(src, bytes((i * 17) % 256 for i in range(size)))
            peer = 1 if initiator else 0
            for i in range(warmup + iterations):
                if i == warmup and initiator:
                    timing["start"] = nx.proc.sim.now
                if initiator:
                    yield from nx.csend(1, src, size, to=peer)
                    yield from nx.crecv(1, dst, buf_pages * PAGE)
                else:
                    yield from nx.crecv(1, dst, buf_pages * PAGE)
                    yield from nx.csend(1, src, size, to=peer)
            if initiator:
                timing["end"] = nx.proc.sim.now

        return program

    handles = nx_world(system, [make(True), make(False)],
                       variant=NX_VARIANTS[variant_name], **world_kwargs)
    system.run_processes(handles)
    return (timing["end"] - timing["start"]) / (2 * iterations)


def socket_pingpong(variant_name: str, size: int, iterations: int = 10,
                    warmup: int = 2, ring_bytes: int = 8192,
                    config: Optional[MachineConfig] = None) -> float:
    """Socket send/recv ping-pong (Figure 7); returns one-way latency."""
    system = make_system(config)
    timing: Dict[str, float] = {}
    variant = SOCKET_VARIANTS[variant_name]

    def server(proc):
        lib = SocketLib(system, proc, variant=variant, ring_bytes=ring_bytes)
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(max(size, PAGE))
        for _ in range(warmup + iterations):
            yield from sock.recv_exactly(buf, size)
            yield from sock.send(buf, size)

    def client(proc):
        lib = SocketLib(system, proc, variant=variant, ring_bytes=ring_bytes)
        sock = yield from lib.connect(1, 5)
        src = proc.space.mmap(max(size, PAGE))
        dst = proc.space.mmap(max(size, PAGE))
        proc.poke(src, bytes((i * 7) % 256 for i in range(size)))
        for i in range(warmup + iterations):
            if i == warmup:
                timing["start"] = proc.sim.now
            yield from sock.send(src, size)
            yield from sock.recv_exactly(dst, size)
        timing["end"] = proc.sim.now

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return (timing["end"] - timing["start"]) / (2 * iterations)


def socket_oneway(variant_name: str, size: int, count: int = 40,
                  ring_bytes: int = 8192, per_write_overhead: float = 0.0,
                  config: Optional[MachineConfig] = None) -> float:
    """One-way socket pump (the ttcp methodology); returns MB/s.

    ``per_write_overhead`` models benchmark-side bookkeeping per write
    call (ttcp's buffer management), which is what separates ttcp's
    8.6 MB/s from the bare microbenchmark's 9.8 MB/s in the paper.
    """
    system = make_system(config)
    timing: Dict[str, float] = {}
    variant = SOCKET_VARIANTS[variant_name]

    def sink(proc):
        lib = SocketLib(system, proc, variant=variant, ring_bytes=ring_bytes)
        sock = yield from lib.listen(5).accept()
        buf = proc.space.mmap(max(size, PAGE))
        total = 0
        while True:
            got = yield from sock.recv(buf, max(size, PAGE))
            if got == 0:
                break
            total += got
        timing["end"] = proc.sim.now
        return total

    def pump(proc):
        lib = SocketLib(system, proc, variant=variant, ring_bytes=ring_bytes)
        sock = yield from lib.connect(1, 5)
        src = proc.space.mmap(max(size, PAGE))
        timing["start"] = proc.sim.now
        for _ in range(count):
            if per_write_overhead:
                yield from proc.compute(per_write_overhead)
            yield from sock.send(src, size)
        yield from sock.close()

    s = system.spawn(1, sink)
    c = system.spawn(0, pump)
    system.run_processes([s, c])
    return size * count / (timing["end"] - timing["start"])


_VRPC_PROG, _VRPC_VERS = 0x20000F16, 1


def vrpc_pingpong(size: int, automatic: bool = True, iterations: int = 8,
                  warmup: int = 2, config: Optional[MachineConfig] = None) -> float:
    """VRPC call with ``size``-byte argument and result (Figure 5);
    returns *round-trip* latency (the paper plots RPC round trips)."""
    system = make_system(config)
    timing: Dict[str, float] = {}
    payload = bytes((i * 11) % 256 for i in range(size))

    encode = lambda enc, v: enc.pack_opaque(v)
    decode = lambda dec: dec.unpack_opaque()

    def server(proc):
        srv = VrpcServer(system, proc, _VRPC_PROG, _VRPC_VERS, automatic=automatic)
        srv.register(1, lambda data: data, decode_args=decode, encode_result=encode)
        yield from srv.accept_binding()
        yield from srv.svc_run(max_calls=warmup + iterations)

    def client(proc):
        handle = yield from clnt_create(system, proc, 1, _VRPC_PROG, _VRPC_VERS,
                                        automatic=automatic)
        for i in range(warmup + iterations):
            if i == warmup:
                timing["start"] = proc.sim.now
            result = yield from handle.call(1, payload, encode, decode)
            assert result == payload
        timing["end"] = proc.sim.now

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return (timing["end"] - timing["start"]) / iterations


def srpc_inout_rtt(size: int, iterations: int = 8, warmup: int = 2,
                   config: Optional[MachineConfig] = None) -> float:
    """Specialized SHRIMP RPC: null call with one INOUT argument of
    ``size`` bytes (Figure 8); returns round-trip latency."""
    if size > 1000:
        raise ValueError("Figure 8 sweeps 0..1000 bytes")
    system = make_system(config)
    client_cls, server_cls, _ = compile_stubs(_FIG8_IDL)
    timing: Dict[str, float] = {}

    class NullImpl:
        def touch(self, buf):
            return None
            yield  # pragma: no cover

    def server(proc):
        srv = server_cls(system, proc, NullImpl())
        yield from srv.serve_binding(port=8)
        yield from srv.run(max_calls=warmup + iterations)

    def client(proc):
        handle = client_cls(system, proc)
        yield from handle.bind(1, port=8)
        payload = bytes(size)
        for i in range(warmup + iterations):
            if i == warmup:
                timing["start"] = proc.sim.now
            yield from handle.touch(payload)
        timing["end"] = proc.sim.now

    s = system.spawn(1, server)
    c = system.spawn(0, client)
    system.run_processes([s, c])
    return (timing["end"] - timing["start"]) / iterations
