"""One harness per figure of the paper's evaluation (DESIGN.md section 4).

Each ``figure_*`` function regenerates the corresponding figure's
series and returns a :class:`~repro.bench.report.FigureResult` whose
``report()`` prints the rows the paper plots.  Absolute values come
from the calibrated simulator; shape expectations (who wins, where the
crossovers are) are asserted by ``benchmarks/``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..hardware.config import CacheMode, MachineConfig
from .libraries import (
    nx_pingpong,
    socket_oneway,
    socket_pingpong,
    srpc_inout_rtt,
    vrpc_pingpong,
)
from .pingpong import STRATEGIES, one_word_latency, vmmc_pingpong
from .report import FigureResult, FigureSeries

__all__ = [
    "LATENCY_SIZES",
    "BANDWIDTH_SIZES",
    "figure3_raw_vmmc",
    "figure4_nx",
    "figure5_vrpc",
    "figure7_sockets",
    "figure8_rpc_comparison",
    "ttcp_results",
    "headline_scalars",
]

# The paper's x-axes: latency up to 64 B, bandwidth up to 10 KB.
LATENCY_SIZES = (4, 8, 16, 32, 48, 64)
BANDWIDTH_SIZES = (256, 1024, 2048, 4096, 7168, 10240)


def _sweep(series: FigureSeries, sizes: Sequence[int], measure) -> FigureSeries:
    for size in sizes:
        series.add(size, measure(size))
    return series


def figure3_raw_vmmc(sizes: Optional[Sequence[int]] = None,
                     iterations: int = 8) -> FigureResult:
    """Figure 3: latency and bandwidth of the raw VMMC layer."""
    sizes = tuple(sizes or (LATENCY_SIZES + BANDWIDTH_SIZES))
    result = FigureResult(
        "Figure 3",
        "Latency and bandwidth delivered by the SHRIMP VMMC layer",
    )
    for name in ("AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy"):
        strategy = STRATEGIES[name]
        series = FigureSeries(name)
        for size in sizes:
            measured = vmmc_pingpong(strategy, size, iterations=iterations)
            series.add(size, measured.one_way_latency_us)
        result.series.append(series)
    result.notes.append(
        "one-word AU latency: %.2f us write-through / %.2f us uncached "
        "(paper: 4.75 / 3.7); one-word DU: %.2f us (paper: 7.6)"
        % (
            one_word_latency(True, CacheMode.WRITE_THROUGH),
            one_word_latency(True, CacheMode.UNCACHED),
            one_word_latency(False, CacheMode.WRITE_THROUGH),
        )
    )
    return result


def figure4_nx(sizes: Optional[Sequence[int]] = None,
               iterations: int = 8) -> FigureResult:
    """Figure 4: NX latency and bandwidth, five variants.

    The protocol-switch 'bump' sits at the packet-buffer payload size
    (2048 B): above it every variant runs the zero-copy scout protocol.
    """
    sizes = tuple(sizes or (LATENCY_SIZES + BANDWIDTH_SIZES + (2052,)))
    result = FigureResult("Figure 4", "NX latency and bandwidth")
    for name in ("AU-1copy", "AU-2copy", "DU-0copy", "DU-1copy", "DU-2copy"):
        series = _sweep(
            FigureSeries(name), sorted(sizes),
            lambda size, name=name: nx_pingpong(name, size, iterations=iterations),
        )
        result.series.append(series)
    return result


def figure5_vrpc(sizes: Optional[Sequence[int]] = None,
                 iterations: int = 6) -> FigureResult:
    """Figure 5: VRPC round-trip latency / bandwidth vs arg+result size.

    The paper plots round-trip time (an RPC is inherently a round trip);
    bandwidth counts the argument bytes one way, as the paper does.
    """
    sizes = tuple(sizes or ((4, 16, 64) + BANDWIDTH_SIZES))
    result = FigureResult("Figure 5", "VRPC latency and bandwidth")
    for name, automatic in (("DU-1copy", False), ("AU-1copy", True)):
        series = _sweep(
            FigureSeries(name), sorted(sizes),
            lambda size, automatic=automatic: vrpc_pingpong(
                size, automatic=automatic, iterations=iterations
            ),
        )
        result.series.append(series)
    result.notes.append("latencies are round-trip times (RPC semantics)")
    return result


def figure7_sockets(sizes: Optional[Sequence[int]] = None,
                    iterations: int = 8) -> FigureResult:
    """Figure 7: stream-socket latency and bandwidth, three variants."""
    sizes = tuple(sizes or (LATENCY_SIZES + BANDWIDTH_SIZES))
    result = FigureResult("Figure 7", "Socket latency and bandwidth")
    for name in ("AU-2copy", "DU-1copy", "DU-2copy"):
        series = _sweep(
            FigureSeries(name), sorted(sizes),
            lambda size, name=name: socket_pingpong(name, size, iterations=iterations),
        )
        result.series.append(series)
    return result


def figure8_rpc_comparison(sizes: Optional[Sequence[int]] = None,
                           iterations: int = 6) -> FigureResult:
    """Figure 8: compatible (VRPC) vs non-compatible (SHRIMP RPC)
    round-trip time for a null call with one INOUT argument."""
    sizes = tuple(sizes or (0, 4, 100, 200, 400, 600, 800, 1000))
    result = FigureResult(
        "Figure 8",
        "Round-trip time for null RPC with a single INOUT argument",
    )
    compatible = FigureSeries("compatible")
    non_compatible = FigureSeries("non-compatible")
    for size in sizes:
        compatible.add(max(size, 1), vrpc_pingpong(size, automatic=True,
                                                   iterations=iterations))
        non_compatible.add(max(size, 1), srpc_inout_rtt(size, iterations=iterations))
    result.series.extend([compatible, non_compatible])
    result.notes.append(
        "size 0 is recorded as 1 so bandwidth math stays defined; the"
        " latency value is the true null-argument round trip"
    )
    result.notes.append(
        "non-compatible OUT/INOUT args the server never writes cost"
        " nothing on the return path (implicit AU return)"
    )
    return result


def ttcp_results() -> Dict[str, float]:
    """Section 4.3's ttcp paragraph: one-way socket bandwidth.

    Returns MB/s for: ttcp at 7 KB, the bare microbenchmark at 7 KB,
    and ttcp at 70 B (the paper: 8.6, 9.8, and 1.3 — 'higher than
    Ethernet's peak bandwidth').
    """
    # ttcp does malloc'd-buffer bookkeeping around every write; the bare
    # microbenchmark does not — that's the 8.6 vs 9.8 gap.
    ttcp_overhead = 32.0
    return {
        "ttcp_7k_mb_s": socket_oneway("DU-1copy", 7168,
                                      per_write_overhead=ttcp_overhead),
        "micro_7k_mb_s": socket_oneway("DU-1copy", 7168),
        "ttcp_70b_mb_s": socket_oneway("DU-1copy", 70, count=100,
                                       per_write_overhead=ttcp_overhead),
        "ethernet_peak_mb_s": 1.25,
    }


def headline_scalars() -> Dict[str, float]:
    """Every scalar the paper's text reports, measured."""
    return {
        "au_word_wt_us": one_word_latency(True, CacheMode.WRITE_THROUGH),
        "au_word_uncached_us": one_word_latency(True, CacheMode.UNCACHED),
        "du_word_us": one_word_latency(False, CacheMode.WRITE_THROUGH),
        "du_0copy_peak_mb_s": vmmc_pingpong(
            STRATEGIES["DU-0copy"], 10240, iterations=5
        ).bandwidth_mb_s,
        "nx_small_au_us": nx_pingpong("AU-1copy", 8, iterations=8),
        "raw_small_au_us": vmmc_pingpong(
            STRATEGIES["AU-1copy"], 8, iterations=8
        ).one_way_latency_us,
        "socket_small_au_us": socket_pingpong("AU-2copy", 4, iterations=8),
        "vrpc_null_rtt_us": vrpc_pingpong(0, automatic=True),
        "srpc_null_inout_rtt_us": srpc_inout_rtt(0),
    }
