"""Benchmark harness (system S19 in DESIGN.md): the ping-pong engine,
per-library drivers, and one harness per figure of the evaluation."""

from .capacity import (
    CapacityPoint,
    CapacityResult,
    PairedCapacityResult,
    capacity_payload,
    capacity_sweep,
    find_knee,
    paired_capacity_sweep,
)
from .figures import (
    BANDWIDTH_SIZES,
    LATENCY_SIZES,
    figure3_raw_vmmc,
    figure4_nx,
    figure5_vrpc,
    figure7_sockets,
    figure8_rpc_comparison,
    headline_scalars,
    ttcp_results,
)
from .libraries import (
    nx_pingpong,
    socket_oneway,
    socket_pingpong,
    srpc_inout_rtt,
    vrpc_pingpong,
)
from .pingpong import (
    PingPongResult,
    STRATEGIES,
    Strategy,
    one_word_latency,
    vmmc_pingpong,
)
from .report import FigureResult, FigureSeries, SeriesPoint, format_table

__all__ = [
    "BANDWIDTH_SIZES",
    "CapacityPoint",
    "CapacityResult",
    "FigureResult",
    "FigureSeries",
    "LATENCY_SIZES",
    "PairedCapacityResult",
    "PingPongResult",
    "STRATEGIES",
    "SeriesPoint",
    "Strategy",
    "capacity_payload",
    "capacity_sweep",
    "paired_capacity_sweep",
    "figure3_raw_vmmc",
    "figure4_nx",
    "figure5_vrpc",
    "figure7_sockets",
    "figure8_rpc_comparison",
    "find_knee",
    "format_table",
    "headline_scalars",
    "nx_pingpong",
    "one_word_latency",
    "socket_oneway",
    "socket_pingpong",
    "srpc_inout_rtt",
    "ttcp_results",
    "vmmc_pingpong",
]
