"""Ping-pong microbenchmarks over raw VMMC (Figure 3's methodology).

'We had two processes on two different nodes repeatedly ping-pong a
series of equally-sized messages back and forth, and measured the
roundtrip latency and bandwidth.'

Four transfer strategies, as in the paper:

* ``AU-1copy`` — sender copies user data into an AU-bound region (the
  copy *is* the send); receiver consumes in place.
* ``AU-2copy`` — AU-1copy plus a receiver-side copy to user memory.
* ``DU-0copy`` — deliberate update straight from the sender's user
  buffer into the receiver's (exported) user buffer; no copies.
* ``DU-1copy`` — deliberate update into a receive buffer; receiver
  copies out to user memory.
* ``DU-2copy`` — sender copies into a staging buffer first (the
  alignment-safe fallback and NX's marshal-with-header variant).

Message layout is ``[payload][4-byte sequence word]``; the sequence word
doubles as the arrival flag, and since delivery is in-order, seeing it
means the payload is complete.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..hardware.config import CacheMode, MachineConfig
from ..kernel.system import ShrimpSystem
from ..testbed import Rendezvous, make_system
from ..vmmc import attach

__all__ = ["Strategy", "STRATEGIES", "PingPongResult", "vmmc_pingpong",
           "one_word_latency", "pages_for"]


@dataclass(frozen=True)
class Strategy:
    """One point in the copy-count / transfer-mode design space."""

    name: str
    automatic: bool
    sender_copy: bool
    receiver_copy: bool

    def __post_init__(self):
        if self.automatic and not self.sender_copy:
            raise ValueError(
                "every automatic update protocol does at least one copy "
                "(the copy is the send)"
            )


STRATEGIES: Dict[str, Strategy] = {
    s.name: s
    for s in [
        Strategy("AU-1copy", automatic=True, sender_copy=True, receiver_copy=False),
        Strategy("AU-2copy", automatic=True, sender_copy=True, receiver_copy=True),
        Strategy("DU-0copy", automatic=False, sender_copy=False, receiver_copy=False),
        Strategy("DU-1copy", automatic=False, sender_copy=False, receiver_copy=True),
        Strategy("DU-2copy", automatic=False, sender_copy=True, receiver_copy=True),
    ]
}


@dataclass
class PingPongResult:
    """One (strategy, size) measurement."""

    strategy: str
    size: int
    one_way_latency_us: float
    bandwidth_mb_s: float
    iterations: int


def pages_for(nbytes: int, page_size: int = 4096) -> int:
    """Pages needed to hold ``nbytes``."""
    return -(-nbytes // page_size)


def _seq_bytes(i: int) -> bytes:
    return struct.pack("<I", i)


def vmmc_pingpong(
    strategy: Strategy,
    size: int,
    iterations: int = 20,
    warmup: int = 2,
    system: Optional[ShrimpSystem] = None,
    node_a: int = 0,
    node_b: int = 1,
) -> PingPongResult:
    """Run one ping-pong measurement; returns the averaged result.

    ``size`` is the user payload per one-way message (the flag word is
    protocol overhead, sent but not counted as user bytes — matching the
    paper's 'total number of the user's bytes sent').
    """
    if size <= 0 or size % 4 != 0:
        raise ValueError("payload size must be a positive word multiple")
    system = system or make_system()
    rdv = Rendezvous(system)
    page_size = system.config.page_size
    region_bytes = pages_for(size + 4, page_size) * page_size
    timing: Dict[str, float] = {}

    def side(proc, me: str, peer: str, initiator: bool):
        ep = attach(system, proc)
        recv_vaddr = ep.alloc_buffer(region_bytes, cache_mode=CacheMode.WRITE_THROUGH)
        recv = yield from ep.export(recv_vaddr, region_bytes)
        rdv.put("export-" + me, (proc.node.node_id, recv.export_id))
        peer_node, peer_export = yield rdv.get("export-" + peer)
        imported = yield from ep.import_buffer(peer_node, peer_export)

        au_region = None
        staging = None
        if strategy.automatic:
            au_region = ep.alloc_buffer(region_bytes, cache_mode=CacheMode.WRITE_THROUGH)
            yield from ep.bind(au_region, imported)
        elif strategy.sender_copy:
            staging = ep.alloc_buffer(region_bytes, cache_mode=CacheMode.WRITE_BACK)
        user_src = proc.space.mmap(region_bytes, cache_mode=CacheMode.WRITE_BACK)
        user_dst = proc.space.mmap(region_bytes, cache_mode=CacheMode.WRITE_BACK)
        # Fill the source payload once (application data, not benchmark time).
        proc.poke(user_src, bytes((i * 13 + (1 if me == "a" else 2)) % 256
                                  for i in range(size)))

        rdv.put("ready-" + me, True)
        yield rdv.get("ready-" + peer)

        def send_one(seq: int):
            # The sequence word is application payload from the model's
            # perspective: place it in the source untimed (real apps have
            # their trailing data byte there already), then move the whole
            # message with the strategy's copy/send structure.
            proc.poke(user_src + size, _seq_bytes(seq))
            if strategy.automatic:
                yield from proc.copy(user_src, au_region, size + 4)
            elif strategy.sender_copy:
                yield from proc.copy(user_src, staging, size + 4)
                yield from ep.send(imported, staging, size + 4)
            else:
                yield from ep.send(imported, user_src, size + 4)

        def recv_one(seq: int):
            expected = _seq_bytes(seq)
            yield from proc.poll(recv_vaddr + size, 4, lambda b: b == expected)
            if strategy.receiver_copy:
                yield from proc.copy(recv_vaddr, user_dst, size)

        for i in range(warmup + iterations):
            if i == warmup and initiator:
                timing["start"] = proc.sim.now
            seq = i + 1
            if initiator:
                yield from send_one(seq)
                yield from recv_one(seq)
            else:
                yield from recv_one(seq)
                yield from send_one(seq)
        if initiator:
            timing["end"] = proc.sim.now
        # Integrity spot check: last received message matches the peer's fill.
        got = proc.peek(recv_vaddr, min(size, 64))
        other = 2 if me == "a" else 1
        want = bytes((i * 13 + other) % 256 for i in range(min(size, 64)))
        if got != want:
            raise AssertionError("payload corrupted in %s pingpong" % strategy.name)

    a = system.spawn(node_a, lambda proc: side(proc, "a", "b", True), name="pingpong-a")
    b = system.spawn(node_b, lambda proc: side(proc, "b", "a", False), name="pingpong-b")
    system.run_processes([a, b])

    total = timing["end"] - timing["start"]
    one_way = total / (2 * iterations)
    return PingPongResult(
        strategy=strategy.name,
        size=size,
        one_way_latency_us=one_way,
        bandwidth_mb_s=size / one_way,
        iterations=iterations,
    )


def one_word_latency(
    automatic: bool = True,
    cache_mode: CacheMode = CacheMode.WRITE_THROUGH,
    iterations: int = 50,
    config: Optional[MachineConfig] = None,
) -> float:
    """The paper's headline scalar: one-word user-to-user transfer latency.

    A single word is both data and flag: the sender stores one word (AU)
    or deliberate-updates one word (DU); the receiver polls that word.
    ``cache_mode`` applies to both sides' communication memory, matching
    'with both sender's and receiver's memory cached write-through' /
    'with caching disabled'.
    """
    system = make_system(config)
    rdv = Rendezvous(system)
    page_size = system.config.page_size
    timing: Dict[str, float] = {}

    def side(proc, me: str, peer: str, initiator: bool):
        ep = attach(system, proc)
        recv_vaddr = ep.alloc_buffer(page_size, cache_mode=cache_mode)
        recv = yield from ep.export(recv_vaddr, page_size)
        rdv.put("export-" + me, (proc.node.node_id, recv.export_id))
        peer_node, peer_export = yield rdv.get("export-" + peer)
        imported = yield from ep.import_buffer(peer_node, peer_export)
        src = None
        if automatic:
            src = ep.alloc_buffer(page_size, cache_mode=cache_mode)
            # Latency-critical single-word traffic uses a page configured
            # WITHOUT combining: each word leaves immediately instead of
            # waiting out the combining timer (per-page configuration,
            # Section 3.2).
            yield from ep.bind(src, imported, combining=False)
        else:
            src = proc.space.mmap(page_size, cache_mode=cache_mode)
        rdv.put("ready-" + me, True)
        yield rdv.get("ready-" + peer)

        for i in range(iterations + 1):
            if i == 1 and initiator:
                timing["start"] = proc.sim.now
            word = _seq_bytes(i + 1)

            def send_word():
                if automatic:
                    yield from proc.write(src, word)
                else:
                    proc.poke(src, word)
                    yield from ep.send(imported, src, 4)

            def recv_word():
                yield from proc.poll(recv_vaddr, 4, lambda b: b == word)

            if initiator:
                yield from send_word()
                yield from recv_word()
            else:
                yield from recv_word()
                yield from send_word()
        if initiator:
            timing["end"] = proc.sim.now

    a = system.spawn(0, lambda proc: side(proc, "a", "b", True))
    b = system.spawn(1, lambda proc: side(proc, "b", "a", False))
    system.run_processes([a, b])
    return (timing["end"] - timing["start"]) / (2 * iterations)
