"""Engine-speed benchmark: sim-events/sec and capacity-workload wall time.

Two measurements, one artifact (``BENCH_sim.json``):

* **dispatch** — a raw event-dispatch microbench: one process yielding
  ``sim.timeout(1.0)`` N times, so both the seed engine and the current
  engine execute *exactly N* scheduler entries and events/sec compares
  like for like.  This is the headline engine-speed number.
* **capacity** — the capacity workload (the docs/WORKLOADS.md knee
  specs) end to end: wall seconds and entries dispatched.  The current
  engine also *eliminates* entries (merged sleeps, synchronous store
  handoffs, coalesced timers — docs/SIMULATOR.md), so events/sec is
  reported as **seed-equivalent events/sec**: the seed engine's entry
  count for the identical workload divided by the current wall time.
  Raw counts for both engines are in the artifact so nobody has to
  take the normalization on faith.

``SEED_BASELINE`` holds the seed engine's numbers, measured
back-to-back with the current engine on the same idle machine (same
Python, best of the repeats) — wall-clock comparisons across *different*
machines are meaningless, which is also why the CI perf smoke guard
(tests/bench/test_perf_smoke.py) allows a wide margin and an opt-out.

Regenerate with ``make bench-sim-json`` (CI uploads the artifact).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional

from ..sim.core import Simulator
from ..sim.process import Process
from ..workload import WorkloadSpec, run_workload
from .report import write_bench_json

__all__ = ["SCHEMA", "SEED_BASELINE", "CAPACITY_SPECS", "dispatch_rate",
           "capacity_wall", "simspeed_payload", "write_simspeed_json"]

SCHEMA = "repro.bench.simspeed/v1"

#: Seed-engine reference numbers (commit ccfc236 lineage, before the
#: PR 9 engine work), measured back-to-back with the current engine on
#: the same idle machine: the dispatch microbench at its default size
#: and the capacity pass below, best of 3.  Update these only from a
#: paired same-machine measurement.
SEED_BASELINE: Dict[str, float] = {
    "dispatch_events": 200000,
    "dispatch_wall_s": 0.515,
    "dispatch_events_per_s": 388437.0,
    "capacity_events": 175813,
    "capacity_wall_s": 0.994,
}

#: The capacity pass: the knee neighbourhood of the docs/WORKLOADS.md
#: sweep — one run below the knee, one at it.
CAPACITY_SPECS: List[WorkloadSpec] = [
    WorkloadSpec(seed=11, transport="srpc", arrival="open",
                 load=20000.0, concurrency=8, requests=600, keys=200),
    WorkloadSpec(seed=11, transport="srpc", arrival="open",
                 load=40000.0, concurrency=8, requests=600, keys=200),
]


def _spin(sim: Simulator, n: int):
    for _ in range(n):
        yield sim.timeout(1.0)


def dispatch_rate(events: int = 200000, repeats: int = 3,
                  scheduler: Optional[str] = None) -> Dict[str, float]:
    """Raw dispatch throughput: best-of-``repeats`` events/sec.

    ``scheduler`` selects the queue implementation ("heap" or
    "calendar"); None takes the engine default (heap, see
    docs/SIMULATOR.md for why).
    """
    best = None
    executed = 0
    for _ in range(repeats):
        sim = Simulator(scheduler=scheduler) if scheduler else Simulator()
        Process(sim, _spin(sim, events), name="simspeed-spin")
        t0 = time.perf_counter()
        sim.run()
        wall = time.perf_counter() - t0
        executed = sim.events_executed
        if best is None or wall < best:
            best = wall
    return {
        "events": executed,
        "best_wall_s": best,
        "events_per_s": executed / best,
    }


def capacity_wall(specs: Optional[List[WorkloadSpec]] = None,
                  repeats: int = 3) -> Dict[str, float]:
    """Capacity-workload wall time: best-of-``repeats`` for one pass.

    A pass runs every spec in ``specs`` once; ``events`` is the pass's
    total dispatched entry count (identical across repeats — the engine
    is deterministic).
    """
    specs = CAPACITY_SPECS if specs is None else specs
    best = None
    events = requests = 0
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = requests = 0
        for spec in specs:
            report = run_workload(spec)
            events += report.events_executed
            requests += report.completed + report.errors + report.rejected
        wall = time.perf_counter() - t0
        if best is None or wall < best:
            best = wall
    return {
        "specs": len(specs),
        "requests": requests,
        "events": events,
        "best_wall_s": best,
    }


def simspeed_payload(quick: bool = False) -> dict:
    """The full BENCH_sim.json payload: measurements + seed-relative ratios.

    ``quick`` shrinks the microbench and skips repeats — for CI smoke,
    not for committing.
    """
    dispatch = dispatch_rate(events=50000 if quick else 200000,
                             repeats=1 if quick else 3)
    dispatch_cal = dispatch_rate(events=50000 if quick else 200000,
                                 repeats=1 if quick else 3,
                                 scheduler="calendar")
    capacity = capacity_wall(repeats=1 if quick else 3)
    base = SEED_BASELINE
    seed_equiv_eps = base["capacity_events"] / capacity["best_wall_s"]
    payload = {
        "schema": SCHEMA,
        "quick": quick,
        "baseline_seed_engine": dict(base),
        "dispatch": dispatch,
        "dispatch_calendar": dispatch_cal,
        "capacity": dict(capacity,
                         seed_equivalent_events_per_s=seed_equiv_eps),
        "speedup_vs_seed": {
            "dispatch_events_per_s":
                dispatch["events_per_s"] / base["dispatch_events_per_s"],
            "capacity_wall":
                base["capacity_wall_s"] / capacity["best_wall_s"],
            "capacity_events_eliminated":
                1.0 - capacity["events"] / base["capacity_events"],
            "capacity_seed_equivalent_events_per_s":
                seed_equiv_eps
                / (base["capacity_events"] / base["capacity_wall_s"]),
        },
        "methodology": (
            "dispatch: identical entry counts on both engines, so "
            "events/sec compares like for like.  capacity: the current "
            "engine eliminates entries for the same workload, so "
            "seed-equivalent events/sec = seed entry count / current "
            "wall.  Baselines are same-machine back-to-back; do not "
            "compare walls across machines."),
    }
    return payload


def write_simspeed_json(path: str, quick: bool = False) -> dict:
    """Measure and write ``path``; returns the payload.

    Goes through the shared schema'd writer so the artifact is
    guaranteed ingestible by ``python -m repro diff --bench``.
    """
    payload = simspeed_payload(quick=quick)
    return write_bench_json(path, payload)


def main(argv=None) -> int:
    """CLI: ``python -m repro.bench.simspeed [--json PATH] [--quick]``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.simspeed",
        description="Measure sim-events/sec and capacity wall time.")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the BENCH_sim.json artifact here")
    parser.add_argument("--quick", action="store_true",
                        help="small sizes, no repeats (CI smoke)")
    args = parser.parse_args(argv)
    if args.json:
        payload = write_simspeed_json(args.json, quick=args.quick)
    else:
        payload = simspeed_payload(quick=args.quick)
    speed = payload["speedup_vs_seed"]
    print("dispatch: %d events in %.3f s -> %.0f events/s (%.2fx seed)"
          % (payload["dispatch"]["events"],
             payload["dispatch"]["best_wall_s"],
             payload["dispatch"]["events_per_s"],
             speed["dispatch_events_per_s"]))
    print("dispatch (calendar queue): %.0f events/s"
          % payload["dispatch_calendar"]["events_per_s"])
    print("capacity: %d entries in %.3f s (seed: %d in %.3f s) -> "
          "wall %.2fx, %.0f%% entries eliminated"
          % (payload["capacity"]["events"],
             payload["capacity"]["best_wall_s"],
             payload["baseline_seed_engine"]["capacity_events"],
             payload["baseline_seed_engine"]["capacity_wall_s"],
             speed["capacity_wall"],
             100.0 * speed["capacity_events_eliminated"]))
    print("capacity seed-equivalent events/s: %.0f (%.2fx seed)"
          % (payload["capacity"]["seed_equivalent_events_per_s"],
             speed["capacity_seed_equivalent_events_per_s"]))
    if args.json:
        print("wrote %s" % args.json)
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
