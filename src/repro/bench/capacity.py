"""Capacity sweep: offered load vs tail latency, per transport.

The serving-side complement of the figure harnesses: instead of one
message bouncing between two nodes, an open-loop workload offers load
to the whole KV service and we watch where the tail departs.  Below
capacity an open-loop system's p99 tracks p50; past the knee queueing
delay accumulates without bound inside the measurement window, so p99
diverges while achieved throughput plateaus at service capacity — the
classic saturation signature (docs/WORKLOADS.md).

:func:`find_knee` works on the measured points alone, so it can be unit
tested on synthetic data without running a sweep.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import List, Optional, Sequence

from ..workload.spec import WorkloadSpec
from .report import format_table

__all__ = ["CapacityPoint", "CapacityResult", "PairedCapacityResult",
           "capacity_sweep", "find_knee", "mitigation_spec_pair",
           "paired_capacity_sweep", "capacity_payload"]


def mitigation_spec_pair(spec: WorkloadSpec,
                         pipeline_window: int = 4,
                         batch_keys: int = 4,
                         cache_keys: int = 64,
                         cache_ttl_us: float = 2000.0,
                         read_spread: bool = True,
                         onesided: bool = False):
    """The exactly-paired (baseline, mitigated) specs of an A/B sweep.

    Same seed, mix, and keyspace — A with every client-side mitigation
    forced off, B with the given values — so the pair differs only in
    the serving-stack knobs under test.  Shared by
    :func:`paired_capacity_sweep` and the stage-attribution runs
    (``repro diff`` / ``capacity --ab``), so both always compare the
    same two configurations.
    """
    baseline = replace(spec, pipeline_window=1, batch_keys=1,
                       cache_keys=0, cache_ttl_us=0.0,
                       read_spread=False, onesided_reads=False)
    mitigated = replace(spec, pipeline_window=pipeline_window,
                        batch_keys=batch_keys, cache_keys=cache_keys,
                        cache_ttl_us=cache_ttl_us,
                        read_spread=read_spread,
                        onesided_reads=onesided)
    return baseline, mitigated


@dataclass
class CapacityPoint:
    """One sweep sample: what was offered, what came back, how slowly."""

    offered_load: float      # ops/s
    throughput: float        # achieved ops/s
    p50_us: float
    p99_us: float
    errors: int
    p95_us: float = 0.0      # defaulted last: older call sites omit it
    rejected: int = 0        # requests shed past the retry budget
    goodput: float = 0.0     # within-SLO completions per second
    versioned_reads: int = 0  # staleness-scored GETs (consistency sweeps)
    stale_reads: int = 0     # of those, answers an acked write superseded


@dataclass
class CapacityResult:
    """A full sweep for one transport, plus the detected knee."""

    transport: str
    arrival: str
    points: List[CapacityPoint] = field(default_factory=list)
    knee_load: Optional[float] = None

    def rows(self) -> List[List[str]]:
        """The sweep as table rows (header first)."""
        rows = [["offered ops/s", "achieved ops/s", "goodput ops/s",
                 "p50 us", "p95 us", "p99 us", "p99/p50", "rejected",
                 "errors"]]
        for pt in self.points:
            ratio = pt.p99_us / pt.p50_us if pt.p50_us > 0 else 0.0
            rows.append(["%.0f" % pt.offered_load, "%.0f" % pt.throughput,
                         "%.0f" % pt.goodput,
                         "%.2f" % pt.p50_us, "%.2f" % pt.p95_us,
                         "%.2f" % pt.p99_us,
                         "%.1f" % ratio, str(pt.rejected), str(pt.errors)])
        return rows

    def to_payload(self) -> dict:
        """This sweep as a JSON-ready dict (points, knee, labels).

        Staleness counters appear only when the sweep armed the
        oracle, so artifacts from sweeps that never measured them
        (and the committed ones that predate them) keep their shape.
        """
        graded = any(pt.versioned_reads for pt in self.points)
        points = []
        for pt in self.points:
            entry = {"offered_load": pt.offered_load,
                     "throughput": pt.throughput,
                     "goodput": pt.goodput,
                     "p50_us": pt.p50_us,
                     "p95_us": pt.p95_us,
                     "p99_us": pt.p99_us,
                     "rejected": pt.rejected,
                     "errors": pt.errors}
            if graded:
                entry["versioned_reads"] = pt.versioned_reads
                entry["stale_reads"] = pt.stale_reads
            points.append(entry)
        return {
            "transport": self.transport,
            "arrival": self.arrival,
            "knee_load": self.knee_load,
            "points": points,
        }

    def report(self) -> str:
        """Deterministic text: the sweep table and the knee verdict."""
        lines = ["capacity sweep: transport=%s arrival=%s"
                 % (self.transport, self.arrival)]
        lines.extend(format_table(self.rows()))
        if self.knee_load is not None:
            lines.append("saturation knee at ~%.0f ops/s offered"
                         % self.knee_load)
        else:
            lines.append("no saturation knee inside the swept range")
        return "\n".join(lines)


def find_knee(points: Sequence[CapacityPoint],
              tail_factor: float = 3.0,
              shortfall: float = 0.9) -> Optional[float]:
    """The offered load delivering maximum useful output, or None.

    A sweep *saturates* when some point past the lowest load shows the
    classic signature — p99 beyond ``tail_factor`` times the
    lowest-load baseline (queueing delay owns the tail) or achieved
    throughput below ``shortfall`` of offered (the service can no
    longer keep up).  An unsaturated sweep has no knee.

    Within a saturated sweep the knee is the point of **maximum
    goodput** (falling back to throughput for sweeps that measured
    none), ties broken toward the *lower* offered load.  The first
    saturated point is the wrong answer on a non-monotonic collapse:
    an overloaded service's throughput can keep climbing past the
    point where the tail first diverges, then fall off a cliff — the
    capacity worth reporting is where the output *peaks*, not where
    the tail first twitched.
    """
    if not points:
        return None
    ordered = sorted(points, key=lambda pt: pt.offered_load)
    baseline_p99 = ordered[0].p99_us
    saturated = False
    for pt in ordered[1:]:
        saturated_tail = (baseline_p99 > 0.0
                          and pt.p99_us > tail_factor * baseline_p99)
        saturated_tput = pt.throughput < shortfall * pt.offered_load
        if saturated_tail or saturated_tput:
            saturated = True
            break
    if not saturated:
        return None
    best = max(ordered,
               key=lambda pt: ((pt.goodput or pt.throughput),
                               -pt.offered_load))
    return best.offered_load


def capacity_sweep(loads: Sequence[float],
                   base_spec: Optional[WorkloadSpec] = None,
                   tail_factor: float = 3.0,
                   shortfall: float = 0.9) -> CapacityResult:
    """Run ``base_spec`` at each offered load and locate the knee.

    ``base_spec`` must be (or is forced to be) open-loop — a closed
    loop self-limits and never shows a knee.
    """
    # Imported here, not at module scope: repro.workload.report renders
    # tables via repro.bench.report, so a module-level import of the
    # engine would close an import cycle.
    from ..workload.engine import run_workload

    spec = base_spec if base_spec is not None else WorkloadSpec()
    if spec.arrival != "open":
        raise ValueError("capacity sweeps need an open-loop spec")
    result = CapacityResult(transport=spec.transport, arrival=spec.arrival)
    for load in sorted(loads):
        rep = run_workload(spec.with_load(load))
        result.points.append(CapacityPoint(
            offered_load=load,
            throughput=rep.throughput_ops_s,
            p50_us=rep.percentile(50.0),
            p95_us=rep.percentile(95.0),
            p99_us=rep.percentile(99.0),
            errors=rep.errors,
            rejected=rep.rejected,
            goodput=rep.goodput_ops_s,
            versioned_reads=(rep.staleness or {}).get("reads", 0),
            stale_reads=(rep.staleness or {}).get("stale", 0)))
    result.knee_load = find_knee(result.points, tail_factor=tail_factor,
                                 shortfall=shortfall)
    return result


@dataclass
class PairedCapacityResult:
    """An A/B capacity sweep: identical spec and seed, mitigations off/on.

    The paired comparison is the serving-stack experiment of
    docs/WORKLOADS.md: same arrival sequence, same key popularity, same
    value sizes — the only difference is the client-side mitigation
    knobs, so any knee movement is attributable to them.
    """

    baseline: CapacityResult
    mitigated: CapacityResult
    label: str = ""
    #: True for an overload-control pair (A = uncontrolled, B =
    #: admission + retry + backpressure): the verdict then compares
    #: goodput survival past the knee rather than knee movement.
    overload: bool = False
    #: True for a consistency pair (A = eventual + read-spreading,
    #: B = quorum + read repair): the verdict then compares stale-read
    #: rates — quorum must serve zero (docs/REPLICATION.md).
    consistency: bool = False

    def report(self) -> str:
        """Both sweep tables plus the knee comparison verdict."""
        lines = ["paired capacity sweep (A = baseline, B = %s)"
                 % (self.label or "mitigated")]
        lines.append("")
        lines.append("A: " + self.baseline.report())
        lines.append("")
        lines.append("B: " + self.mitigated.report())
        lines.append("")
        a, b = self.baseline.knee_load, self.mitigated.knee_load
        if self.consistency:
            # A consistency pair trades capacity for correctness on
            # purpose; frame the knees as quorum's cost, not as a
            # mitigation that failed to help.
            if a is not None and b is not None:
                lines.append("consistency cost: quorum knee at ~%.0f "
                             "ops/s vs eventual ~%.0f" % (b, a))
            elif b is not None:
                lines.append("consistency cost: quorum saturates at "
                             "~%.0f ops/s; eventual never saturated "
                             "in range" % b)
            elif a is not None:
                lines.append("consistency cost: eventual saturates at "
                             "~%.0f ops/s; quorum never saturated "
                             "in range" % a)
            else:
                lines.append("consistency cost: neither mode saturated "
                             "inside the swept range")
        elif a is not None and b is not None:
            if b > a:
                lines.append("verdict: mitigation moved the knee from "
                             "~%.0f to ~%.0f ops/s (+%.0f%%)"
                             % (a, b, 100.0 * (b - a) / a))
            elif b < a:
                lines.append("verdict: mitigation moved the knee from "
                             "~%.0f DOWN to ~%.0f ops/s" % (a, b))
            else:
                lines.append("verdict: knee unchanged at ~%.0f ops/s" % a)
        elif a is not None:
            lines.append("verdict: baseline saturates at ~%.0f ops/s; "
                         "mitigated run never saturated in range" % a)
        elif b is not None:
            lines.append("verdict: mitigated run saturates at ~%.0f ops/s; "
                         "baseline never saturated in range (unexpected)" % b)
        else:
            lines.append("verdict: neither run saturated inside the "
                         "swept range")
        if self.overload and self.mitigated.knee_load is not None:
            knee = self.mitigated.knee_load
            knee_goodput = max(
                (pt.goodput for pt in self.mitigated.points
                 if pt.offered_load <= knee), default=0.0)
            past = [pt for pt in self.mitigated.points
                    if pt.offered_load > knee]
            base_past = [pt for pt in self.baseline.points
                         if pt.offered_load > knee]
            if past and knee_goodput > 0.0:
                worst = min(pt.goodput for pt in past)
                lines.append(
                    "overload verdict: past the knee (~%.0f ops/s) "
                    "controlled goodput holds >= %.0f ops/s (%.0f%% of "
                    "knee goodput %.0f)"
                    % (knee, worst, 100.0 * worst / knee_goodput,
                       knee_goodput))
                if base_past:
                    lines.append(
                        "                  uncontrolled goodput past the "
                        "knee falls to %.0f ops/s"
                        % min(pt.goodput for pt in base_past))
        if self.consistency:
            a_reads = sum(pt.versioned_reads for pt in self.baseline.points)
            a_stale = sum(pt.stale_reads for pt in self.baseline.points)
            b_reads = sum(pt.versioned_reads for pt in self.mitigated.points)
            b_stale = sum(pt.stale_reads for pt in self.mitigated.points)
            lines.append(
                "consistency verdict: eventual served %d stale of %d reads "
                "(%.2f%%); quorum served %d stale of %d reads [%s]"
                % (a_stale, a_reads,
                   100.0 * a_stale / a_reads if a_reads else 0.0,
                   b_stale, b_reads,
                   "OK" if b_stale == 0 else "VIOLATED"))
        return "\n".join(lines)

    def to_payload(self) -> dict:
        """Both sweeps as a JSON-ready dict keyed A/B."""
        return {
            "mode": "ab",
            "overload": self.overload,
            "consistency": self.consistency,
            "label": self.label,
            "baseline": self.baseline.to_payload(),
            "mitigated": self.mitigated.to_payload(),
        }


def paired_capacity_sweep(loads: Sequence[float],
                          base_spec: Optional[WorkloadSpec] = None,
                          pipeline_window: int = 4,
                          batch_keys: int = 4,
                          cache_keys: int = 64,
                          cache_ttl_us: float = 2000.0,
                          read_spread: bool = True,
                          onesided: bool = False,
                          overload: bool = False,
                          cpu_slots: int = 1,
                          cpu_op_us: float = 50.0,
                          admit_queue: int = 8,
                          admit_deadline_us: float = 400.0,
                          retry_budget: int = 1,
                          retry_base_us: float = 50.0,
                          backpressure: bool = True,
                          slo_latency_us: float = 1000.0,
                          consistency: bool = False,
                          quorum_r: int = 0,
                          quorum_w: int = 0,
                          tail_factor: float = 3.0,
                          shortfall: float = 0.9) -> PairedCapacityResult:
    """Sweep the same loads twice — mitigations off, then on.

    ``base_spec`` supplies seed, mix, and keyspace; its mitigation
    knobs are forced OFF for the A run and replaced with the given
    values for the B run, so the pair differs only in the serving-stack
    mitigations under test.  ``onesided=True`` runs the B side with
    one-sided bypass reads (docs/ONESIDED.md) — usually *instead of*
    the client-side mitigations, so pass the neutral values for the
    others when isolating the bypass.

    ``overload=True`` selects the overload-control experiment instead
    (docs/OVERLOAD.md): BOTH sides model contended node CPUs
    (``cpu_slots``/``cpu_op_us``) and score goodput against
    ``slo_latency_us``, the hot-key mitigations stay off on both
    sides, and only the B side arms admission control, retry budgets,
    and backpressure — so the pair isolates whether the *controls*
    (not a faster server) preserve goodput past the knee.  The
    ``cpu_op_us`` default of 50 (~3000 cycles on a 60 MHz Pentium) is
    the calibrated point where handler CPU — not the client worker
    pool — is the binding resource, so the knee lives server-side
    where admission can see it (docs/OVERLOAD.md).
    """
    spec = base_spec if base_spec is not None else WorkloadSpec()
    if consistency:
        # The replica-correctness experiment (docs/REPLICATION.md):
        # both sides score every GET against the newest acknowledged
        # write.  A spreads reads over the replica set under eventual
        # consistency — replication lag shows up as a nonzero stale
        # rate; B pays for quorum reads and writes (R + W > N) plus
        # read repair and must serve zero stale reads at every load.
        eventual_spec = replace(spec, pipeline_window=1, batch_keys=1,
                                cache_keys=0, cache_ttl_us=0.0,
                                onesided_reads=False, read_spread=True,
                                consistency="eventual", staleness=True)
        quorum_spec = replace(eventual_spec, read_spread=False,
                              consistency="quorum", read_repair=True,
                              quorum_r=quorum_r, quorum_w=quorum_w)
        baseline = capacity_sweep(loads, eventual_spec,
                                  tail_factor=tail_factor,
                                  shortfall=shortfall)
        quorum = capacity_sweep(loads, quorum_spec,
                                tail_factor=tail_factor,
                                shortfall=shortfall)
        return PairedCapacityResult(baseline=baseline, mitigated=quorum,
                                    label=quorum_spec.consistency_label(),
                                    consistency=True)
    if overload:
        baseline_spec = replace(spec, pipeline_window=1, batch_keys=1,
                                cache_keys=0, cache_ttl_us=0.0,
                                read_spread=False, onesided_reads=False,
                                cpu_slots=cpu_slots, cpu_op_us=cpu_op_us,
                                slo_latency_us=slo_latency_us,
                                admission=False, retry_budget=0,
                                backpressure=False)
        controlled_spec = replace(baseline_spec, admission=True,
                                  admit_queue=admit_queue,
                                  admit_deadline_us=admit_deadline_us,
                                  retry_budget=retry_budget,
                                  retry_base_us=retry_base_us,
                                  backpressure=backpressure)
        baseline = capacity_sweep(loads, baseline_spec,
                                  tail_factor=tail_factor,
                                  shortfall=shortfall)
        controlled = capacity_sweep(loads, controlled_spec,
                                    tail_factor=tail_factor,
                                    shortfall=shortfall)
        return PairedCapacityResult(baseline=baseline, mitigated=controlled,
                                    label=controlled_spec.overload_label(),
                                    overload=True)
    baseline_spec, mitigated_spec = mitigation_spec_pair(
        spec, pipeline_window=pipeline_window, batch_keys=batch_keys,
        cache_keys=cache_keys, cache_ttl_us=cache_ttl_us,
        read_spread=read_spread, onesided=onesided)
    baseline = capacity_sweep(loads, baseline_spec, tail_factor=tail_factor,
                              shortfall=shortfall)
    mitigated = capacity_sweep(loads, mitigated_spec, tail_factor=tail_factor,
                               shortfall=shortfall)
    return PairedCapacityResult(baseline=baseline, mitigated=mitigated,
                                label=mitigated_spec.mitigation_label())


def capacity_payload(result, spec: WorkloadSpec,
                     loads: Sequence[float]) -> dict:
    """The machine-readable sweep document (``BENCH_capacity.json``).

    Wraps a :class:`CapacityResult` or :class:`PairedCapacityResult`
    with the full workload configuration and seed, so a later session
    (or CI artifact consumer) can reproduce the exact sweep: same spec,
    same loads, same knee.
    """
    payload = {
        "schema": "repro.bench.capacity/v1",
        "seed": spec.seed,
        "loads": sorted(float(x) for x in loads),
        "config": asdict(spec),
    }
    payload.update(result.to_payload())
    payload.setdefault("mode", "sweep")
    return payload
