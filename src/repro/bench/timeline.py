"""Packet-journey timelines: what happened on the machine, when.

Every hardware component logs into the machine's shared tracer
(disabled by default).  Turn it on around the interval of interest and
render the merged, time-sorted event log — a packet's full journey
(packetized → injected → routed → DMA'd) reads straight down the page.

    from repro.bench.timeline import trace_on, render
    trace_on(system.machine)
    ... run the interesting part ...
    print(render(system.machine))
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..hardware.machine import Machine

__all__ = ["trace_on", "trace_off", "render", "journey_of"]

# The categories the hardware logs, in datapath order (for reference):
CATEGORIES = ("packetize", "inject", "mesh", "dma-in", "fault")


def trace_on(machine: Machine, limit: int = 100_000) -> None:
    """Start recording (clears anything previously recorded)."""
    machine.tracer.enabled = True
    machine.tracer.limit = limit
    machine.tracer.records.clear()


def trace_off(machine: Machine) -> None:
    """Stop recording."""
    machine.tracer.enabled = False


def render(machine: Machine, categories: Optional[Sequence[str]] = None,
           start: float = 0.0, end: Optional[float] = None) -> str:
    """The merged event log as aligned text, optionally windowed."""
    lines: List[str] = []
    wanted = set(categories) if categories is not None else None
    for record in machine.tracer.records:
        if record.time < start or (end is not None and record.time > end):
            continue
        if wanted is not None and record.category not in wanted:
            continue
        lines.append("%12.3f  %-10s %s" % (record.time, record.category,
                                           record.message))
    return "\n".join(lines)


def journey_of(machine: Machine, packet_seq: int) -> str:
    """Every recorded event mentioning one packet's sequence number."""
    needle = "#%d" % packet_seq
    lines = [
        "%12.3f  %-10s %s" % (r.time, r.category, r.message)
        for r in machine.tracer.records
        if needle in r.message
    ]
    return "\n".join(lines)
