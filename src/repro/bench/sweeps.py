"""Parameter sweeps: sensitivity of headline results to machine knobs.

The calibration (DESIGN.md section 5) fixes one point in configuration
space; a sweep shows how a result moves as one :class:`MachineConfig`
field varies — which bottleneck claims are structural and which are
coincidences of the constants.  Used by the sensitivity benchmark and
available for exploration:

    from repro.bench.sweeps import sweep_config
    rows = sweep_config("eisa_dma_bandwidth", [13, 26.5, 53, 106],
                        du_0copy_bandwidth)
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple

from ..hardware.config import CacheMode, MachineConfig
from .pingpong import STRATEGIES, one_word_latency, vmmc_pingpong

__all__ = [
    "sweep_config",
    "du_0copy_bandwidth",
    "au_word_latency",
    "au_1copy_bandwidth",
]

Metric = Callable[[MachineConfig], float]


def sweep_config(
    field: str,
    values: Sequence,
    metric: Metric,
    base: MachineConfig = None,
) -> List[Tuple[object, float]]:
    """Measure ``metric`` at each value of one config field.

    Returns [(value, measurement)] in input order.  The base
    configuration is the calibrated prototype unless given.
    """
    base = base or MachineConfig.shrimp_prototype()
    if not hasattr(base, field):
        raise AttributeError("MachineConfig has no field %r" % field)
    results = []
    for value in values:
        config = replace(base, **{field: value})
        results.append((value, metric(config)))
    return results


# -- canned metrics ---------------------------------------------------------

def du_0copy_bandwidth(config: MachineConfig) -> float:
    """10 KB DU-0copy bandwidth (MB/s) — the EISA-limited headline."""
    from ..testbed import make_system

    return vmmc_pingpong(
        STRATEGIES["DU-0copy"], 10240, iterations=4, system=make_system(config)
    ).bandwidth_mb_s


def au_1copy_bandwidth(config: MachineConfig) -> float:
    """10 KB AU-1copy bandwidth (MB/s) — the copy-limited headline."""
    from ..testbed import make_system

    return vmmc_pingpong(
        STRATEGIES["AU-1copy"], 10240, iterations=4, system=make_system(config)
    ).bandwidth_mb_s


def au_word_latency(config: MachineConfig) -> float:
    """One-word AU latency (us), write-through."""
    return one_word_latency(
        automatic=True, cache_mode=CacheMode.WRITE_THROUGH, config=config
    )
