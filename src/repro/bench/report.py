"""Result structures and text reports for the benchmark harness.

Every experiment (DESIGN.md section 4) produces a :class:`FigureResult`:
named series of (size, latency, bandwidth) points, printable as the
rows the paper's figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SeriesPoint", "FigureSeries", "FigureResult", "format_table"]


@dataclass
class SeriesPoint:
    """One (message size -> performance) sample."""

    size: int
    latency_us: float

    @property
    def bandwidth_mb_s(self) -> float:
        return self.size / self.latency_us if self.latency_us > 0 else 0.0


@dataclass
class FigureSeries:
    """One curve of a figure (e.g. 'AU-1copy')."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, size: int, latency_us: float) -> None:
        """Append one (size, latency) point."""
        self.points.append(SeriesPoint(size, latency_us))

    def latency_at(self, size: int) -> float:
        """Latency of the point with exactly this size."""
        for point in self.points:
            if point.size == size:
                return point.latency_us
        raise KeyError("no %d-byte point in series %s" % (size, self.name))

    def bandwidth_at(self, size: int) -> float:
        """size / latency for the point with this size."""
        return size / self.latency_at(size)

    @property
    def peak_bandwidth(self) -> float:
        return max(p.bandwidth_mb_s for p in self.points)


@dataclass
class FigureResult:
    """Everything one experiment regenerates."""

    figure_id: str
    title: str
    series: List[FigureSeries] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def series_named(self, name: str) -> FigureSeries:
        """The series with this name (KeyError if absent)."""
        for entry in self.series:
            if entry.name == name:
                return entry
        raise KeyError("no series %r in %s" % (name, self.figure_id))

    def report(self) -> str:
        """A text rendering: one latency table and one bandwidth table."""
        sizes = sorted({p.size for s in self.series for p in s.points})
        lines = ["%s — %s" % (self.figure_id, self.title), ""]

        def table(value_of, header, fmt):
            rows = [["size(B)"] + [s.name for s in self.series]]
            for size in sizes:
                row = ["%d" % size]
                for entry in self.series:
                    try:
                        row.append(fmt % value_of(entry, size))
                    except KeyError:
                        row.append("-")
                rows.append(row)
            return [header] + format_table(rows) + [""]

        lines += table(lambda s, n: s.latency_at(n), "one-way latency (us):", "%.2f")
        lines += table(lambda s, n: s.bandwidth_at(n), "bandwidth (MB/s):", "%.2f")
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)


def format_table(rows: Sequence[Sequence[str]]) -> List[str]:
    """Align a list of string rows into fixed-width columns."""
    if not rows:
        return []
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows
    ]
