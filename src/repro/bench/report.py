"""Result structures and text reports for the benchmark harness.

Every experiment (DESIGN.md section 4) produces a :class:`FigureResult`:
named series of (size, latency, bandwidth) points, printable as the
rows the paper's figures plot.

This module is also the single writer for the machine-readable bench
artifacts: every JSON document the CLI or CI emits
(``BENCH_capacity.json``, ``BENCH_sim.json``, ``BENCH_antientropy.json``)
goes through :func:`write_bench_json`, which validates the payload
against its registered schema (``BENCH_SCHEMAS``) before a byte is
written — and :func:`load_bench_json` applies the same validation on
the way back in, so ``python -m repro diff --bench`` can ingest any of
them without per-artifact special cases.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

__all__ = ["SeriesPoint", "FigureSeries", "FigureResult", "format_table",
           "BENCH_SCHEMAS", "validate_bench_payload", "write_bench_json",
           "load_bench_json"]


@dataclass
class SeriesPoint:
    """One (message size -> performance) sample."""

    size: int
    latency_us: float

    @property
    def bandwidth_mb_s(self) -> float:
        return self.size / self.latency_us if self.latency_us > 0 else 0.0


@dataclass
class FigureSeries:
    """One curve of a figure (e.g. 'AU-1copy')."""

    name: str
    points: List[SeriesPoint] = field(default_factory=list)

    def add(self, size: int, latency_us: float) -> None:
        """Append one (size, latency) point."""
        self.points.append(SeriesPoint(size, latency_us))

    def latency_at(self, size: int) -> float:
        """Latency of the point with exactly this size."""
        for point in self.points:
            if point.size == size:
                return point.latency_us
        raise KeyError("no %d-byte point in series %s" % (size, self.name))

    def bandwidth_at(self, size: int) -> float:
        """size / latency for the point with this size."""
        return size / self.latency_at(size)

    @property
    def peak_bandwidth(self) -> float:
        return max(p.bandwidth_mb_s for p in self.points)


@dataclass
class FigureResult:
    """Everything one experiment regenerates."""

    figure_id: str
    title: str
    series: List[FigureSeries] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def series_named(self, name: str) -> FigureSeries:
        """The series with this name (KeyError if absent)."""
        for entry in self.series:
            if entry.name == name:
                return entry
        raise KeyError("no series %r in %s" % (name, self.figure_id))

    def report(self) -> str:
        """A text rendering: one latency table and one bandwidth table."""
        sizes = sorted({p.size for s in self.series for p in s.points})
        lines = ["%s — %s" % (self.figure_id, self.title), ""]

        def table(value_of, header, fmt):
            rows = [["size(B)"] + [s.name for s in self.series]]
            for size in sizes:
                row = ["%d" % size]
                for entry in self.series:
                    try:
                        row.append(fmt % value_of(entry, size))
                    except KeyError:
                        row.append("-")
                rows.append(row)
            return [header] + format_table(rows) + [""]

        lines += table(lambda s, n: s.latency_at(n), "one-way latency (us):", "%.2f")
        lines += table(lambda s, n: s.bandwidth_at(n), "bandwidth (MB/s):", "%.2f")
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)


#: Every bench-artifact schema this repo emits, with the top-level
#: keys a valid document must carry.  The capacity schema's
#: mode-specific structure gets a deeper check in
#: :func:`validate_bench_payload`.
BENCH_SCHEMAS: Dict[str, Sequence[str]] = {
    "repro.bench.capacity/v1": ("seed", "loads", "config", "mode"),
    "repro.bench.simspeed/v1": ("quick", "baseline_seed_engine",
                                "dispatch", "capacity",
                                "speedup_vs_seed"),
    "repro.antientropy.convergence/v1": ("seed", "interval_us",
                                         "staleness", "convergence",
                                         "spec_line"),
}

_POINT_KEYS = ("offered_load", "throughput", "p50_us", "p99_us")


def _check_points(sweep, where: str, problems: List[str]) -> None:
    if not isinstance(sweep, dict):
        problems.append("%s: expected a sweep object" % where)
        return
    points = sweep.get("points")
    if not isinstance(points, list) or not points:
        problems.append("%s: missing or empty 'points'" % where)
        return
    for i, pt in enumerate(points):
        for key in _POINT_KEYS:
            if not isinstance(pt, dict) or key not in pt:
                problems.append("%s: point %d missing %r"
                                % (where, i, key))


def validate_bench_payload(payload) -> List[str]:
    """Every schema violation in a bench document (empty = valid)."""
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    schema = payload.get("schema")
    if schema not in BENCH_SCHEMAS:
        return ["unknown bench schema %r (known: %s)"
                % (schema, ", ".join(sorted(BENCH_SCHEMAS)))]
    problems = []
    for key in BENCH_SCHEMAS[schema]:
        if key not in payload:
            problems.append("%s: missing top-level key %r"
                            % (schema, key))
    if schema == "repro.bench.capacity/v1" and "mode" in payload:
        mode = payload["mode"]
        if mode == "ab":
            for side in ("baseline", "mitigated"):
                if side not in payload:
                    problems.append("capacity ab: missing %r sweep"
                                    % side)
                else:
                    _check_points(payload[side], side, problems)
        elif mode == "sweep":
            _check_points(payload, "sweep", problems)
        else:
            problems.append("capacity: unknown mode %r" % mode)
    try:
        json.dumps(payload)
    except (TypeError, ValueError) as exc:
        problems.append("payload is not JSON-serializable: %s" % exc)
    return problems


def write_bench_json(path: str, payload: dict) -> dict:
    """Validate ``payload`` and write it to ``path`` (sorted, indented).

    Raises ValueError listing the schema violations rather than
    writing an artifact a later ``repro diff --bench`` would reject.
    """
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError("refusing to write %s:\n  %s"
                         % (path, "\n  ".join(problems)))
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return payload


def load_bench_json(path: str) -> dict:
    """Read and validate one bench artifact (ValueError on violations)."""
    with open(path) as fh:
        payload = json.load(fh)
    problems = validate_bench_payload(payload)
    if problems:
        raise ValueError("%s is not a valid bench artifact:\n  %s"
                         % (path, "\n  ".join(problems)))
    return payload


def format_table(rows: Sequence[Sequence[str]]) -> List[str]:
    """Align a list of string rows into fixed-width columns."""
    if not rows:
        return []
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    return [
        "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        for row in rows
    ]
