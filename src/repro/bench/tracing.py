"""Traced one-word transfers: spans cross-checked against the budget.

Runs the Figure 3 methodology's one-word transfer (AU or DU) with the
machine tracer enabled, extracts the journey's spans — sender store or
vmmc send, packetize, injection, mesh transit, incoming DMA, receiver
poll detect — and builds a *measured* :class:`~repro.analysis.LatencyBudget`
next to the analytic one from :mod:`repro.analysis`.  In the uncontended
single-transfer case the two agree exactly; the acceptance bar is 1%.

This is both the `python -m repro trace` implementation and the proof
obligation of the observability layer: if a future change makes the
simulated datapath drift from the documented cost model, the agreement
check fails before the paper figures silently move.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import LatencyBudget, Stage, au_word_budget, du_word_budget
from ..hardware.config import CacheMode, MachineConfig
from ..kernel.system import ShrimpSystem
from ..sim import Span, Tracer, chrome_trace_json, write_chrome_trace
from ..testbed import Rendezvous
from ..vmmc import attach

__all__ = ["TracedTransfer", "trace_one_word", "JOURNEY_CATEGORIES"]

# Span categories of the one-word journey, in datapath order.  The first
# entry differs by mode: AU starts at the snooped CPU store, DU at the
# blocking vmmc send call (which covers the whole source-read phase).
JOURNEY_CATEGORIES: Dict[str, List[str]] = {
    "au": ["cpu.store", "nic.packetize", "nic.inject", "mesh.transit",
           "nic.dma_in", "cpu.poll"],
    "du": ["vmmc.send", "nic.packetize", "nic.inject", "mesh.transit",
           "nic.dma_in", "cpu.poll"],
}

_STAGE_LABELS = {
    "cpu.store": "sender store (traced)",
    "vmmc.send": "vmmc send + DU source read (traced)",
    "nic.packetize": "snoop/packetize + FIFO entry (traced)",
    "nic.inject": "arbiter + NIC injection (traced)",
    "mesh.transit": "mesh transit (traced)",
    "nic.dma_in": "IPT + incoming DMA (traced)",
    "cpu.poll": "receiver poll detect (traced)",
}


@dataclass
class TracedTransfer:
    """Everything the trace CLI reports about one traced transfer.

    Holds the live tracer (for export) plus the measured and analytic
    budgets.  ``agreement_error`` is the relative difference of the two
    totals — the acceptance criterion bounds it at 1%.
    """

    mode: str
    cache_mode: CacheMode
    system: ShrimpSystem
    measured: LatencyBudget
    analytic: LatencyBudget
    journey: List[Span] = field(default_factory=list)

    @property
    def tracer(self) -> Tracer:
        """The machine tracer holding the run's spans and records."""
        return self.system.machine.tracer

    @property
    def agreement_error(self) -> float:
        """Relative |measured - analytic| / analytic of the totals."""
        return abs(self.measured.total - self.analytic.total) / self.analytic.total

    def chrome_json(self, indent: Optional[int] = None) -> str:
        """The run as Chrome trace_event JSON."""
        return chrome_trace_json(self.tracer, indent=indent)

    def write_chrome_trace(self, path) -> str:
        """Write the Chrome trace JSON to ``path``; returns the path."""
        return write_chrome_trace(self.tracer, path)

    def utilization_report(self) -> str:
        """The machine's per-resource utilization table."""
        return self.system.machine.utilization_report(min_count=1)

    def report(self) -> str:
        """Measured and analytic budgets side by side, plus the verdict."""
        lines = [self.measured.report(), "", self.analytic.report(), ""]
        lines.append(
            "agreement: measured %.4f us vs analytic %.4f us (%.3f%% apart)"
            % (self.measured.total, self.analytic.total,
               100.0 * self.agreement_error)
        )
        return "\n".join(lines)


def _last_span(tracer: Tracer, category: str, track_prefix: str = "") -> Span:
    spans = tracer.spans_of(category, track_prefix)
    closed = [s for s in spans if s.closed]
    if not closed:
        raise RuntimeError(
            "no closed %r span on track %r* — datapath instrumentation drifted"
            % (category, track_prefix)
        )
    return closed[-1]


def trace_one_word(
    mode: str = "au",
    cache_mode: CacheMode = CacheMode.WRITE_THROUGH,
    config: Optional[MachineConfig] = None,
) -> TracedTransfer:
    """Trace one word from node 0 to node 1; returns the span journey.

    ``mode`` is ``"au"`` (snooped store through a non-combining binding,
    the 4.75/3.7 us path) or ``"du"`` (blocking deliberate update, the
    7.6 us path).  Setup traffic (export/import/bind handshakes) is
    cleared from the tracer before the measured transfer so the exported
    trace shows exactly one journey.
    """
    if mode not in JOURNEY_CATEGORIES:
        raise ValueError("mode must be 'au' or 'du', not %r" % mode)
    automatic = mode == "au"
    system = ShrimpSystem(config, trace=True)
    tracer = system.machine.tracer
    rdv = Rendezvous(system)
    page_size = system.config.page_size
    word = struct.pack("<I", 0x5EED5EED)

    def receiver(proc):
        ep = attach(system, proc)
        recv_vaddr = ep.alloc_buffer(page_size, cache_mode=cache_mode)
        recv = yield from ep.export(recv_vaddr, page_size)
        rdv.put("export", (proc.node.node_id, recv.export_id))
        yield rdv.get("armed")
        yield from proc.poll(recv_vaddr, 4, lambda b: b == word)

    def sender(proc):
        ep = attach(system, proc)
        peer_node, peer_export = yield rdv.get("export")
        imported = yield from ep.import_buffer(peer_node, peer_export)
        if automatic:
            src = ep.alloc_buffer(page_size, cache_mode=cache_mode)
            # Non-combining binding: the latency-optimal single-word
            # configuration (a combining page would wait out its timer).
            yield from ep.bind(src, imported, combining=False)
        else:
            src = proc.space.mmap(page_size, cache_mode=cache_mode)
            proc.poke(src, word)
        rdv.put("armed", True)
        # Give the receiver's first (missing) poll check a moment to
        # complete, then drop all setup spans: the measured journey is
        # the only traffic left in the trace.
        yield proc.sim.timeout(2.0)
        tracer.clear()
        if automatic:
            yield from proc.write(src, word)
        else:
            yield from ep.send(imported, src, 4)

    recv_proc = system.spawn(1, receiver, name="trace-recv")
    send_proc = system.spawn(0, sender, name="trace-send")
    system.run_processes([recv_proc, send_proc])

    categories = JOURNEY_CATEGORIES[mode]
    prefix = {"cpu.store": "n0.", "vmmc.send": "n0.", "nic.packetize": "n0.",
              "nic.inject": "n0.", "mesh.transit": "", "nic.dma_in": "n1.",
              "cpu.poll": "n1."}
    journey = [_last_span(tracer, cat, prefix[cat]) for cat in categories]
    measured = LatencyBudget(
        "%s one-word transfer, traced (%s)" % (mode.upper(), cache_mode.value),
        [Stage(_STAGE_LABELS[span.category], span.duration())
         for span in journey],
    )
    builder = au_word_budget if automatic else du_word_budget
    analytic = builder(config=system.config, cache_mode=cache_mode, hops=1)
    return TracedTransfer(
        mode=mode,
        cache_mode=cache_mode,
        system=system,
        measured=measured,
        analytic=analytic,
        journey=journey,
    )
