"""In-simulation applications built on the SHRIMP communication stack.

The paper evaluates the libraries with microbenchmarks; these packages
consume them the way the ROADMAP north-star demands — as the transport
of an actual service.  Currently: ``repro.apps.kv``, a sharded
key-value service (docs/WORKLOADS.md).
"""
