"""A sharded key-value service running inside the simulated machine.

The first *application* layer of the repo: one shard server per mesh
node, consistent-hash placement with replication, and a pluggable
transport — SHRIMP RPC for request/response, sockets for streaming
bulk get/scan, NX (plus the collectives library) for replication
fan-out.  Driven by ``repro.workload``; see docs/WORKLOADS.md.
"""

from .admission import (
    LANE_BACKGROUND,
    LANE_BULK,
    LANE_CHEAP,
    AdmissionController,
    AdmissionQueue,
    KvRejectedError,
)
from .client import KVClient
from .hashing import HashRing, stable_hash
from .protocol import (
    KEY_BOUND,
    ST_ERROR,
    ST_MISS,
    ST_OK,
    ST_REJECTED,
    VALUE_BOUND,
)
from .replication import (
    VERSION_ZERO,
    AntiEntropyStats,
    MerkleTree,
    Version,
    wins,
)
from .server import KV_IDL, apply_cost
from .service import KVService
from .store import ShardStore

__all__ = [
    "AdmissionController",
    "AdmissionQueue",
    "AntiEntropyStats",
    "HashRing",
    "KEY_BOUND",
    "KVClient",
    "KVService",
    "KV_IDL",
    "KvRejectedError",
    "LANE_BACKGROUND",
    "LANE_BULK",
    "LANE_CHEAP",
    "MerkleTree",
    "ST_ERROR",
    "ST_MISS",
    "ST_OK",
    "ST_REJECTED",
    "ShardStore",
    "VALUE_BOUND",
    "VERSION_ZERO",
    "Version",
    "apply_cost",
    "stable_hash",
    "wins",
]
