"""Wire formats of the KV service.

Two encodings share these constants:

* the socket protocol — length-prefixed request/response frames over a
  SHRIMP stream socket, plus a streamed record format for SCAN; and
* the replication records the shard servers exchange over NX.

The SHRIMP RPC transport needs no framing of its own (the IDL in
``server.py`` is the contract), but reuses the status codes.

All integers are little-endian, matching the rest of the simulated
machine.  Bounds are part of the protocol: keys are at most
``KEY_BOUND`` bytes, values at most ``VALUE_BOUND`` — small enough
that an RPC argument area stays a couple of pages and a replication
record always fits one NX small-message slot.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

__all__ = [
    "KEY_BOUND", "VALUE_BOUND",
    "OP_GET", "OP_PUT", "OP_DELETE", "OP_SCAN", "OP_QUIT", "OP_TRACE",
    "ST_OK", "ST_MISS", "ST_ERROR", "ST_REJECTED",
    "REQ_HEADER", "RESP_HEADER", "SCAN_RECORD", "SCAN_END", "SCAN_REJECT",
    "REPL_DATA", "REPL_STOP", "REPL_VDATA", "REPL_RECORD", "REPL_VRECORD",
    "TRACE_CTX", "VGET_BOUND",
    "MULTI_GET_MAX", "MG_REQ_BOUND", "MG_RESP_BOUND",
    "encode_request", "decode_request_header",
    "encode_response", "decode_response_header",
    "encode_scan_record", "scan_end_record", "scan_reject_record",
    "encode_repl_record", "decode_repl_record",
    "encode_vrepl_record", "decode_vrepl_record",
    "encode_multi_get_request", "decode_multi_get_request",
    "encode_multi_get_response", "decode_multi_get_response",
    "encode_trace_prefix", "decode_trace_ctx",
]

KEY_BOUND = 64       # bytes; "k%06d"-style workload keys use 7
VALUE_BOUND = 1024   # bytes per value

# Batched reads: one multi_get RPC carries up to MULTI_GET_MAX keys and
# returns per-key (status, value) entries.  The bounds size the batch
# IDL's opaque slots — the v2 binding's buffer grows to fit the worst
# case, which is why batching is a separate interface version rather
# than a new procedure on v1 (v1 layouts must stay bit-identical).
MULTI_GET_MAX = 8
_MG_COUNT = struct.Struct("<H")          # number of keys / entries
_MG_KEY = struct.Struct("<H")            # key_len
_MG_ENTRY = struct.Struct("<BH")         # status, value_len
MG_REQ_BOUND = _MG_COUNT.size + MULTI_GET_MAX * (_MG_KEY.size + KEY_BOUND)
MG_RESP_BOUND = _MG_COUNT.size + MULTI_GET_MAX * (_MG_ENTRY.size + VALUE_BOUND)

# Socket request ops.
OP_GET = 1
OP_PUT = 2
OP_DELETE = 3
OP_SCAN = 4   # value_len field carries the record limit
OP_QUIT = 5   # client is done with this connection
OP_TRACE = 6  # self-describing trace-context prefix frame: a traced
              # client sends it immediately before a request; the body
              # (value_len == TRACE_CTX.size) carries [trace_id][psid].
              # Untraced runs never send it, keeping the stream
              # byte-identical (docs/OBSERVABILITY.md).

# Status codes (shared with the RPC transport's int returns).
ST_OK = 0
ST_MISS = 1
ST_ERROR = 2
ST_REJECTED = 3  # admission control shed the request before serving it
                 # (docs/OVERLOAD.md) — retryable, unlike ST_ERROR

REQ_HEADER = struct.Struct("<BHI")    # op, key_len, value_len (or scan limit)
RESP_HEADER = struct.Struct("<BI")    # status, value_len
SCAN_RECORD = struct.Struct("<HI")    # key_len, value_len
SCAN_END = 0xFFFF                     # key_len sentinel closing a scan stream
SCAN_REJECT = 0xFFFE                  # key_len sentinel: scan shed by admission

# Replication record kinds (first byte of the NX payload).
REPL_DATA = 1    # upsert (value present) or delete (value_len == SCAN_END-free 0 with flag)
REPL_STOP = 2    # sender is done; one per peer at shutdown
REPL_VDATA = 3   # versioned record: REPL_RECORD grown by an (epoch,
                 # writer) dot, applied through the store's LWW guard
                 # (versioned service only — docs/REPLICATION.md)
REPL_RECORD = struct.Struct("<BBHH")  # kind, is_delete, key_len, value_len
REPL_VRECORD = struct.Struct("<BBHHII")  # ... plus epoch, writer

TRACE_CTX = struct.Struct("<II")      # trace_id, parent span sid

# A versioned GET reply: status byte, 8-byte version dot, value bytes.
VGET_BOUND = 1 + 8 + VALUE_BOUND


def encode_request(op: int, key: str, value: bytes = b"",
                   scan_limit: int = 0) -> bytes:
    """One socket request frame (header + key + value)."""
    kb = key.encode()
    if len(kb) > KEY_BOUND:
        raise ValueError("key exceeds %d bytes" % KEY_BOUND)
    if len(value) > VALUE_BOUND:
        raise ValueError("value exceeds %d bytes" % VALUE_BOUND)
    third = scan_limit if op == OP_SCAN else len(value)
    return REQ_HEADER.pack(op, len(kb), third) + kb + value


def decode_request_header(data: bytes) -> Tuple[int, int, int]:
    """``(op, key_len, value_len_or_limit)`` from a request header."""
    return REQ_HEADER.unpack(data[:REQ_HEADER.size])


def encode_response(status: int, value: bytes = b"") -> bytes:
    """One socket response frame."""
    return RESP_HEADER.pack(status, len(value)) + value


def decode_response_header(data: bytes) -> Tuple[int, int]:
    """``(status, value_len)`` from a response header."""
    return RESP_HEADER.unpack(data[:RESP_HEADER.size])


def encode_scan_record(key: str, value: bytes) -> bytes:
    """One streamed SCAN record."""
    kb = key.encode()
    return SCAN_RECORD.pack(len(kb), len(value)) + kb + value


def scan_end_record() -> bytes:
    """The sentinel record terminating a SCAN stream."""
    return SCAN_RECORD.pack(SCAN_END, 0)


def scan_reject_record() -> bytes:
    """The sentinel record closing a SCAN the server shed (admission)."""
    return SCAN_RECORD.pack(SCAN_REJECT, 0)


def encode_multi_get_request(keys: List[str]) -> bytes:
    """The packed key list of one multi_get call."""
    if len(keys) > MULTI_GET_MAX:
        raise ValueError("multi_get carries at most %d keys" % MULTI_GET_MAX)
    parts = [_MG_COUNT.pack(len(keys))]
    for key in keys:
        kb = key.encode()
        if len(kb) > KEY_BOUND:
            raise ValueError("key exceeds %d bytes" % KEY_BOUND)
        parts.append(_MG_KEY.pack(len(kb)) + kb)
    return b"".join(parts)


def decode_multi_get_request(blob: bytes) -> List[str]:
    """The key list from a multi_get request blob."""
    (count,) = _MG_COUNT.unpack_from(blob)
    off = _MG_COUNT.size
    keys = []
    for _ in range(count):
        (klen,) = _MG_KEY.unpack_from(blob, off)
        off += _MG_KEY.size
        keys.append(bytes(blob[off:off + klen]).decode())
        off += klen
    return keys


def encode_multi_get_response(entries: List[Tuple[int, Optional[bytes]]]) -> bytes:
    """The packed (status, value-or-None) entries of a multi_get reply."""
    parts = [_MG_COUNT.pack(len(entries))]
    for status, value in entries:
        body = value or b""
        parts.append(_MG_ENTRY.pack(status, len(body)) + body)
    return b"".join(parts)


def decode_multi_get_response(blob: bytes) -> List[Tuple[int, Optional[bytes]]]:
    """Per-key ``(status, value-or-None)`` entries from a reply blob."""
    (count,) = _MG_COUNT.unpack_from(blob)
    off = _MG_COUNT.size
    entries: List[Tuple[int, Optional[bytes]]] = []
    for _ in range(count):
        status, vlen = _MG_ENTRY.unpack_from(blob, off)
        off += _MG_ENTRY.size
        value = bytes(blob[off:off + vlen]) if status == ST_OK else None
        off += vlen
        entries.append((status, value))
    return entries


def encode_repl_record(kind: int, key: str = "",
                       value: Optional[bytes] = None) -> bytes:
    """One NX replication record (fits a small-message slot)."""
    kb = key.encode()
    is_delete = 1 if (kind == REPL_DATA and value is None) else 0
    body = b"" if value is None else value
    return REPL_RECORD.pack(kind, is_delete, len(kb), len(body)) + kb + body


def encode_trace_prefix(trace_id: int, parent_sid: int) -> bytes:
    """The OP_TRACE prefix frame announcing the next request's context."""
    return (REQ_HEADER.pack(OP_TRACE, 0, TRACE_CTX.size)
            + TRACE_CTX.pack(trace_id, parent_sid))


def decode_trace_ctx(data: bytes) -> Optional[Tuple[int, int]]:
    """``(trace_id, parent_sid)`` from an OP_TRACE body (None if zero)."""
    trace_id, parent_sid = TRACE_CTX.unpack(data[:TRACE_CTX.size])
    if trace_id == 0:
        return None
    return trace_id, parent_sid


def decode_repl_record(data: bytes) -> Tuple[int, str, Optional[bytes]]:
    """``(kind, key, value-or-None)``; None value means delete."""
    kind, is_delete, klen, vlen = REPL_RECORD.unpack(data[:REPL_RECORD.size])
    off = REPL_RECORD.size
    key = data[off:off + klen].decode()
    value = None if is_delete else data[off + klen:off + klen + vlen]
    if kind == REPL_STOP:
        value = None
    return kind, key, value


def encode_vrepl_record(key: str, version: Tuple[int, int],
                        value: Optional[bytes]) -> bytes:
    """One versioned NX replication record (still one small message)."""
    kb = key.encode()
    body = b"" if value is None else value
    return (REPL_VRECORD.pack(REPL_VDATA, 1 if value is None else 0,
                              len(kb), len(body), version[0], version[1])
            + kb + body)


def decode_vrepl_record(
        data: bytes) -> Tuple[str, Tuple[int, int], Optional[bytes]]:
    """``(key, version, value-or-None)`` from a REPL_VDATA payload."""
    _kind, is_delete, klen, vlen, epoch, writer = REPL_VRECORD.unpack(
        data[:REPL_VRECORD.size])
    off = REPL_VRECORD.size
    key = data[off:off + klen].decode()
    value = None if is_delete else data[off + klen:off + klen + vlen]
    return key, (epoch, writer), value
