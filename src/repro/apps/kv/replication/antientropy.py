"""The background anti-entropy sweeper: Merkle sync over an NX world.

One sweeper rank runs per node, in its *own* NX world (its own
rendezvous and message types, so it never interferes with the
replication fan-out world).  Rounds are root-gated: rank 0 broadcasts a
continue/stop flag through the collectives layer, every rank works the
same deterministic round-robin tournament of node pairs (each sub-round
is a perfect matching, so pair exchanges never deadlock), and per-round
divergence totals are reduced back to rank 0, which appends the
``(time, divergent keys)`` convergence series — the metric the
``convergence:`` report line and the CI artifact render.

One pair exchange, initiator ``a`` (the lower rank) and responder
``b``:

1. ``a`` sends its pair tree's **root** (8 bytes, one small message);
   ``b`` acks ``in_sync`` — the common case costs two tiny messages.
2. Divergent: ``b`` ships its **leaf-digest page** (``8 * n_leaves``
   bytes — past the small-message payload, so it rides the NX bulk
   rendezvous path), ``a`` diffs it and sends the divergent bucket
   list plus its **key/version listing** for those buckets.
3. ``b`` decides per key who wins (:func:`~.versions.wins` order),
   ships the records ``a`` lacks, and asks for the ones it lacks;
   both sides apply through the store's LWW guard, charging the
   background-lane apply cost like replication does.

Spans: ``kv.antientropy.round`` (rank 0), ``kv.antientropy.pair`` and
``kv.antientropy.page`` (initiator) — all guarded, so untraced runs pay
nothing (docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ....libs import collectives
from ....vmmc import VmmcError, VmmcTimeoutError
from ..admission import LANE_BACKGROUND
from .merkle import MerkleTree
from .versions import Version

__all__ = [
    "AntiEntropyStats", "make_antientropy_program", "pair_schedule",
]

# Message types of the sweeper world (disjoint from REPL_TYPE; the
# world is separate anyway, but grep-able constants help).
AE_ROOT = 0x6B760010
AE_ACK = 0x6B760011
AE_LEAVES = 0x6B760012
AE_BUCKETS = 0x6B760013
AE_KEYS = 0x6B760014
AE_RECORDS = 0x6B760015
AE_WANT = 0x6B760016

_ROOT = struct.Struct("<Q")
_ACK = struct.Struct("<B")
_CHUNK = struct.Struct("<HB")          # entry count, last-chunk flag
_BUCKET = struct.Struct("<H")
_KEY_ENTRY = struct.Struct("<HIIQ")    # key_len, epoch, writer, digest
_RECORD = struct.Struct("<HIIBH")      # key_len, epoch, writer, tomb, val_len

#: Chunk payload bound; listings and record batches split past it.
AE_CHUNK_BYTES = 8192
_BUF_BYTES = 16384

#: Per-round (divergent, repaired) ride one reduction as
#: ``divergent * _COUNT_PACK + repaired`` — sums decompose exactly as
#: long as each stays under the radix, far beyond any real keyspace.
_COUNT_PACK = 1 << 31


class AntiEntropyStats:
    """Sweep counters plus the divergent-keys-over-time series.

    Registered in the machine metrics registry (``high_water`` is the
    current divergence backlog, so the telemetry sampler renders a
    live backlog row next to the replication queues).
    """

    name = "kv-antientropy"

    def __init__(self):
        self.rounds = 0
        self.repaired = 0
        self.divergent_last = 0
        self.divergent_high = 0
        self.series: List[Tuple[float, int]] = []
        self.converged_at: Optional[float] = None
        self.sweep_failures = 0

    def record_round(self, now: float, divergent: int,
                     repaired: int) -> None:
        """Append one completed round's totals (rank 0 only)."""
        self.rounds += 1
        self.repaired += repaired
        self.divergent_last = divergent
        self.divergent_high = max(self.divergent_high, divergent)
        self.series.append((now, divergent))
        if divergent == 0:
            if self.converged_at is None:
                self.converged_at = now
        else:
            self.converged_at = None

    def metrics_snapshot(self, now: Optional[float] = None) -> dict:
        """Registry row: rounds swept and the current divergence backlog."""
        return {
            "name": self.name,
            "kind": "antientropy",
            "count": self.rounds,
            "repaired": self.repaired,
            "sweep_failures": self.sweep_failures,
            "mean_depth": 0.0,
            "high_water": self.divergent_last,
        }

    def series_payload(self) -> List[Dict[str, float]]:
        """The convergence series as JSON-ready rows."""
        return [{"t_us": t, "divergent": n} for t, n in self.series]


def pair_schedule(size: int) -> List[Dict[int, int]]:
    """The round-robin tournament over ``size`` ranks.

    Each sub-round maps every participating rank to its peer (a perfect
    matching, odd sizes sit one rank out per sub-round), covering every
    unordered pair exactly once.  Deterministic in ``size`` alone, so
    all ranks compute the same schedule without exchanging it.
    """
    ids: List[Optional[int]] = list(range(size))
    if size % 2:
        ids.append(None)
    m = len(ids)
    rounds: List[Dict[int, int]] = []
    arr = ids[:]
    for _ in range(max(0, m - 1)):
        pairs: Dict[int, int] = {}
        for i in range(m // 2):
            x, y = arr[i], arr[m - 1 - i]
            if x is not None and y is not None:
                pairs[x] = y
                pairs[y] = x
        rounds.append(pairs)
        arr = [arr[0], arr[-1]] + arr[1:-1]
    return rounds


def _pack_chunks(payloads: List[bytes]) -> List[bytes]:
    """Group encoded entries into chunk frames under the byte bound."""
    chunks: List[bytes] = []
    batch: List[bytes] = []
    size = 0
    for blob in payloads:
        if batch and size + len(blob) > AE_CHUNK_BYTES:
            chunks.append(_CHUNK.pack(len(batch), 0) + b"".join(batch))
            batch, size = [], 0
        batch.append(blob)
        size += len(blob)
    chunks.append(_CHUNK.pack(len(batch), 1) + b"".join(batch))
    return chunks


def _send_chunks(nx, sbuf: int, mtype: int, payloads: List[bytes],
                 to: int):
    """Ship encoded entries as chunk frames (generator)."""
    for chunk in _pack_chunks(payloads):
        yield from nx.proc.write(sbuf, chunk)
        yield from nx.csend(mtype, sbuf, len(chunk), to=to)


def _recv_chunks(nx, rbuf: int, mtype: int, sender: int):
    """Receive chunk frames until the last-flag (generator -> blobs)."""
    frames: List[bytes] = []
    while True:
        nbytes = yield from nx.crecvx(mtype, rbuf, _BUF_BYTES,
                                      nodesel=sender)
        frame = nx.proc.peek(rbuf, nbytes)
        count, last = _CHUNK.unpack_from(frame)
        frames.append(bytes(frame[_CHUNK.size:]))
        if last:
            return frames


def _encode_listing(key: str, version: Version, digest: int) -> bytes:
    kb = key.encode()
    return _KEY_ENTRY.pack(len(kb), version[0], version[1], digest) + kb


def _decode_listing(frames: List[bytes]) -> Dict[str, Tuple[Version, int]]:
    out: Dict[str, Tuple[Version, int]] = {}
    for frame in frames:
        off = 0
        while off < len(frame):
            klen, epoch, writer, digest = _KEY_ENTRY.unpack_from(frame, off)
            off += _KEY_ENTRY.size
            key = frame[off:off + klen].decode()
            off += klen
            out[key] = ((epoch, writer), digest)
    return out


def _encode_record(key: str, version: Version,
                   value: Optional[bytes]) -> bytes:
    kb = key.encode()
    body = b"" if value is None else bytes(value)
    return (_RECORD.pack(len(kb), version[0], version[1],
                         1 if value is None else 0, len(body)) + kb + body)


def _decode_records(frames: List[bytes]):
    records: List[Tuple[str, Version, Optional[bytes]]] = []
    for frame in frames:
        off = 0
        while off < len(frame):
            klen, epoch, writer, tomb, vlen = _RECORD.unpack_from(frame, off)
            off += _RECORD.size
            key = frame[off:off + klen].decode()
            off += klen
            value = None if tomb else frame[off:off + vlen]
            off += vlen
            records.append((key, (epoch, writer), value))
    return records


def _apply_records(service, nx, rank: int, records) -> int:
    """Apply shipped records through the LWW guard (generator -> count).

    Charges the background-lane apply cost per record, exactly like the
    replication receive loop, so repair work cannot starve client ops.
    """
    from ..server import apply_cost

    proc = nx.proc
    repaired = 0
    store = service.stores[rank]
    for key, version, value in records:
        yield from proc.compute(
            apply_cost(0 if value is None else len(value)),
            priority=LANE_BACKGROUND)
        if store.apply_versioned(key, version, value):
            repaired += 1
            yield from service.region_store(rank, proc, key, value)
    return repaired


def _exchange(service, nx, rank: int, peer: int, sbuf: int, rbuf: int):
    """One pair exchange (generator -> ``(divergent, repaired)``)."""
    proc = nx.proc
    tree: MerkleTree = service.merkle[rank][peer]
    store = service.stores[rank]
    start = proc.sim.now
    tracer = proc.tracer
    if rank < peer:
        # Initiator: root probe, leaf-page diff, listing, exchange.
        divergent = repaired = 0
        try:
            yield from proc.write(sbuf, _ROOT.pack(tree.root()))
            yield from nx.csend(AE_ROOT, sbuf, _ROOT.size, to=peer)
            yield from nx.crecvx(AE_ACK, rbuf, _ACK.size, nodesel=peer)
            if proc.peek(rbuf, 1)[0]:
                return 0, 0
            page_bytes = 8 * tree.n_leaves
            page_start = proc.sim.now
            yield from nx.crecvx(AE_LEAVES, rbuf, page_bytes, nodesel=peer)
            if tracer.enabled:
                tracer.complete("kv.antientropy.page",
                                "leaf page from n%d" % peer, page_start,
                                track=proc.trace_track,
                                data={"peer": peer, "bytes": page_bytes})
            theirs = MerkleTree.unpack_leaves(
                proc.peek(rbuf, page_bytes), tree.n_leaves)
            buckets = tree.diff_leaves(theirs)
            yield from _send_chunks(
                nx, sbuf, AE_BUCKETS,
                [_BUCKET.pack(i) for i in buckets], to=peer)
            listing: List[bytes] = []
            for index in buckets:
                entries = tree.leaf_entries(index)
                for key in sorted(entries):
                    listing.append(_encode_listing(
                        key, store.version_of(key), entries[key]))
            yield from _send_chunks(nx, sbuf, AE_KEYS, listing, to=peer)
            frames = yield from _recv_chunks(nx, rbuf, AE_RECORDS,
                                             sender=peer)
            records = _decode_records(frames)
            repaired += yield from _apply_records(service, nx, rank,
                                                  records)
            want_frames = yield from _recv_chunks(nx, rbuf, AE_WANT,
                                                  sender=peer)
            wanted = [key for key, _v, _d
                      in _decode_records(want_frames)]
            replies: List[bytes] = []
            for key in wanted:
                replies.append(_encode_record(
                    key, store.version_of(key), store.data.get(key)))
            yield from _send_chunks(nx, sbuf, AE_RECORDS, replies, to=peer)
            divergent = len({key for key, _v, _val in records} |
                            set(wanted))
            return divergent, repaired
        finally:
            if tracer.enabled:
                tracer.complete("kv.antientropy.pair",
                                "n%d~n%d" % (rank, peer), start,
                                track=proc.trace_track,
                                data={"peer": peer,
                                      "divergent": divergent})
    # Responder: answer the probe, ship the page, settle the listing.
    yield from nx.crecvx(AE_ROOT, rbuf, _ROOT.size, nodesel=peer)
    (their_root,) = _ROOT.unpack(bytes(proc.peek(rbuf, _ROOT.size)))
    in_sync = 1 if their_root == tree.root() else 0
    yield from proc.write(sbuf, _ACK.pack(in_sync))
    yield from nx.csend(AE_ACK, sbuf, _ACK.size, to=peer)
    if in_sync:
        return 0, 0
    page = tree.pack_leaves()
    yield from proc.write(sbuf, page)
    yield from nx.csend(AE_LEAVES, sbuf, len(page), to=peer)
    bucket_frames = yield from _recv_chunks(nx, rbuf, AE_BUCKETS,
                                            sender=peer)
    buckets: List[int] = []
    for frame in bucket_frames:
        for off in range(0, len(frame), _BUCKET.size):
            buckets.append(_BUCKET.unpack_from(frame, off)[0])
    key_frames = yield from _recv_chunks(nx, rbuf, AE_KEYS, sender=peer)
    their_listing = _decode_listing(key_frames)
    to_send: List[str] = []
    to_want: List[str] = []
    for index in buckets:
        mine = tree.leaf_entries(index)
        keys = set(mine) | {key for key in their_listing
                            if tree.leaf_of(key) == index}
        for key in sorted(keys):
            my_digest = mine.get(key)
            their = their_listing.get(key)
            if their is None:
                to_send.append(key)
                continue
            their_version, their_digest = their
            if my_digest is None:
                to_want.append(key)
                continue
            if my_digest == their_digest:
                continue
            my_version = store.version_of(key)
            if my_version > their_version:
                to_send.append(key)
            elif my_version < their_version:
                to_want.append(key)
            else:
                # Same dot, different bytes (unversioned races): ship
                # both ways and let the value-hash tie-break settle it
                # identically on each side.
                to_send.append(key)
                to_want.append(key)
    yield from _send_chunks(
        nx, sbuf, AE_RECORDS,
        [_encode_record(key, store.version_of(key), store.data.get(key))
         for key in to_send], to=peer)
    yield from _send_chunks(
        nx, sbuf, AE_WANT,
        [_encode_record(key, (0, 0), None) for key in to_want], to=peer)
    frames = yield from _recv_chunks(nx, rbuf, AE_RECORDS, sender=peer)
    repaired = yield from _apply_records(service, nx, rank,
                                         _decode_records(frames))
    return 0, repaired


def make_antientropy_program(service, rank: int):
    """The per-node sweeper rank program (for a dedicated ``nx_world``).

    Rounds continue until the service requests a stop (``ae_stop``)
    *and* the latest round found zero divergent keys — so a run's final
    state is always converged unless the sweep itself died to faults
    (counted in ``sweep_failures``; the next sweep repairs).
    """
    size = len(service.nodes)

    def program(nx):
        proc = nx.proc
        sbuf = proc.space.mmap(_BUF_BYTES)
        rbuf = proc.space.mmap(_BUF_BYTES)
        flag = proc.space.mmap(proc.config.page_size)
        stats: AntiEntropyStats = service.ae_stats
        schedule = pair_schedule(size)
        round_no = 0
        tracer = proc.tracer
        try:
            while True:
                if rank == 0:
                    go = 1
                    if service.ae_stop and stats.rounds > 0 \
                            and stats.divergent_last == 0:
                        go = 0
                    if round_no >= service.antientropy_max_rounds:
                        go = 0
                    if go and round_no > 0:
                        yield proc.sim.timeout(
                            service.antientropy_interval_us)
                    proc.poke(flag, bytes([go]))
                yield from collectives.broadcast(nx, flag, 1, root=0)
                if proc.peek(flag, 1)[0] == 0:
                    break
                round_no += 1
                span = None
                if rank == 0 and tracer.enabled:
                    span = tracer.begin(
                        "kv.antientropy.round", "round %d" % round_no,
                        track=proc.trace_track, data={"round": round_no})
                divergent = repaired = 0
                try:
                    for pairs in schedule:
                        peer = pairs.get(rank)
                        if peer is None or peer >= size:
                            continue
                        d, r = yield from _exchange(service, nx, rank,
                                                    peer, sbuf, rbuf)
                        divergent += d
                        repaired += r
                finally:
                    tracer.end(span)
                # ONE reduce per round, both counts packed into a single
                # int: two back-to-back reduce_int calls share a message
                # type, so a fast rank's second contribution could be
                # consumed into a slow parent's first reduction.
                packed = yield from collectives.reduce_int(
                    nx, divergent * _COUNT_PACK + repaired,
                    lambda a, b: a + b, root=0)
                if rank == 0:
                    stats.record_round(proc.sim.now,
                                       packed // _COUNT_PACK,
                                       packed % _COUNT_PACK)
        except (VmmcTimeoutError, VmmcError):
            # A peer died mid-sweep (only possible under an armed fault
            # plan): abandon this rank's sweep cleanly; divergence stays
            # measurable and the next sweep repairs it.
            stats.sweep_failures += 1
        return round_no

    return program
