"""Replica correctness: version dots, Merkle trees, and anti-entropy.

Three cooperating pieces (docs/REPLICATION.md):

* :mod:`.versions` — per-key ``(epoch, writer)`` dots and the
  convergent last-writer-wins order every apply path shares.
* :mod:`.merkle` — the incrementally-updated hash tree each replica
  pair maintains over its common key range.
* :mod:`.antientropy` — the background sweeper that exchanges digests
  over a dedicated NX world and ships only divergent records.
"""

from .antientropy import (
    AntiEntropyStats,
    make_antientropy_program,
    pair_schedule,
)
from .merkle import DEFAULT_LEAVES, MerkleTree
from .versions import (
    VERSION_STRUCT,
    VERSION_ZERO,
    Version,
    entry_digest,
    pack_version,
    unpack_version,
    wins,
)

__all__ = [
    "AntiEntropyStats",
    "make_antientropy_program",
    "pair_schedule",
    "DEFAULT_LEAVES",
    "MerkleTree",
    "VERSION_STRUCT",
    "VERSION_ZERO",
    "Version",
    "entry_digest",
    "pack_version",
    "unpack_version",
    "wins",
]
