"""Per-key version dots and the convergent last-writer-wins order.

A version is a ``(epoch, writer)`` pair: the write epoch (a per-key
counter bumped by whichever node or client coordinated the write) and a
nonzero writer id breaking ties between concurrent writes at the same
epoch.  The pair ``VERSION_ZERO == (0, 0)`` is reserved for the
unversioned default path: every replica stamps it on plain writes, so
replicas that hold the same bytes also hold the same version metadata
and their Merkle digests agree (docs/REPLICATION.md).

The total order is lexicographic on ``(epoch, writer)`` with a
deterministic value-hash tie-break at equal versions — both sides of an
anti-entropy exchange evaluate :func:`wins` on the same inputs and pick
the same survivor, which is what makes the sweep convergent.

This is a deliberate simplification of full per-key version vectors:
one dot per key rather than one counter per writer.  Concurrent writes
are *ordered*, not surfaced as siblings — the read-repair and quorum
layers only need a convergent total order (docs/REPLICATION.md).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from ..hashing import stable_hash

__all__ = [
    "VERSION_ZERO", "VERSION_STRUCT", "Version",
    "pack_version", "unpack_version", "wins", "entry_digest",
]

Version = Tuple[int, int]

#: The unversioned default-path stamp (plain put/delete/replication).
VERSION_ZERO: Version = (0, 0)

#: Wire form: epoch, writer — little-endian like the rest of the machine.
VERSION_STRUCT = struct.Struct("<II")

#: A tombstone's contribution to digests (no value bytes can collide
#: with it because stored values are hashed with a presence prefix).
_TOMBSTONE_TAG = b"\x00"
_VALUE_TAG = b"\x01"


def pack_version(version: Version) -> bytes:
    """The 8-byte wire form of a version dot."""
    return VERSION_STRUCT.pack(version[0], version[1])


def unpack_version(blob: bytes) -> Version:
    """The version dot from its 8-byte wire form."""
    epoch, writer = VERSION_STRUCT.unpack(bytes(blob[:VERSION_STRUCT.size]))
    return (epoch, writer)


def _value_rank(value: Optional[bytes]) -> int:
    """The deterministic tie-break rank of a value (tombstone lowest)."""
    if value is None:
        return -1
    return stable_hash(_VALUE_TAG + bytes(value))


def wins(new_version: Version, new_value: Optional[bytes],
         cur_version: Version, cur_value: Optional[bytes]) -> bool:
    """Whether ``(new_version, new_value)`` replaces the current record.

    Strictly-newer versions win outright; at equal versions the higher
    value hash wins (a tombstone loses to any value).  Equal version
    *and* equal rank is a no-op — applying it would churn the Merkle
    tree for nothing.
    """
    if new_version != cur_version:
        return new_version > cur_version
    return _value_rank(new_value) > _value_rank(cur_value)


def entry_digest(key: str, version: Version,
                 value: Optional[bytes]) -> int:
    """The 64-bit digest one record contributes to a Merkle leaf.

    Covers the key, the version dot, and the value bytes (or the
    tombstone tag), so two replicas agree on a leaf digest exactly when
    they agree on every record in it.
    """
    payload = (key.encode() + _TOMBSTONE_TAG + pack_version(version)
               + (_VALUE_TAG + bytes(value) if value is not None
                  else _TOMBSTONE_TAG))
    return stable_hash(payload)
