"""The incrementally-updated hash tree over one replica pair's keyspace.

Layout: a complete binary tree over ``n_leaves`` fixed buckets (heap
array, root at index 1, leaves at ``[n_leaves, 2*n_leaves)``).  A key
hashes to one bucket with the same interpreter-stable 64-bit hash the
ring uses, a bucket's digest is the XOR of its records' entry digests
(:func:`~repro.apps.kv.replication.versions.entry_digest`), and every
internal node hashes its two children.  An update touches one bucket
and the ``log2(n_leaves)`` nodes above it — the *incremental* path the
property tests pin against a rebuild from scratch.

The anti-entropy wire protocol ships two granularities out of this
structure: the 8-byte root (one small message decides "in sync"), and
the full leaf-digest page (``8 * n_leaves`` bytes — sized past the NX
small-message payload on purpose, so digest pages exercise the bulk
rendezvous path).  ``diff_leaves``/``leaf_entries`` then narrow a
divergent page to the exact records to ship (docs/REPLICATION.md).
"""

from __future__ import annotations

import struct
from typing import Dict, Iterable, List, Optional, Tuple

from ..hashing import stable_hash
from .versions import Version, entry_digest

__all__ = ["MerkleTree", "DEFAULT_LEAVES"]

#: 512 leaves * 8 bytes = a 4 KB digest page — one NX bulk transfer.
DEFAULT_LEAVES = 512

_PAIR = struct.Struct("<QQ")


def _combine(left: int, right: int) -> int:
    """An internal node's digest (0 stays 0 so empty subtrees match)."""
    if not left and not right:
        return 0
    return stable_hash(_PAIR.pack(left, right))


class MerkleTree:
    """A fixed-shape hash tree over key/version/value records."""

    def __init__(self, n_leaves: int = DEFAULT_LEAVES):
        if n_leaves < 1 or (n_leaves & (n_leaves - 1)) != 0:
            raise ValueError("n_leaves must be a power of two")
        self.n_leaves = n_leaves
        self._buckets: List[Dict[str, int]] = [{} for _ in range(n_leaves)]
        self._nodes: List[int] = [0] * (2 * n_leaves)
        self.updates = 0

    @classmethod
    def build(cls, records: Iterable[Tuple[str, Version, Optional[bytes]]],
              n_leaves: int = DEFAULT_LEAVES) -> "MerkleTree":
        """A tree rebuilt from scratch over ``records`` (the oracle the
        incremental-update property tests compare against)."""
        tree = cls(n_leaves)
        for key, version, value in records:
            tree.update(key, version, value)
        return tree

    def leaf_of(self, key: str) -> int:
        """The bucket index ``key`` hashes into."""
        return stable_hash(key.encode()) % self.n_leaves

    def update(self, key: str, version: Version,
               value: Optional[bytes]) -> None:
        """Record ``key``'s current (version, value-or-tombstone)."""
        digest = entry_digest(key, version, value)
        index = self.leaf_of(key)
        if self._buckets[index].get(key) == digest:
            return
        self._buckets[index][key] = digest
        self._refresh(index)

    def discard(self, key: str) -> None:
        """Forget ``key`` entirely (tombstones use :meth:`update`)."""
        index = self.leaf_of(key)
        if self._buckets[index].pop(key, None) is not None:
            self._refresh(index)

    def _refresh(self, index: int) -> None:
        """Recompute one leaf and the path above it."""
        self.updates += 1
        acc = 0
        for digest in self._buckets[index].values():
            acc ^= digest
        node = self.n_leaves + index
        self._nodes[node] = acc
        node //= 2
        while node >= 1:
            self._nodes[node] = _combine(self._nodes[2 * node],
                                         self._nodes[2 * node + 1])
            node //= 2

    # ------------------------------------------------------- digests

    def root(self) -> int:
        """The 64-bit root digest (equal roots mean equal record sets)."""
        return self._nodes[1]

    def leaf_digests(self) -> List[int]:
        """All leaf digests, bucket order (the bulk digest page)."""
        return self._nodes[self.n_leaves:2 * self.n_leaves]

    def pack_leaves(self) -> bytes:
        """The leaf-digest page as wire bytes (``8 * n_leaves``)."""
        return struct.pack("<%dQ" % self.n_leaves, *self.leaf_digests())

    @staticmethod
    def unpack_leaves(blob: bytes, n_leaves: int) -> List[int]:
        """The leaf digests from a wire page."""
        return list(struct.unpack("<%dQ" % n_leaves, bytes(blob)))

    def diff_leaves(self, other_digests: List[int]) -> List[int]:
        """Bucket indices where this tree disagrees with a peer's page."""
        mine = self.leaf_digests()
        if len(other_digests) != len(mine):
            raise ValueError("leaf page shape mismatch")
        return [i for i, (a, b) in enumerate(zip(mine, other_digests))
                if a != b]

    # ------------------------------------------------------- records

    def leaf_entries(self, index: int) -> Dict[str, int]:
        """One bucket's ``key -> entry digest`` map (a copy)."""
        return dict(self._buckets[index])

    def keys(self) -> List[str]:
        """Every key the tree covers, sorted."""
        out: List[str] = []
        for bucket in self._buckets:
            out.extend(bucket)
        return sorted(out)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)

    def diff(self, other: "MerkleTree") -> List[str]:
        """Exactly the keys whose records differ between two trees.

        Walks only the divergent leaves — the host-side mirror of what
        the wire protocol ships — and returns the sorted union of keys
        present on one side only or present with different digests.
        """
        if other.n_leaves != self.n_leaves:
            raise ValueError("trees must share a leaf count")
        divergent: List[str] = []
        for index in self.diff_leaves(other.leaf_digests()):
            mine = self._buckets[index]
            theirs = other._buckets[index]
            for key in set(mine) | set(theirs):
                if mine.get(key) != theirs.get(key):
                    divergent.append(key)
        return sorted(divergent)
