"""Server-side admission control: bounded queues, lanes, deadline shed.

The SHRIMP user-level protocols keep the OS off the data path, so
nothing in the stack says "no" — NX credits push back at the transport
layer but the service layer will queue work without bound and serve it
arbitrarily late.  This module is the end-to-end admission policy the
overload tentpole adds (docs/OVERLOAD.md):

* :data:`LANE_CHEAP` / :data:`LANE_BULK` / :data:`LANE_BACKGROUND` —
  priority lanes.  GET/multi_get ride the cheap lane; PUT/DELETE/SCAN
  (replication fan-out attached) ride the bulk lane; replication apply
  runs in the background lane.  Lane order is CPU-grant order.
* :class:`AdmissionQueue` — the pure accept-queue discipline: bounded
  occupancy, FIFO within each lane, lanes served in priority order,
  and deadline-aware shedding (an entry whose queueing delay already
  exceeds its budget is shed at claim time rather than served late).
  Pure Python over explicit timestamps, so the property tests in
  ``tests/properties/`` can drive it with randomized schedules.
* :class:`AdmissionController` — the simulation glue: one per node,
  fronting the node's CPU scheduler.  Door checks (occupancy bound,
  brownout) reject instantly; admitted requests wait for a CPU slot in
  lane priority and are re-checked against the deadline at grant.  A
  two-window burn-rate :class:`~repro.obs.slo.SloMonitor` watches the
  shed fraction and triggers *brownout* — a period during which the
  expensive lane is rejected at the door so the cheap lane keeps its
  SLO — exactly the degradation order a read-heavy store wants.
* :class:`KvRejectedError` — the typed client-visible rejection, raised
  by :class:`~repro.apps.kv.client.KVClient` once its retry budget for
  a request is exhausted.  Rejections are *never* silent: every shed
  produces either a later success (a retry was admitted) or this
  exception, which the workload engine counts toward the conservation
  invariant ``completed + rejected + errors == offered``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ...obs.slo import SloMonitor, SloObjective

__all__ = [
    "LANE_CHEAP", "LANE_BULK", "LANE_BACKGROUND",
    "KvRejectedError", "AdmissionQueue", "AdmissionController",
]

LANE_CHEAP = 0       # GET / multi_get — small, latency-sensitive
LANE_BULK = 1        # PUT / DELETE / SCAN — value bytes + fan-out
LANE_BACKGROUND = 2  # replication apply — off the request path


class KvRejectedError(Exception):
    """A request the service shed and the client's retry budget could
    not recover.  Carries enough to account for the request precisely."""

    def __init__(self, op: str, key: str, attempts: int):
        super().__init__("kv %s %r rejected after %d attempt(s)"
                         % (op, key, attempts))
        self.op = op
        self.key = key
        self.attempts = attempts


class _Entry:
    """One queued admission ticket (pure bookkeeping, no sim objects)."""

    __slots__ = ("ticket", "lane", "enqueued_at")

    def __init__(self, ticket: int, lane: int, enqueued_at: float):
        self.ticket = ticket
        self.lane = lane
        self.enqueued_at = enqueued_at


class AdmissionQueue:
    """The pure accept-queue discipline: bound, lanes, deadline.

    * **bounded occupancy** — at most ``bound`` entries wait at once;
      :meth:`offer` returns None (reject) beyond that.
    * **FIFO within priority** — :meth:`pop` serves lanes in ascending
      lane order and entries within a lane in offer order.
    * **deadline shedding** — with ``deadline_us > 0``, an entry whose
      waiting time exceeds the budget when it reaches the head is shed
      (returned separately by :meth:`pop` / verdict ``"shed"`` from
      :meth:`claim`), never served.

    Time is an explicit argument everywhere, so the structure can be
    exercised by the property tests without a simulator.
    """

    def __init__(self, bound: int, deadline_us: float = 0.0):
        if bound < 1:
            raise ValueError("admission queue bound must be >= 1")
        if deadline_us < 0.0:
            raise ValueError("deadline_us must be >= 0")
        self.bound = bound
        self.deadline_us = deadline_us
        self._lanes: Dict[int, Deque[_Entry]] = {}
        self._entries: Dict[int, _Entry] = {}
        self._next_ticket = 0
        self.offers = 0
        self.rejected_full = 0
        self.shed = 0
        self.popped = 0
        self.high_water = 0

    @property
    def waiting(self) -> int:
        """Entries currently queued (the bounded occupancy)."""
        return len(self._entries)

    def entry(self, ticket: int) -> Optional[_Entry]:
        """The queued entry for ``ticket``, or None if gone."""
        return self._entries.get(ticket)

    def expired(self, entry: _Entry, now: float) -> bool:
        """Whether ``entry``'s queueing delay has blown its budget."""
        return (self.deadline_us > 0.0
                and now - entry.enqueued_at > self.deadline_us)

    def offer(self, now: float, lane: int) -> Optional[int]:
        """Try to enqueue one arrival; the ticket, or None when full."""
        self.offers += 1
        if len(self._entries) >= self.bound:
            self.rejected_full += 1
            return None
        self._next_ticket += 1
        entry = _Entry(self._next_ticket, lane, now)
        self._lanes.setdefault(lane, deque()).append(entry)
        self._entries[entry.ticket] = entry
        self.high_water = max(self.high_water, len(self._entries))
        return entry.ticket

    def claim(self, ticket: int, now: float) -> str:
        """Remove ``ticket`` at service time: ``"serve"`` or ``"shed"``.

        The controller claims tickets in CPU-grant order, which matches
        this queue's (lane, FIFO) discipline; the deadline check happens
        here, at the moment a slot is finally available.
        """
        entry = self._entries.pop(ticket)
        self._lanes[entry.lane].remove(entry)
        if self.expired(entry, now):
            self.shed += 1
            return "shed"
        self.popped += 1
        return "serve"

    def pop(self, now: float) -> Tuple[Optional[int], List[int]]:
        """Next ticket to serve plus every expired ticket shed en route.

        Walks lanes in priority order; expired entries at the front are
        shed (collected into the second element) until an unexpired
        entry is found or the queue drains.
        """
        shed: List[int] = []
        for lane in sorted(self._lanes):
            queue = self._lanes[lane]
            while queue:
                entry = queue.popleft()
                del self._entries[entry.ticket]
                if self.expired(entry, now):
                    self.shed += 1
                    shed.append(entry.ticket)
                    continue
                self.popped += 1
                return entry.ticket, shed
        return None, shed


class _ShedWindow:
    """Duck-typed window sample feeding the controller's SloMonitor."""

    __slots__ = ("count", "slow", "errors")

    def __init__(self, count: int, slow: int):
        self.count = count
        self.slow = slow
        self.errors = 0


class AdmissionController:
    """Per-node admission in front of the CPU scheduler (sim glue).

    ``admit(proc, lane, cost_us)`` is the one entry point the shard
    handlers call: it either charges ``cost_us`` of contended CPU and
    returns True, or rejects/sheds and returns False (emitting a
    ``kv.server.reject`` complete span when tracing is on, so a shed
    request's causal tree ends at the rejection with no handler span).

    The shed-fraction SLO drives brownout: when the two-window burn
    rate alerts, the bulk lane is rejected at the door for
    ``brownout_us``, shifting remaining capacity to the cheap lane.
    """

    def __init__(self, system, node_id: int, cpu,
                 bound: int = 32, deadline_us: float = 0.0,
                 shed_budget: float = 0.05, window_us: float = 500.0,
                 short_windows: int = 4, long_windows: int = 24,
                 burn_factor: float = 4.0, brownout_us: float = 2000.0):
        self.sim = system.sim
        self.tracer = system.machine.tracer
        self.node_id = node_id
        self.cpu = cpu
        self.queue = AdmissionQueue(bound, deadline_us)
        self.slo = SloMonitor([SloObjective("shed", "slow", shed_budget)],
                              short_windows=short_windows,
                              long_windows=long_windows,
                              burn_factor=burn_factor)
        self.window_us = window_us
        self.brownout_us = brownout_us
        self.offers = 0
        self.served = 0
        self.rejected_full = 0
        self.rejected_brownout = 0
        self.shed_deadline = 0
        self.brownouts = 0
        self._brownout_until = 0.0
        self._window_end = self.sim.now + window_us
        self._w_offers = 0
        self._w_shed = 0

    @property
    def rejected(self) -> int:
        """Total requests this node refused to serve, any reason."""
        return self.rejected_full + self.rejected_brownout \
            + self.shed_deadline

    def admit(self, proc, lane: int, cost_us: float):
        """Generator: True after serving ``cost_us`` on the CPU, False
        on rejection (door or deadline)."""
        start = self.sim.now
        self._tick(start)
        self.offers += 1
        self._w_offers += 1
        if lane != LANE_CHEAP and start < self._brownout_until:
            self.rejected_brownout += 1
            self._shed(proc, start, "brownout")
            return False
        ticket = self.queue.offer(start, lane)
        if ticket is None:
            self.rejected_full += 1
            self._shed(proc, start, "full")
            return False
        if self.cpu is None:
            # Admission without CPU modeling: the bound alone applies
            # (nothing ever waits, so deadlines cannot trip).
            self.queue.claim(ticket, start)
            self.served += 1
            yield from proc.compute(cost_us)
            return True
        req = self.cpu.request(lane)
        yield req
        granted = self.sim.now
        self._tick(granted)
        if self.queue.claim(ticket, granted) == "shed":
            self.cpu.release(req)
            self.shed_deadline += 1
            self._shed(proc, start, "deadline")
            return False
        self.served += 1
        try:
            yield self.sim.timeout(cost_us)
        finally:
            self.cpu.release(req)
        return True

    def _shed(self, proc, start: float, reason: str) -> None:
        """Account one shed and close its causal tree with a reject span."""
        self._w_shed += 1
        tracer = self.tracer
        if not tracer.enabled:
            return
        data = {"reason": reason, "node": self.node_id}
        ctx = proc.trace_ctx
        if ctx is not None:
            data["tid"] = ctx[0]
            data["cparent"] = ctx[1]
        tracer.complete("kv.server.reject", reason, start,
                        track=proc.trace_track, data=data)

    def _tick(self, now: float) -> None:
        """Fold completed shed-fraction windows into the SLO monitor."""
        while now >= self._window_end:
            if self._w_offers:
                breached = self.slo.observe(
                    self._window_end,
                    _ShedWindow(self._w_offers, self._w_shed))
                if breached is not None:
                    self._brownout_until = max(
                        self._brownout_until,
                        self._window_end + self.brownout_us)
                    self.brownouts += 1
                self._w_offers = 0
                self._w_shed = 0
            self._window_end += self.window_us

    def metrics_snapshot(self, now: Optional[float] = None) -> dict:
        """Registry row: offers served/shed and queue high water."""
        return {
            "name": "n%d.kv.admission" % self.node_id,
            "kind": "admission",
            "count": self.offers,
            "served": self.served,
            "rejected_full": self.rejected_full,
            "rejected_brownout": self.rejected_brownout,
            "shed_deadline": self.shed_deadline,
            "brownouts": self.brownouts,
            "mean_depth": 0.0,
            "high_water": self.queue.high_water,
        }
