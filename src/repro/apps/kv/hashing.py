"""Consistent hashing for shard placement.

Keys map onto a ring of virtual points (``vnodes`` per server) hashed
with MD5, and a key's replica set is the next ``count`` *distinct*
servers clockwise from the key's point — the classic Chord/Dynamo
arrangement, so adding a node moves only ~1/N of the keyspace.

Python's builtin ``hash()`` is deliberately never used: it is salted
per interpreter run (PYTHONHASHSEED), which would silently break the
seed-determinism contract of the workload engine.  MD5 here is a
placement function, not a security boundary.
"""

from __future__ import annotations

import bisect
import hashlib
import struct
from typing import List, Sequence, Tuple

__all__ = ["HashRing", "stable_hash"]


def stable_hash(data: bytes) -> int:
    """A 64-bit hash that is identical across runs and interpreters."""
    return struct.unpack("<Q", hashlib.md5(data).digest()[:8])[0]


class HashRing:
    """A consistent-hash ring over integer node ids."""

    def __init__(self, nodes: Sequence[int], vnodes: int = 64):
        if not nodes:
            raise ValueError("hash ring needs at least one node")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.nodes = list(nodes)
        self.vnodes = vnodes
        points: List[Tuple[int, int]] = []
        for node in self.nodes:
            for v in range(vnodes):
                point = stable_hash(b"shard-%d-vnode-%d" % (node, v))
                points.append((point, node))
        points.sort()
        self._points = points
        self._hashes = [p[0] for p in points]

    def primary(self, key: str) -> int:
        """The node owning ``key`` (first ring point clockwise)."""
        return self.replicas(key, 1)[0]

    def replicas(self, key: str, count: int) -> List[int]:
        """The first ``count`` distinct nodes clockwise from ``key``.

        The first entry is the primary; the rest are the replica set in
        failover preference order.  ``count`` is clamped to the node
        population.
        """
        count = max(1, min(count, len(self.nodes)))
        start = bisect.bisect_right(self._hashes, stable_hash(key.encode()))
        out: List[int] = []
        n = len(self._points)
        for step in range(n):
            node = self._points[(start + step) % n][1]
            if node not in out:
                out.append(node)
                if len(out) == count:
                    break
        return out

    def load_map(self, keys: Sequence[str]) -> dict:
        """``{node: primary-key count}`` over ``keys`` (for balance tests)."""
        owned = {node: 0 for node in self.nodes}
        for key in keys:
            owned[self.primary(key)] += 1
        return owned
