"""Service orchestration: boot shard servers, manage replication, stop.

:class:`KVService` owns the shared state — the hash ring, the per-node
:class:`ShardStore`\\ s, the replication queues — and spawns the server
programs of ``server.py``.  The caller (a test, the workload engine,
``python -m repro serve``) decides how many client bindings and socket
connections each node should expect; handler processes are pre-spawned
to match, so accept ordering is a deterministic FIFO.

Lifecycle::

    service = KVService(system, replicas=2)
    service.preload({...})                  # untimed bulk load
    service.start(srpc_handlers=W, socket_handlers=W)
    ... run client processes to completion ...
    service.shutdown()                      # queue replication sentinels
    system.run_processes(service.handles)   # drain fan-out, collect ranks

The replication queues register themselves in the machine metrics
registry, so the conftest invariant audit (and the utilization report)
sees service-level queues exactly like hardware FIFOs.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from ...kernel.system import ShrimpSystem
from ...libs.nx import VARIANTS, nx_world
from ...libs.onesided import RegionAdvert, RegionFormat, RegionWriter
from ...libs.sockets import SOCKET_VARIANTS
from ...sim import Event, Store
from ...testbed import Rendezvous
from ...vmmc import attach
from . import protocol as wire
from .admission import AdmissionController
from .hashing import HashRing
from .replication import (
    AntiEntropyStats,
    MerkleTree,
    make_antientropy_program,
)
from .server import (
    apply_cost,
    make_repl_program,
    socket_server_program,
    srpc_server_program,
)
from .store import ShardStore

__all__ = ["KVService", "region_name"]


class _ReplDropMetrics:
    """Registry adapter surfacing dropped replication records.

    Only registered when a replication queue bound is set — the default
    unbounded queue cannot drop, and the registry (and its report)
    stays byte-identical.
    """

    name = "kv-repl-drops"

    def __init__(self, service: "KVService"):
        self._service = service

    def metrics_snapshot(self, now: Optional[float] = None) -> dict:
        total = sum(self._service.repl_drops.values())
        return {
            "name": self.name,
            "kind": "counter",
            "count": total,
            "mean_depth": 0.0,
            "high_water": total,
        }


def region_name(node: int) -> str:
    """The rendezvous key a shard's one-sided region is advertised under."""
    return "kv-region-n%d" % node


class KVService:
    """A sharded KV service over the nodes of one simulated machine."""

    def __init__(self, system: ShrimpSystem,
                 nodes: Optional[List[int]] = None,
                 replicas: int = 2,
                 srpc_port: int = 7000,
                 socket_port: int = 7100,
                 socket_variant: str = "DU-1copy",
                 nx_variant: str = "AU-1copy",
                 vnodes: int = 64,
                 batch: bool = False,
                 srpc_window: int = 1,
                 onesided: bool = False,
                 onesided_slots: int = 1024,
                 onesided_slot_bytes: int = 0,
                 admission: bool = False,
                 admit_queue: int = 32,
                 admit_deadline_us: float = 0.0,
                 handler_cpu_us: float = 0.0,
                 versioned: bool = False,
                 repl_queue_cap: int = 0,
                 antientropy: bool = False,
                 antientropy_interval_us: float = 2000.0,
                 antientropy_max_rounds: int = 64):
        self.system = system
        # Serving-stack knobs both sides of an SRPC binding must agree
        # on: ``batch`` selects the v2 interface (multi_get available),
        # ``srpc_window`` the pipelining depth.  Defaults reproduce the
        # v1 single-call protocol bit for bit.
        self.batch = batch
        self.srpc_window = srpc_window
        # One-sided bypass reads (docs/ONESIDED.md): each node exports
        # a slot-table region mirroring its shard; clients discover the
        # export ids through the rendezvous and GET straight from
        # remote memory.  Off by default — with the knob off no region
        # is exported, no writer hook runs, and every timed path is
        # byte-identical to the RPC-only service.
        self.onesided = onesided
        self.onesided_slots = onesided_slots
        self.onesided_slot_bytes = onesided_slot_bytes  # 0 = library default
        self.writers: Dict[int, RegionWriter] = {}
        self.region_rendezvous = Rendezvous(system) if onesided else None
        self.sim = system.sim
        self.nodes = list(nodes) if nodes is not None else list(
            range(system.config.n_nodes))
        if self.nodes != list(range(len(self.nodes))):
            # NX ranks are spawned on nodes 0..N-1; keep the shard set
            # aligned with them rather than maintaining a rank map.
            raise ValueError("service nodes must be 0..N-1, got %r"
                             % self.nodes)
        self.replicas = max(1, min(replicas, len(self.nodes)))
        self.srpc_port = srpc_port
        self.socket_port = socket_port
        self.socket_variant = SOCKET_VARIANTS[socket_variant]
        self.nx_variant = VARIANTS[nx_variant]
        self.ring = HashRing(self.nodes, vnodes=vnodes)
        self.stores: Dict[int, ShardStore] = {
            node: ShardStore(node) for node in self.nodes}
        # Replica correctness (docs/REPLICATION.md): ``versioned``
        # switches the SRPC servers to the v3 interface (version dots on
        # every op), ``repl_queue_cap`` bounds the fan-out queues (0 =
        # unbounded, the historical behavior), and ``antientropy`` arms
        # the background Merkle sweeper.  All default off.
        self.versioned = versioned
        self.repl_queue_cap = repl_queue_cap
        self.antientropy = antientropy
        self.antientropy_interval_us = antientropy_interval_us
        self.antientropy_max_rounds = antientropy_max_rounds
        self.repl_queues: Dict[int, Store] = {}
        for node in self.nodes:
            queue = Store(self.sim,
                          capacity=repl_queue_cap or float("inf"),
                          name="kv-repl-q-n%d" % node)
            system.machine.metrics.register(queue)
            self.repl_queues[node] = queue
        self.handles: List = []
        self.started = False
        self.repl_send_failures = 0
        self.repl_applied_total: Optional[int] = None
        self.map_mismatches: List[int] = []
        self.repl_drops: Dict[int, int] = {node: 0 for node in self.nodes}
        self.repl_crash_drops = 0
        if repl_queue_cap:
            system.machine.metrics.register(_ReplDropMetrics(self))
        # Per-pair Merkle trees: ``merkle[a][b]`` on node ``a`` covers
        # exactly the keys whose replica set contains both ``a`` and
        # ``b``, so it and its twin ``merkle[b][a]`` digest the same
        # key range and equal roots mean the pair is in sync.
        self.merkle: Dict[int, Dict[int, MerkleTree]] = {}
        self.ae_stats: Optional[AntiEntropyStats] = None
        self.ae_stop = False
        if antientropy:
            for a in self.nodes:
                self.merkle[a] = {b: MerkleTree() for b in self.nodes
                                  if b != a}
                self.stores[a].on_mutate = self._mutation_noter(a)
            self.ae_stats = AntiEntropyStats()
            system.machine.metrics.register(self.ae_stats)
        # Overload control (docs/OVERLOAD.md): ``handler_cpu_us`` is
        # the per-op CPU charge added on top of ``apply_cost`` (only
        # meaningful once the node CPU schedulers are enabled), and
        # with ``admission`` on each node gets an AdmissionController
        # fronting its CPU.  Both default off: op_cost == apply_cost
        # and the admission map stays empty, so every default-path
        # timing is untouched.
        self.handler_cpu_us = handler_cpu_us
        self.admission: Dict[int, AdmissionController] = {}
        if admission:
            for node in self.nodes:
                controller = AdmissionController(
                    system, node, system.machine.nodes[node].cpu,
                    bound=admit_queue, deadline_us=admit_deadline_us)
                system.machine.metrics.register(controller)
                self.admission[node] = controller

    def op_cost(self, nbytes: int) -> float:
        """One op's server CPU charge: apply cost plus the handler tax."""
        return apply_cost(nbytes) + self.handler_cpu_us

    # ---------------------------------------------------------- helpers

    def sim_event(self, name: str) -> Event:
        """A named raw event on this service's simulator."""
        return Event(self.sim, name=name)

    def shard_map_blob(self) -> bytes:
        """The shard map as bytes, for the startup broadcast: node
        count, replica count, and each node's vnode count."""
        return struct.pack("<HH", len(self.nodes), self.replicas) + b"".join(
            struct.pack("<HH", node, self.ring.vnodes) for node in self.nodes)

    def replicas_for(self, key: str) -> List[int]:
        """The replica set of ``key``, primary first."""
        return self.ring.replicas(key, self.replicas)

    def _mutation_noter(self, node: int):
        """The store hook keeping node ``node``'s pair trees current.

        Host-level (untimed) on purpose: the tree update is O(log
        leaves) dict-and-XOR work, the simulated cost of divergence
        detection is charged where bytes move — in the sweeper's NX
        exchanges.
        """
        trees = self.merkle[node]

        def note(key, version, value):
            reps = self.replicas_for(key)
            if node not in reps:
                return  # stray failover write; not in any pair range
            for peer in reps:
                if peer != node:
                    trees[peer].update(key, version, value)

        return note

    # ------------------------------------------------------- lifecycle

    def preload(self, items: Dict[str, bytes]) -> None:
        """Bulk-load key/value pairs into every replica, untimed.

        Models a dataset that existed before the measurement window —
        loading through the timed path would just measure warmup.
        """
        for key, value in items.items():
            for node in self.replicas_for(key):
                self.stores[node].preload(key, value)

    def start(self, srpc_handlers: int = 0, socket_handlers: int = 0) -> None:
        """Spawn all server processes.

        ``srpc_handlers``/``socket_handlers`` are per node: spawn
        exactly as many binding/connection handlers as clients that
        will connect, so every accept pairs deterministically.
        """
        if self.started:
            raise RuntimeError("service already started")
        self.started = True
        if self.onesided:
            for node in self.nodes:
                self.handles.append(self.system.spawn(
                    node, self._region_export_program(node),
                    name="kv-region-n%d" % node))
        for node in self.nodes:
            for i in range(srpc_handlers):
                self.handles.append(self.system.spawn(
                    node, srpc_server_program(self, node),
                    name="kv-srpc-n%d-h%d" % (node, i)))
            for i in range(socket_handlers):
                self.handles.append(self.system.spawn(
                    node, socket_server_program(self, node),
                    name="kv-sock-n%d-h%d" % (node, i)))
        if len(self.nodes) > 1:
            self.handles.extend(nx_world(
                self.system,
                [make_repl_program(self, rank) for rank in self.nodes],
                variant=self.nx_variant))
        if self.antientropy and len(self.nodes) > 1:
            # The sweeper gets its own NX world (own rendezvous, own
            # connections): digest pages and replication records never
            # share a receive queue.
            self.handles.extend(nx_world(
                self.system,
                [make_antientropy_program(self, rank)
                 for rank in self.nodes],
                variant=self.nx_variant))

    def _region_export_program(self, node: int):
        """The per-node one-sided bootstrap: export, fill, advertise.

        Runs once at service start.  The exporting process pins the
        region's frames and hands the shard's handlers a
        :class:`RegionWriter` over them; the region stays exported for
        the life of the run (readers hold imports into it), so the
        program simply returns after publishing the advert.
        """

        def program(proc):
            if self.onesided_slot_bytes:
                fmt = RegionFormat(self.onesided_slots,
                                   self.onesided_slot_bytes,
                                   page_size=proc.config.page_size)
            else:
                fmt = RegionFormat(self.onesided_slots,
                                   page_size=proc.config.page_size)
            endpoint = attach(self.system, proc)
            region = yield from endpoint.export_new(fmt.nbytes)
            # Register the region with the NIC's snoop-fed serve cache;
            # if it fits, remote reads never touch this host's bus.  A
            # region over the shadow's capacity still works — its reads
            # are served by host DMA instead.
            shadow = proc.node.nic.shadow
            if not shadow.register(region.record.frames):
                shadow = None
            writer = RegionWriter(proc.node.memory, region.record.frames,
                                  fmt, proc.config, shadow=shadow)
            # Mirror the preloaded shard before advertising, so no
            # reader can import a region that lags the store.
            for key, value in self.stores[node].data.items():
                writer.preload(key, value)
            self.writers[node] = writer
            self.region_rendezvous.put(region_name(node), RegionAdvert(
                node_id=node, export_id=region.record.export_id,
                slots=fmt.slots, slot_size=fmt.slot_size))
            return fmt.slots

        return program

    def region_store(self, node: int, proc, key: str,
                     value: Optional[bytes]):
        """Mirror one applied write into the node's exported region.

        Generator; called by whichever handler applied the write (RPC,
        socket, or replication), charging the seqlock update there.  A
        no-op while the one-sided knob is off or before the node's
        bootstrap has run (nothing can be imported before the advert is
        published, so readers never observe the gap).
        """
        writer = self.writers.get(node)
        if writer is None:
            return
        if value is None:
            yield from writer.clear(proc, key)
        else:
            yield from writer.store(proc, key, value)

    def enqueue_replication(self, origin: int, key: str,
                            value: Optional[bytes],
                            trace_ctx=None, version=None) -> None:
        """Queue an upsert/delete for fan-out to the other replicas.

        Called by whichever server applied a client write — normally
        the primary, but under failover any replica (or even a
        non-replica the client fell back to) accepts the write and
        fans it out, Dynamo-style sloppy ownership.  ``trace_ctx`` is
        the serving span's (trace_id, sid): the sender process adopts
        it around the fan-out ``csend`` so the replication messages
        stay causally linked to the request that triggered them.

        A full (bounded) queue drops the record *visibly*: the drop is
        counted, marked with a ``kv.repl.drop`` instant, and left for
        anti-entropy to repair — the silent-loss path this used to be.
        """
        targets = [node for node in self.replicas_for(key) if node != origin]
        if targets and origin in self.repl_queues and len(self.nodes) > 1:
            if version is not None:
                record = wire.encode_vrepl_record(key, version, value)
            else:
                record = wire.encode_repl_record(wire.REPL_DATA, key, value)
            if not self.repl_queues[origin].try_put(
                    (targets, record, trace_ctx)):
                self.repl_drops[origin] += 1
                tracer = self.system.machine.tracer
                if tracer.enabled:
                    tracer.instant(
                        "kv.repl.drop", "queue full on n%d" % origin,
                        track="n%d.kv.repl" % origin,
                        data={"node": origin, "key": key})

    def shutdown(self) -> None:
        """Queue the replication shutdown sentinels (host-level).

        After this, run ``system.run_processes(service.handles)`` to
        drain the fan-out queues and retire the NX ranks.  The
        anti-entropy sweeper is asked to stop too; it exits after its
        next *clean* (zero-divergence) round, so a drained run always
        ends converged unless the sweep itself died to faults.
        """
        self.ae_stop = True
        for node in self.nodes:
            if self.repl_queue_cap:
                # A full bounded queue must not drop the sentinel: park
                # it as a pending putter, delivered as the drain frees
                # a slot (drops only ever lose data records).
                self.repl_queues[node].put(None)
            else:
                self.repl_queues[node].try_put(None)

    # --------------------------------------------------------- figures

    def counters(self) -> Dict[str, Dict[str, int]]:
        """Per-node store counters, keyed ``"n<id>"`` in node order."""
        return {"n%d" % node: self.stores[node].counters()
                for node in self.nodes}

    def total_keys(self) -> int:
        """Keys stored service-wide, replicas counted separately."""
        return sum(len(s.data) for s in self.stores.values())
