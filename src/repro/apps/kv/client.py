"""The KV client: transport-pluggable request path with replica failover.

One :class:`KVClient` belongs to one simulated process (a workload
worker) and holds one connection per shard server — SHRIMP RPC
bindings for request/response, or stream sockets when the caller wants
the streaming transport (SCAN always uses sockets).  All connections
share a single VMMC endpoint, like a real process would.

Failover: every operation walks the key's replica set in ring order.
A typed ``VmmcTimeoutError``/``VmmcError`` from a connection (only
possible under an armed fault plan, where the hardened libraries bound
every wait) marks that connection dead and the operation retries on
the next replica — the degraded mode the tentpole requires to be
deterministically testable.  A request that exhausts the replica set
returns ``ST_ERROR`` rather than raising, so a worker keeps serving.

Each completed request records a ``kv.client`` span via
``Tracer.complete`` (stack-free, so interleaved requests from many
workers never unbalance a track).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ...libs.sockets import SocketLib
from ...vmmc import VmmcError, VmmcTimeoutError, attach
from . import protocol as wire
from .server import KvShardClient

__all__ = ["KVClient"]


class KVClient:
    """A per-worker handle on the whole sharded service."""

    def __init__(self, service, proc, transport: str = "srpc",
                 want_sockets: Optional[bool] = None, client_id: int = 0):
        if transport not in ("srpc", "sockets"):
            raise ValueError("unknown transport %r" % transport)
        self.service = service
        self.system = service.system
        self.proc = proc
        self.transport = transport
        self.want_sockets = (transport == "sockets"
                             if want_sockets is None else want_sockets)
        self.client_id = client_id
        self.track = "n%d.kv.client%d" % (proc.node.node_id, client_id)
        self.endpoint = attach(self.system, proc)
        self.rpc: Dict[int, KvShardClient] = {}
        self.socks: Dict[int, object] = {}
        self.dead: Set[Tuple[str, int]] = set()
        self._sbuf = proc.space.mmap(4096)
        self._rbuf = proc.space.mmap(4096)
        self.ops = 0
        self.misses = 0
        self.errors = 0
        self.failovers = 0
        self.corruptions = 0

    # ------------------------------------------------------ connections

    def connect(self):
        """Open one connection per shard server (generator)."""
        if self.transport == "srpc":
            for node in self.service.nodes:
                client = KvShardClient(self.system, self.proc,
                                       endpoint=self.endpoint)
                yield from client.bind(node, self.service.srpc_port)
                self.rpc[node] = client
        if self.want_sockets:
            lib = SocketLib(self.system, self.proc,
                            variant=self.service.socket_variant,
                            endpoint=self.endpoint)
            for node in self.service.nodes:
                sock = yield from lib.connect(node, self.service.socket_port)
                self.socks[node] = sock

    def shutdown(self):
        """Release every server-side handler this client owns."""
        for node in self.service.nodes:
            if node in self.rpc and ("rpc", node) not in self.dead:
                try:
                    yield from self.rpc[node].stop()
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
            if node in self.socks and ("sock", node) not in self.dead:
                try:
                    frame = wire.encode_request(wire.OP_QUIT, "")
                    yield from self.proc.write(self._sbuf, frame)
                    yield from self.socks[node].send(self._sbuf, len(frame))
                    yield from self.socks[node].close()
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("sock", node))

    # ------------------------------------------------------- operations

    def get(self, key: str):
        """Generator returning ``(status, value-or-None)``."""
        status, value = yield from self._request(wire.OP_GET, key)
        return status, value

    def put(self, key: str, value: bytes):
        """Generator returning a status code."""
        status, _ = yield from self._request(wire.OP_PUT, key, value)
        return status

    def delete(self, key: str):
        """Generator returning a status code."""
        status, _ = yield from self._request(wire.OP_DELETE, key)
        return status

    def scan(self, prefix: str, limit: int):
        """Generator returning ``(status, [(key, value), ...])``.

        Scatter-gathers over *every* live shard (a prefix's keys are
        hash-distributed), merges in key order, and truncates to
        ``limit``.  Always streams over sockets.
        """
        self.ops += 1
        start = self.sim_now()
        merged: Dict[str, bytes] = {}
        status = wire.ST_OK
        for node in self.service.nodes:
            if ("sock", node) in self.dead:
                status = wire.ST_ERROR
                continue
            try:
                records = yield from self._sock_scan(node, prefix, limit)
                # Replicas return the same keys; first copy wins.
                for rec_key, rec_value in records:
                    merged.setdefault(rec_key, rec_value)
            except (VmmcTimeoutError, VmmcError):
                self.dead.add(("sock", node))
                self.failovers += 1
                status = wire.ST_ERROR
        self._span("scan", start)
        return status, [(k, merged[k]) for k in sorted(merged)][:limit]

    # -------------------------------------------------------- internals

    def sim_now(self) -> float:
        """The current simulated time (microseconds)."""
        return self.system.sim.now

    def _span(self, name: str, start: float) -> None:
        tracer = self.system.machine.tracer
        if tracer.enabled:
            tracer.complete("kv.client", name, start, track=self.track)

    def _request(self, op: int, key: str, value: bytes = b""):
        """Walk the replica set until one server answers."""
        self.ops += 1
        start = self.sim_now()
        kind = "rpc" if self.transport == "srpc" else "sock"
        tried_dead = False
        try:
            for node in self.service.replicas_for(key):
                if (kind, node) in self.dead:
                    tried_dead = True
                    continue
                try:
                    if self.transport == "srpc":
                        result = yield from self._rpc_op(node, op, key, value)
                    else:
                        result = yield from self._sock_op(node, op, key, value)
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add((kind, node))
                    self.failovers += 1
                    continue
                if tried_dead:
                    self.failovers += 1
                status, out = result
                if status == wire.ST_MISS:
                    self.misses += 1
                return status, out
            self.errors += 1
            return wire.ST_ERROR, None
        finally:
            self._span(_OP_NAMES[op], start)

    def _rpc_op(self, node: int, op: int, key: str, value: bytes):
        client = self.rpc[node]
        if op == wire.OP_GET:
            blob = yield from client.get(key)
            if not blob or blob[0] != wire.ST_OK:
                return wire.ST_MISS, None
            return wire.ST_OK, bytes(blob[1:])
        if op == wire.OP_PUT:
            status = yield from client.put(key, value)
            return status, None
        status = yield from client.delete(key)
        return status, None

    def _sock_op(self, node: int, op: int, key: str, value: bytes):
        sock = self.socks[node]
        frame = wire.encode_request(op, key, value)
        yield from self.proc.write(self._sbuf, frame)
        yield from sock.send(self._sbuf, len(frame))
        got = yield from sock.recv_exactly(self._rbuf, wire.RESP_HEADER.size)
        if got < wire.RESP_HEADER.size:
            raise VmmcTimeoutError("kv: server closed the connection")
        status, value_len = wire.decode_response_header(
            self.proc.peek(self._rbuf, wire.RESP_HEADER.size))
        out = None
        if value_len:
            got = yield from sock.recv_exactly(self._rbuf, value_len)
            if got < value_len:
                raise VmmcTimeoutError("kv: truncated response value")
            out = self.proc.peek(self._rbuf, value_len)
        return status, out

    def _sock_scan(self, node: int, prefix: str, limit: int):
        sock = self.socks[node]
        frame = wire.encode_request(wire.OP_SCAN, prefix, scan_limit=limit)
        yield from self.proc.write(self._sbuf, frame)
        yield from sock.send(self._sbuf, len(frame))
        records: List[Tuple[str, bytes]] = []
        while True:
            got = yield from sock.recv_exactly(self._rbuf, wire.SCAN_RECORD.size)
            if got < wire.SCAN_RECORD.size:
                raise VmmcTimeoutError("kv: scan stream cut short")
            key_len, value_len = wire.SCAN_RECORD.unpack(
                self.proc.peek(self._rbuf, wire.SCAN_RECORD.size))
            if key_len == wire.SCAN_END:
                return records
            got = yield from sock.recv_exactly(self._rbuf, key_len + value_len)
            if got < key_len + value_len:
                raise VmmcTimeoutError("kv: truncated scan record")
            blob = self.proc.peek(self._rbuf, key_len + value_len)
            records.append((blob[:key_len].decode(), blob[key_len:]))

    def stats(self) -> Dict[str, int]:
        """This client's request counters."""
        return {
            "ops": self.ops,
            "misses": self.misses,
            "errors": self.errors,
            "failovers": self.failovers,
            "corruptions": self.corruptions,
        }


_OP_NAMES = {wire.OP_GET: "get", wire.OP_PUT: "put",
             wire.OP_DELETE: "delete", wire.OP_SCAN: "scan"}
