"""The KV client: transport-pluggable request path with replica failover.

One :class:`KVClient` belongs to one simulated process (a workload
worker) and holds one connection per shard server — SHRIMP RPC
bindings for request/response, or stream sockets when the caller wants
the streaming transport (SCAN always uses sockets).  All connections
share a single VMMC endpoint, like a real process would.

Failover: every operation walks the key's replica set in ring order.
A typed ``VmmcTimeoutError``/``VmmcError`` from a connection (only
possible under an armed fault plan, where the hardened libraries bound
every wait) marks that connection dead and the operation retries on
the next replica — the degraded mode the tentpole requires to be
deterministically testable.  A request that exhausts the replica set
returns ``ST_ERROR`` rather than raising, so a worker keeps serving.

Hot-key mitigation (docs/WORKLOADS.md "Mitigation knobs"):

* **client cache** — ``cache_keys`` bounds an LRU of recently read
  values, aged out after ``cache_ttl_us`` and invalidated immediately
  by this client's own writes (a per-key write epoch guards against a
  concurrent fetch re-inserting a value the write just invalidated);
* **read-spreading** — with ``read_spread`` GETs rotate over the key's
  replica set instead of always hitting the primary (writes stay
  primary-first, and a read of a key with an in-flight pipelined write
  is pinned to that write's node so the binding's FIFO serializes it);
* **pipelining** — when the service's SRPC window is > 1, ``*_begin``
  submits a point op without waiting and ``collect`` redeems the
  handle; ``multi_get`` packs up to ``MULTI_GET_MAX`` keys into one
  batched RPC when the service speaks the v2 interface.

All knobs default off, leaving the request path byte-identical to the
unmitigated client.

Each completed request records a ``kv.client`` span via
``Tracer.complete`` (stack-free, so interleaved requests from many
workers never unbalance a track).
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Dict, List, Optional, Set, Tuple

from ...libs.onesided import RegionReader, SlotHints
from ...libs.sockets import SocketLib
from ...vmmc import VmmcError, VmmcTimeoutError, attach
from . import protocol as wire
from .admission import KvRejectedError
from .replication.versions import (
    VERSION_ZERO,
    pack_version,
    unpack_version,
    wins,
)
from .server import KvBatchClient, KvShardClient, KvVerClient
from .service import region_name

__all__ = ["KVClient", "KvRejectedError"]


class KVClient:
    """A per-worker handle on the whole sharded service.

    Routing: keys map to their replica set via the service's
    ``HashRing``; point ops go over SHRIMP RPC (or sockets), scans
    stream over sockets, and a failed node is struck from the
    connection table and the next replica tried (``failovers`` counts
    these).

    Hot-key mitigations, all off by default:

    * ``cache_keys``/``cache_ttl_us`` — a bounded LRU of GET results,
      aged by simulated time; the client's own ``put``/``delete``
      invalidates the entry *before* touching the wire, so a client
      can never read its own stale write back.
    * ``read_spread`` — rotate GETs round-robin over the key's replica
      set instead of always hitting the primary.  A GET for a key this
      client still has a write in flight for pins to the written node.
    * pipelining — ``get_begin``/``put_begin``/``delete_begin`` return
      tickets that ``collect`` finishes in any order, riding the SRPC
      binding's ``window`` (docs/PROTOCOLS.md).
    * batching — ``multi_get`` packs up to ``MULTI_GET_MAX`` keys per
      shard call on the v2 program (``KVService(batch=True)``).

    Counters (``ops``, ``misses``, ``cache_hits``, ``spread_reads``,
    ``batch_calls`` ...) feed the workload report's mitigation line.
    """

    def __init__(self, service, proc, transport: str = "srpc",
                 want_sockets: Optional[bool] = None, client_id: int = 0,
                 cache_keys: int = 0, cache_ttl_us: float = 0.0,
                 read_spread: bool = False, onesided: bool = False,
                 onesided_hints: Optional[Dict[int, SlotHints]] = None,
                 retry_budget: int = 0, retry_base_us: float = 100.0,
                 retry_jitter: float = 0.5,
                 consistency: str = "eventual", quorum_r: int = 0,
                 quorum_w: int = 0, read_repair: bool = False):
        if transport not in ("srpc", "sockets"):
            raise ValueError("unknown transport %r" % transport)
        if consistency not in ("eventual", "session", "quorum"):
            raise ValueError("unknown consistency mode %r" % consistency)
        self.service = service
        self.system = service.system
        self.proc = proc
        self.transport = transport
        self.want_sockets = (transport == "sockets"
                             if want_sockets is None else want_sockets)
        self.client_id = client_id
        self.track = "n%d.kv.client%d" % (proc.node.node_id, client_id)
        self.endpoint = attach(self.system, proc)
        self.rpc: Dict[int, KvShardClient] = {}
        self.socks: Dict[int, object] = {}
        self.dead: Set[Tuple[str, int]] = set()
        self._sbuf = proc.space.mmap(4096)
        self._rbuf = proc.space.mmap(4096)
        self.ops = 0
        self.misses = 0
        self.errors = 0
        self.failovers = 0
        self.corruptions = 0
        # Mitigation state: the bounded LRU (key -> (value, stored_us)),
        # per-key write epochs, the read-spread rotation counter, and
        # pipelined-write pinning for read-after-write on one client.
        self.cache_keys = cache_keys
        self.cache_ttl_us = cache_ttl_us
        self.read_spread = read_spread
        self._cache: "OrderedDict[str, Tuple[bytes, float]]" = OrderedDict()
        self._wepoch: Dict[str, int] = {}
        self._rr = 0
        self._pending_writes: Dict[str, int] = {}
        self._pending_write_node: Dict[str, int] = {}
        self.cache_hits = 0
        self.cache_lookups = 0
        self.spread_reads = 0
        self.batch_calls = 0
        self.batched_keys = 0
        # One-sided bypass state (docs/ONESIDED.md): per-shard region
        # readers over one locally exported reply page.  Populated by
        # connect() when the knob is on and the transport is SRPC; with
        # it off the GET path is byte-identical to the RPC-only client.
        # ``onesided_hints`` (shard node -> SlotHints) is the host-wide
        # occupancy cache — pass the same map to every client on a node
        # so they pool what their reads and writes learn.
        self.onesided = onesided
        self._onesided_hints = onesided_hints
        self._readers: Dict[int, RegionReader] = {}
        self.onesided_hits = 0
        self.onesided_fallbacks = 0
        # Overload cooperation (docs/OVERLOAD.md): a request answered
        # ``ST_REJECTED`` is retried up to ``retry_budget`` times with
        # exponential backoff (``retry_base_us * 2**(attempt-1)``) plus
        # deterministic jitter; past the budget the typed
        # :class:`KvRejectedError` surfaces to the caller.  Budget 0
        # (the default) raises on the first rejection.
        self.retry_budget = retry_budget
        self.retry_base_us = retry_base_us
        self.retry_jitter = retry_jitter
        self._retry_rng = random.Random(0x4B56 * 2654435761
                                        + 1_000_003 * client_id)
        self.rejected = 0
        self.retries = 0
        # Consistency modes (docs/REPLICATION.md).  ``eventual`` is the
        # historical client, byte-identical.  ``session`` pins reads of
        # keys this client wrote to the node that acked the write
        # (write-epoch pinning: the ack means the dot is durably
        # applied there, so the pinned read is read-your-writes).
        # ``quorum`` reads R and writes W replicas synchronously with
        # R + W > N, so every read quorum intersects the last write's
        # ack set.  ``read_repair`` queues a versioned overwrite for
        # any replica observed returning a stale dot; the engine
        # flushes the queue *off* the request's latency path.
        self.consistency = consistency
        self.read_repair = read_repair
        self.versioned = getattr(service, "versioned", False)
        majority = service.replicas // 2 + 1
        self.quorum_r = quorum_r or majority
        self.quorum_w = quorum_w or majority
        self._floor: Dict[str, Tuple[int, int]] = {}
        self._floor_node: Dict[str, int] = {}
        self._seen: Dict[str, Tuple[Tuple[int, int], Optional[bytes]]] = {}
        self._repairs: List[tuple] = []
        self.last_version: Tuple[int, int] = VERSION_ZERO
        self._last_get_node: Optional[int] = None
        self._last_ctx: Optional[Tuple[int, int]] = None
        self.repairs = 0
        self.stale_detected = 0
        self.quorum_reads = 0
        self.quorum_writes = 0
        # The most recent request's root span (tracing on only):
        # the profiler's ``tag_root`` hook stamps arrival/tenant tags
        # onto it after the engine records the latency.
        self.last_span = None

    # ------------------------------------------------------ connections

    def connect(self):
        """Open one connection per shard server (generator).

        The SRPC client class and pipelining window follow the
        service's ``batch``/``srpc_window`` settings, so both sides of
        every binding agree on the interface version and frame layout.
        """
        if self.transport == "srpc":
            if self.versioned:
                client_cls = KvVerClient
            elif self.service.batch:
                client_cls = KvBatchClient
            else:
                client_cls = KvShardClient
            for node in self.service.nodes:
                client = client_cls(self.system, self.proc,
                                    endpoint=self.endpoint,
                                    window=self.service.srpc_window)
                yield from client.bind(node, self.service.srpc_port)
                self.rpc[node] = client
        if self.want_sockets:
            lib = SocketLib(self.system, self.proc,
                            variant=self.service.socket_variant,
                            endpoint=self.endpoint)
            for node in self.service.nodes:
                sock = yield from lib.connect(node, self.service.socket_port)
                self.socks[node] = sock
        if self.onesided and self.transport == "srpc":
            yield from self._open_onesided()

    def _open_onesided(self):
        """Import every shard's slot region for bypass reads (generator).

        Exports one local reply page (the target NIC's reply packets
        must pass this node's Incoming Page Table), then completes the
        rendezvous handshake per shard: wait for the region advert,
        import the export, build a :class:`RegionReader` over it.  A
        blocking client has one read outstanding at a time, so one
        reply page serves every region.
        """
        reply = yield from self.endpoint.export_new(
            self.proc.config.page_size)
        reply_vaddr = reply.record.vaddr
        for node in self.service.nodes:
            advert = yield self.service.region_rendezvous.get(
                region_name(node))
            imported = yield from self.endpoint.import_buffer(
                advert.node_id, advert.export_id)
            hints = None
            if self._onesided_hints is not None:
                hints = self._onesided_hints.setdefault(node, SlotHints())
            self._readers[node] = RegionReader(
                self.endpoint, imported,
                advert.format(self.proc.config.page_size), reply_vaddr,
                hints=hints)

    def shutdown(self):
        """Release every server-side handler this client owns."""
        for node in self.service.nodes:
            if node in self.rpc and ("rpc", node) not in self.dead:
                try:
                    yield from self.rpc[node].stop()
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
            if node in self.socks and ("sock", node) not in self.dead:
                try:
                    frame = wire.encode_request(wire.OP_QUIT, "")
                    yield from self.proc.write(self._sbuf, frame)
                    yield from self.socks[node].send(self._sbuf, len(frame))
                    yield from self.socks[node].close()
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("sock", node))

    # ------------------------------------------------------- operations

    def get(self, key: str):
        """Generator returning ``(status, value-or-None)``.

        Served from the client cache when enabled and fresh; a miss
        takes the network path and inserts the fetched value (unless a
        write to the key raced the fetch)."""
        if self.consistency == "quorum":
            result = yield from self._quorum_get(key)
            return result
        if self.cache_keys > 0:
            value = self._cache_get(key)
            if value is not None:
                self.ops += 1
                self._span("get", self.sim_now())
                return wire.ST_OK, value
        epoch = self._wepoch.get(key, 0)
        if self._bypassable(key):
            status, value = yield from self._onesided_get(key)
        else:
            status, value = yield from self._request(wire.OP_GET, key)
        if self.versioned and status in (wire.ST_OK, wire.ST_MISS):
            self._observe_read(key, self.last_version,
                               value if status == wire.ST_OK else None,
                               self._last_get_node)
        if status == wire.ST_OK:
            self._cache_put(key, value, epoch)
        return status, value

    def put(self, key: str, value: bytes):
        """Generator returning a status code.  Invalidates the key's
        cache entry *before* the network write, so no later read on
        this client can observe the pre-write cached value."""
        if self.consistency == "quorum":
            status = yield from self._quorum_write(key, value)
            return status
        self._cache_invalidate(key)
        status, _ = yield from self._request(wire.OP_PUT, key, value)
        if status == wire.ST_OK:
            self._note_write(key, len(value))
        return status

    def delete(self, key: str):
        """Generator returning a status code (cache-invalidating, like
        :meth:`put`)."""
        if self.consistency == "quorum":
            status = yield from self._quorum_write(key, None)
            return status
        self._cache_invalidate(key)
        status, _ = yield from self._request(wire.OP_DELETE, key)
        if status in (wire.ST_OK, wire.ST_MISS):
            self._note_write(key, None)
        return status

    def multi_get(self, keys: List[str]):
        """Generator returning ``[(status, value-or-None), ...]``
        aligned with ``keys``.

        Cache hits are peeled off first; the remainder is grouped by
        routing node and fetched with batched v2 ``multi_get`` calls
        (up to ``MULTI_GET_MAX`` keys each) when the service speaks the
        batch interface, else with individual GETs.  A node failure
        mid-batch falls back to per-key replica walks."""
        results: List[Optional[Tuple[int, Optional[bytes]]]] = \
            [None] * len(keys)
        fetch = []
        for i, key in enumerate(keys):
            if self.cache_keys > 0:
                value = self._cache_get(key)
                if value is not None:
                    results[i] = (wire.ST_OK, value)
                    continue
            fetch.append(i)
        if not self._batched():
            for i in fetch:
                results[i] = yield from self.get(keys[i])
            return results
        start = self.sim_now()
        root = self._root_begin() if fetch else None
        try:
            groups: Dict[Optional[int], List[int]] = {}
            epochs: Dict[int, int] = {}
            for i in fetch:
                key = keys[i]
                epochs[i] = self._wepoch.get(key, 0)
                node = None
                for cand in self._candidates(wire.OP_GET, key):
                    if ("rpc", cand) not in self.dead:
                        node = cand
                        break
                groups.setdefault(node, []).append(i)
            for node, indices in groups.items():
                if node is None:
                    for i in indices:
                        self.ops += 1
                        self.errors += 1
                        results[i] = (wire.ST_ERROR, None)
                    continue
                for lo in range(0, len(indices), wire.MULTI_GET_MAX):
                    chunk = indices[lo:lo + wire.MULTI_GET_MAX]
                    blob = wire.encode_multi_get_request(
                        [keys[i] for i in chunk])
                    entries = None
                    try:
                        resp = yield from self.rpc[node].multi_get(blob)
                        entries = wire.decode_multi_get_response(resp)
                    except (VmmcTimeoutError, VmmcError):
                        self.dead.add(("rpc", node))
                        self.failovers += 1
                    if entries is None or len(entries) != len(chunk):
                        for i in chunk:  # per-key replica walk, dead skipped
                            results[i] = yield from self.get(keys[i])
                        continue
                    self.ops += 1
                    self.batch_calls += 1
                    self.batched_keys += len(chunk)
                    for i, (status, value) in zip(chunk, entries):
                        if status == wire.ST_REJECTED:
                            # Shed per-key: the retrying GET path owns
                            # backoff and the typed rejection.
                            results[i] = yield from self.get(keys[i])
                            continue
                        if status == wire.ST_MISS:
                            self.misses += 1
                            self._note_size(keys[i], None)
                        elif status == wire.ST_OK:
                            self._cache_put(keys[i], value, epochs[i])
                            self._note_size(keys[i], len(value))
                        results[i] = (status, value)
        finally:
            if fetch:
                self._span("multi_get", start, root)
        return results

    # ------------------------------------------- pipelined point ops

    def get_begin(self, key: str):
        """Submit a GET without waiting; redeem with :meth:`collect`.
        Falls back to a deferred synchronous GET when the binding is
        not pipelined (handle semantics are identical)."""
        if self.cache_keys > 0:
            value = self._cache_get(key)
            if value is not None:
                self.ops += 1
                return ("done", "get", self.sim_now(), wire.ST_OK, value,
                        None)
        if self._bypassable(key):
            # The bypass is already the low-latency path; take it
            # synchronously rather than submitting into the pipeline
            # (it never occupies a binding slot).
            epoch = self._wepoch.get(key, 0)
            status, value = yield from self._onesided_get(key)
            if status == wire.ST_OK:
                self._cache_put(key, value, epoch)
            return ("ready", status, value)
        if not self._pipelined():
            return ("lazy", wire.OP_GET, key, b"")
        self.ops += 1
        start = self.sim_now()
        root = self._root_begin()
        epoch = self._wepoch.get(key, 0)
        try:
            for node in self._candidates(wire.OP_GET, key):
                if ("rpc", node) in self.dead:
                    continue
                try:
                    ticket = yield from self.rpc[node].get_begin(key)
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
                    self.failovers += 1
                    continue
                return ("rpc", "get", start, node, ticket, key, b"", epoch,
                        root)
            self.errors += 1
            return ("done", "get", start, wire.ST_ERROR, None, root)
        finally:
            self._root_detach(root)

    def put_begin(self, key: str, value: bytes):
        """Submit a PUT without waiting (cache-invalidating at submit,
        like :meth:`put`); redeem with :meth:`collect`."""
        self._cache_invalidate(key)
        if not self._pipelined():
            return ("lazy", wire.OP_PUT, key, value)
        self.ops += 1
        start = self.sim_now()
        root = self._root_begin()
        try:
            for node in self._candidates(wire.OP_PUT, key):
                if ("rpc", node) in self.dead:
                    continue
                try:
                    ticket = yield from self.rpc[node].put_begin(key, value)
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
                    self.failovers += 1
                    continue
                self._pending_writes[key] = \
                    self._pending_writes.get(key, 0) + 1
                self._pending_write_node[key] = node
                return ("rpc", "put", start, node, ticket, key, value, 0,
                        root)
            self.errors += 1
            return ("done", "put", start, wire.ST_ERROR, None, root)
        finally:
            self._root_detach(root)

    def delete_begin(self, key: str):
        """Submit a DELETE without waiting; redeem with :meth:`collect`."""
        self._cache_invalidate(key)
        if not self._pipelined():
            return ("lazy", wire.OP_DELETE, key, b"")
        self.ops += 1
        start = self.sim_now()
        root = self._root_begin()
        try:
            for node in self._candidates(wire.OP_DELETE, key):
                if ("rpc", node) in self.dead:
                    continue
                try:
                    ticket = yield from self.rpc[node].delete_begin(key)
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
                    self.failovers += 1
                    continue
                self._pending_writes[key] = \
                    self._pending_writes.get(key, 0) + 1
                self._pending_write_node[key] = node
                return ("rpc", "delete", start, node, ticket, key, b"", 0,
                        root)
            self.errors += 1
            return ("done", "delete", start, wire.ST_ERROR, None, root)
        finally:
            self._root_detach(root)

    def collect(self, handle):
        """Complete a ``*_begin`` handle: ``(status, value-or-None)``.

        Handles may be collected in any order.  A node that dies while
        its ticket is outstanding is marked dead and the operation
        retries synchronously through the surviving replicas."""
        kind = handle[0]
        if kind == "ready":
            # A one-sided bypass GET completed at submit time; its span
            # and counters were recorded there.
            _, status, value = handle
            return status, value
        if kind == "done":
            _, op, start, status, value, root = handle
            self._span(op, start, root)
            return status, value
        if kind == "lazy":
            _, opc, key, value = handle
            if opc == wire.OP_GET:
                result = yield from self.get(key)
                return result
            if opc == wire.OP_PUT:
                status = yield from self.put(key, value)
                return status, None
            status = yield from self.delete(key)
            return status, None
        _, op, start, node, ticket, key, value, epoch, root = handle
        if op != "get":
            self._unpin_write(key)
        try:
            raw = yield from self.rpc[node].finish(ticket)
        except (VmmcTimeoutError, VmmcError):
            self.dead.add(("rpc", node))
            self.failovers += 1
            # Close the abandoned pipelined attempt's root first — its
            # sid travelled on the wire, so children already point at
            # it; the synchronous retry opens a trace of its own.
            self._span(op, start, root)
            opc = {"get": wire.OP_GET, "put": wire.OP_PUT,
                   "delete": wire.OP_DELETE}[op]
            status, out = yield from self._request(opc, key, value)
            self.ops -= 1  # _request re-counts the op begin counted
            return status, out
        rejected = (bool(raw) and raw[0] == wire.ST_REJECTED
                    if op == "get" else raw == wire.ST_REJECTED)
        if rejected:
            # The pipelined attempt was shed.  Close its root span and
            # hand the request to the synchronous path, whose retry
            # loop owns backoff and the typed KvRejectedError.
            self._span(op, start, root)
            opc = {"get": wire.OP_GET, "put": wire.OP_PUT,
                   "delete": wire.OP_DELETE}[op]
            status, out = yield from self._request(opc, key, value)
            self.ops -= 1  # _request re-counts the op begin counted
            return status, out
        if op == "get":
            if not raw or raw[0] != wire.ST_OK:
                self.misses += 1
                status, out = wire.ST_MISS, None
                self._note_size(key, None)
            else:
                status, out = wire.ST_OK, bytes(raw[1:])
                self._cache_put(key, out, epoch)
                self._note_size(key, len(out))
        else:
            status, out = raw, None
            if status == wire.ST_MISS:
                self.misses += 1
            if op == "put" and status == wire.ST_OK:
                self._note_write(key, len(value))
            elif op == "delete" and status in (wire.ST_OK, wire.ST_MISS):
                self._note_write(key, None)
        self._span(op, start, root)
        return status, out

    def scan(self, prefix: str, limit: int):
        """Generator returning ``(status, [(key, value), ...])``.

        Scatter-gathers over *every* live shard (a prefix's keys are
        hash-distributed), merges in key order, and truncates to
        ``limit``.  Always streams over sockets.
        """
        self.ops += 1
        start = self.sim_now()
        root = self._root_begin()
        attempt = 0
        try:
            while True:
                status, rows = yield from self._scan_once(prefix, limit)
                if status != wire.ST_REJECTED:
                    return status, rows
                if attempt >= self.retry_budget:
                    self.rejected += 1
                    raise KvRejectedError("scan", prefix, attempt + 1)
                attempt += 1
                self.retries += 1
                yield from self._backoff(attempt)
        finally:
            self._span("scan", start, root)

    def _scan_once(self, prefix: str, limit: int):
        """One scatter-gather scan attempt (generator).

        Any shard shedding its leg rejects the whole attempt — a
        partial merge would silently under-report the prefix, which is
        worse than an honest rejection."""
        merged: Dict[str, bytes] = {}
        status = wire.ST_OK
        for node in self.service.nodes:
            if ("sock", node) in self.dead:
                status = wire.ST_ERROR
                continue
            try:
                records = yield from self._sock_scan(node, prefix, limit)
                if records is None:
                    return wire.ST_REJECTED, []
                # Replicas return the same keys; first copy wins.
                for rec_key, rec_value in records:
                    merged.setdefault(rec_key, rec_value)
            except (VmmcTimeoutError, VmmcError):
                self.dead.add(("sock", node))
                self.failovers += 1
                status = wire.ST_ERROR
        return status, [(k, merged[k]) for k in sorted(merged)][:limit]

    # -------------------------------------------------------- internals

    def sim_now(self) -> float:
        """The current simulated time (microseconds)."""
        return self.system.sim.now

    def _span(self, name: str, start: float, root=None) -> None:
        """Record the request's ``kv.client`` root span.

        With a ``root`` token from :meth:`_root_begin` the span is
        recorded under the sid that travelled on the wire (and the
        process context is restored first, idempotently)."""
        self._root_detach(root)
        tracer = self.system.machine.tracer
        if not tracer.enabled:
            return
        if root is None:
            self.last_span = tracer.complete("kv.client", name, start,
                                             track=self.track)
        else:
            self.last_span = tracer.complete("kv.client", name, start,
                                             track=self.track,
                                             data={"tid": root[0]},
                                             sid=root[1])

    def _root_begin(self):
        """Open a causal-trace root for one client request.

        Allocates a fresh trace id and reserves the root span's sid so
        both can ride the wire immediately; installs them as the
        process trace context and returns a mutable token
        ``[tid, sid, prev_ctx, detached]`` that :meth:`_span` (or
        :meth:`_root_detach`) must see again, or None when tracing is
        off."""
        tracer = self.system.machine.tracer
        if not tracer.enabled:
            return None
        tid = tracer.new_trace_id()
        sid = tracer.reserve_sid()
        token = [tid, sid, self.proc.trace_ctx, False]
        self.proc.trace_ctx = (tid, sid)
        return token

    def _root_detach(self, root) -> None:
        """Restore the process trace context saved by :meth:`_root_begin`
        (idempotent; None is a no-op)."""
        if root is not None and not root[3]:
            self.proc.trace_ctx = root[2]
            root[3] = True

    def _sock_trace(self, sock):
        """Announce the next socket request's context (generator).

        Sends the ``OP_TRACE`` prefix frame carrying the trace id and a
        freshly reserved *per-attempt* span sid — each replica-walk
        attempt (and each node of a scan fan-out) must name a distinct
        wire parent, or retried requests would produce serve spans that
        collide in the duplicate-delivery audit.  Returns the
        ``(ctx, sid, start)`` token :meth:`_sock_span` completes, or
        None when the process carries no context."""
        ctx = self.proc.trace_ctx
        tracer = self.system.machine.tracer
        if ctx is None or not tracer.enabled:
            return None
        sid = tracer.reserve_sid()
        prefix = wire.encode_trace_prefix(ctx[0], sid)
        yield from self.proc.write(self._sbuf, prefix)
        yield from sock.send(self._sbuf, len(prefix))
        return (ctx, sid, self.sim_now())

    def _sock_span(self, call, name: str) -> None:
        """Complete the per-attempt ``kv.call`` span opened by
        :meth:`_sock_trace` (None is a no-op)."""
        if call is not None:
            ctx, sid, start = call
            self.system.machine.tracer.complete(
                "kv.call", name, start, track=self.track,
                data={"tid": ctx[0], "cparent": ctx[1]}, sid=sid)

    def _pipelined(self) -> bool:
        """True when point ops can ride a multi-call SRPC window."""
        return self.transport == "srpc" and self.service.srpc_window > 1

    def _batched(self) -> bool:
        """True when the service speaks the v2 (multi_get) interface."""
        return self.transport == "srpc" and self.service.batch

    def _cache_get(self, key: str) -> Optional[bytes]:
        """A fresh cached value, or None (expired entries are evicted)."""
        self.cache_lookups += 1
        entry = self._cache.get(key)
        if entry is None:
            return None
        value, stored = entry
        if self.cache_ttl_us > 0 and self.sim_now() - stored > self.cache_ttl_us:
            del self._cache[key]
            return None
        self._cache.move_to_end(key)
        self.cache_hits += 1
        return value

    def _cache_put(self, key: str, value: Optional[bytes], epoch: int) -> None:
        """Insert a fetched value unless a write raced the fetch."""
        if self.cache_keys <= 0 or value is None:
            return
        if self._wepoch.get(key, 0) != epoch:
            return  # invalidated while the fetch was in flight: stale
        self._cache[key] = (bytes(value), self.sim_now())
        self._cache.move_to_end(key)
        while len(self._cache) > self.cache_keys:
            self._cache.popitem(last=False)

    def _cache_invalidate(self, key: str) -> None:
        """Drop the key's entry and bump its write epoch."""
        if self.cache_keys > 0:
            self._wepoch[key] = self._wepoch.get(key, 0) + 1
            self._cache.pop(key, None)

    def _unpin_write(self, key: str) -> None:
        """Retire one pending pipelined write of ``key``."""
        count = self._pending_writes.get(key, 0) - 1
        if count > 0:
            self._pending_writes[key] = count
        else:
            self._pending_writes.pop(key, None)
            self._pending_write_node.pop(key, None)

    def _candidates(self, op: int, key: str) -> List[int]:
        """The node order an operation tries, failover included.

        Writes walk the replica set primary-first.  Reads do too,
        unless read-spreading rotates the set — except that a read of a
        key with an in-flight pipelined write is pinned to that write's
        node, where the binding's FIFO serializes it after the write.
        """
        reps = self.service.replicas_for(key)
        if op == wire.OP_GET and self.consistency == "session":
            # Read-your-writes: a key this client has written reads
            # from the node that acked the write — the dot is durably
            # applied there, whatever the replication fan-out is up to.
            pin = self._floor_node.get(key)
            if pin is not None:
                return [pin] + [n for n in reps if n != pin]
        if op != wire.OP_GET or not self.read_spread or len(reps) < 2:
            return reps
        pin = self._pending_write_node.get(key)
        if pin is not None:
            return [pin] + [n for n in reps if n != pin]
        r = self._rr % len(reps)
        self._rr += 1
        if r == 0:
            return reps
        self.spread_reads += 1
        return reps[r:] + reps[:r]

    def _note_write(self, key: str, nbytes: Optional[int]) -> None:
        """Teach the bypass readers a key's new occupancy after a write
        this client completed (no-op with one-sided reads off)."""
        if not self._readers:
            return
        for node in self.service.replicas_for(key):
            reader = self._readers.get(node)
            if reader is not None:
                reader.note_write(key, nbytes)

    def _note_size(self, key: str, nbytes: Optional[int]) -> None:
        """Teach the bypass readers a key's occupancy from an RPC GET's
        answer (no-op with one-sided reads off).  Read lessons never
        clear a skip mark — see :meth:`RegionReader.note_size`."""
        if not self._readers:
            return
        for node in self.service.replicas_for(key):
            reader = self._readers.get(node)
            if reader is not None:
                reader.note_size(key, nbytes)

    def _bypassable(self, key: str) -> bool:
        """Whether a GET of ``key`` may take the one-sided bypass.

        A key with a pipelined write still in flight is excluded: the
        bypass does not ride the binding's FIFO, so only the RPC path
        (pinned to the written node) can serialize read-after-write.
        """
        return bool(self._readers) and key not in self._pending_writes

    def _onesided_get(self, key: str):
        """The bypass GET: one-sided slot fetch, RPC fallback (generator).

        Walks the same candidate order as the RPC path (read-spreading
        composes) and fetches the key's slot straight from the first
        candidate's exported region — no server handler runs.  Any
        non-hit — empty or colliding slot, oversize value, bounded
        seqlock retries exhausted — falls back to :meth:`_request`,
        which alone can distinguish a true miss.  The fallback
        continues under the bypass attempt's root span, so one request
        stays one ``kv.client`` span either way.
        """
        self.ops += 1
        start = self.sim_now()
        root = self._root_begin()
        for node in self._candidates(wire.OP_GET, key):
            reader = self._readers.get(node)
            if reader is None or not reader.knows(key):
                continue
            try:
                found, value = yield from reader.lookup(key)
            except VmmcTimeoutError:
                break  # stalled writer or lost replies: ask the server
            if found:
                self.onesided_hits += 1
                self._span("get", start, root)
                return wire.ST_OK, value
            break  # absent here means absent everywhere it can answer
        self.onesided_fallbacks += 1
        status, value = yield from self._request(wire.OP_GET, key,
                                                 start=start, root=root)
        # The server's answer teaches the occupancy cache, so the next
        # GET of this key can take an exact-size bypass read (or skip
        # the region for a missing key until someone writes it).
        if status == wire.ST_OK:
            self._note_size(key, len(value))
        elif status == wire.ST_MISS:
            self._note_size(key, None)
        return status, value

    def _request(self, op: int, key: str, value: bytes = b"",
                 start: Optional[float] = None, root=None):
        """One client request: replica walk plus the rejection retry loop.

        ``start``/``root`` continue a request the one-sided bypass
        already opened: the op was counted there and the walk completes
        under the same root span.  An ``ST_REJECTED`` answer (admission
        control shed the request) is retried after exponential backoff
        until the retry budget runs out, at which point the typed
        :class:`KvRejectedError` surfaces — the request still counts as
        ONE op and ONE ``kv.client`` root span, with one ``kv.retry``
        span per backoff so a causal trace counts attempts exactly."""
        if start is None:
            self.ops += 1
            start = self.sim_now()
            root = self._root_begin()
            self._last_ctx = (root[0], root[1]) if root is not None else None
        attempt = 0
        try:
            while True:
                status, out = yield from self._walk(op, key, value)
                if status != wire.ST_REJECTED:
                    return status, out
                if attempt >= self.retry_budget:
                    self.rejected += 1
                    raise KvRejectedError(_OP_NAMES[op], key, attempt + 1)
                attempt += 1
                self.retries += 1
                yield from self._backoff(attempt)
        finally:
            self._span(_OP_NAMES[op], start, root)

    def _walk(self, op: int, key: str, value: bytes):
        """Walk the replica set until one server answers (generator).

        A rejection ends the walk immediately: every replica applies
        the same admission policy, and hammering the next one during an
        overload would defeat the shed (the *retry loop* above, with
        backoff, is the sanctioned second chance)."""
        kind = "rpc" if self.transport == "srpc" else "sock"
        tried_dead = False
        for node in self._candidates(op, key):
            if (kind, node) in self.dead:
                tried_dead = True
                continue
            try:
                if self.transport == "srpc":
                    result = yield from self._rpc_op(node, op, key, value)
                else:
                    result = yield from self._sock_op(node, op, key, value)
            except (VmmcTimeoutError, VmmcError):
                self.dead.add((kind, node))
                self.failovers += 1
                continue
            if tried_dead:
                self.failovers += 1
            status, out = result
            if status == wire.ST_MISS:
                self.misses += 1
            return status, out
        self.errors += 1
        return wire.ST_ERROR, None

    def _backoff(self, attempt: int):
        """Sleep the attempt's backoff (generator): exponential in the
        attempt number, with deterministic per-client jitter."""
        delay = self.retry_base_us * (2.0 ** (attempt - 1))
        delay *= 1.0 + self.retry_jitter * self._retry_rng.random()
        start = self.sim_now()
        yield self.system.sim.timeout(delay)
        tracer = self.system.machine.tracer
        if tracer.enabled:
            data = {"attempt": attempt, "delay_us": delay}
            ctx = self.proc.trace_ctx
            if ctx is not None:
                data["tid"] = ctx[0]
                data["cparent"] = ctx[1]
            tracer.complete("kv.retry", "backoff %d" % attempt, start,
                            track=self.track, data=data)

    def _rpc_op(self, node: int, op: int, key: str, value: bytes):
        if self.versioned:
            result = yield from self._ver_op(node, op, key, value)
            return result
        client = self.rpc[node]
        if op == wire.OP_GET:
            blob = yield from client.get(key)
            if blob and blob[0] == wire.ST_REJECTED:
                return wire.ST_REJECTED, None
            if not blob or blob[0] != wire.ST_OK:
                return wire.ST_MISS, None
            return wire.ST_OK, bytes(blob[1:])
        if op == wire.OP_PUT:
            status = yield from client.put(key, value)
            return status, None
        status = yield from client.delete(key)
        return status, None

    def _ver_op(self, node: int, op: int, key: str, value: bytes):
        """The v3 (versioned) point ops (generator).

        Every answer carries the shard's winning dot; reads feed it to
        :meth:`_observe_read` (staleness detection, read repair), writes
        raise the client's per-key floor — the basis of session mode's
        read-your-writes pinning.  Writes propose ``VERSION_ZERO`` so
        the owning shard coordinates the epoch (quorum mode is the one
        place the client proposes a real dot, in
        :meth:`_quorum_write`)."""
        client = self.rpc[node]
        if op == wire.OP_GET:
            blob = yield from client.vget(key)
            if blob and blob[0] == wire.ST_REJECTED:
                return wire.ST_REJECTED, None
            if not blob:
                return wire.ST_MISS, None
            self.last_version = unpack_version(bytes(blob[1:9]))
            self._last_get_node = node
            if blob[0] != wire.ST_OK:
                return wire.ST_MISS, None
            return wire.ST_OK, bytes(blob[9:])
        proposed = pack_version(VERSION_ZERO)
        if op == wire.OP_PUT:
            blob = yield from client.vput(key, proposed, value)
        else:
            blob = yield from client.vdelete(key, proposed)
        if blob and blob[0] == wire.ST_REJECTED:
            return wire.ST_REJECTED, None
        if not blob:
            return wire.ST_ERROR, None
        version = unpack_version(bytes(blob[1:9]))
        self.last_version = version
        if version > self._floor.get(key, VERSION_ZERO):
            self._floor[key] = version
        if self.consistency == "session":
            self._floor_node[key] = node
        self._seen[key] = (version, value if op == wire.OP_PUT else None)
        return blob[0], None

    def _observe_read(self, key: str, version: Tuple[int, int],
                      value: Optional[bytes], node: Optional[int]) -> None:
        """Track the newest dot this client has proven per key.

        A replica answering with an *older* dot than one already proven
        is caught red-handed serving a stale read; with read repair on,
        a versioned overwrite of that replica is queued (applied off
        the request path by :meth:`flush_repairs`)."""
        seen = self._seen.get(key)
        if seen is None or version > seen[0]:
            self._seen[key] = (version, value)
            return
        if version < seen[0]:
            self.stale_detected += 1
            if self.read_repair and node is not None:
                self._queue_repair(node, key, seen[0], seen[1])

    def _queue_repair(self, node: int, key: str,
                      version: Tuple[int, int],
                      value: Optional[bytes]) -> None:
        """Queue one repair write, remembering the detecting request's
        trace context so the repair span joins its causal tree."""
        self._repairs.append((node, key, version, value, self._last_ctx))

    def flush_repairs(self):
        """Apply queued read repairs (generator) — off the hot path.

        Each repair overwrites the stale replica with the newest dot
        this client has proven for the key; shard-side LWW makes the
        write idempotent and safe against racing fresher writes.  The
        repair RPC runs *outside* any trace context, so the detecting
        request's causal tree ends at the ``kv.repair`` span — the
        shape docs/REPLICATION.md's explain example pins."""
        while self._repairs:
            node, key, version, value, ctx = self._repairs.pop(0)
            if node not in self.rpc or ("rpc", node) in self.dead:
                continue
            start = self.sim_now()
            prev = self.proc.trace_ctx
            self.proc.trace_ctx = None
            try:
                wire_v = pack_version(version)
                if value is None:
                    blob = yield from self.rpc[node].vdelete(key, wire_v)
                else:
                    blob = yield from self.rpc[node].vput(key, wire_v, value)
                if blob and blob[0] != wire.ST_REJECTED:
                    self.repairs += 1
            except (VmmcTimeoutError, VmmcError):
                self.dead.add(("rpc", node))
                self.failovers += 1
                continue
            finally:
                self.proc.trace_ctx = prev
            tracer = self.system.machine.tracer
            if tracer.enabled and ctx is not None:
                tracer.complete("kv.repair", key, start, track=self.track,
                                data={"tid": ctx[0], "cparent": ctx[1],
                                      "node": node})

    def _vget_at(self, node: int, key: str):
        """One replica's versioned answer: ``(status, version, value)``
        (generator; no failover — quorum assembly owns the walk)."""
        blob = yield from self.rpc[node].vget(key)
        if not blob or blob[0] == wire.ST_REJECTED:
            return wire.ST_REJECTED, VERSION_ZERO, None
        version = unpack_version(bytes(blob[1:9]))
        if blob[0] != wire.ST_OK:
            return wire.ST_MISS, version, None
        return wire.ST_OK, version, bytes(blob[9:])

    def _quorum_get(self, key: str):
        """R-replica read (generator).

        Asks replicas in placement order until R answer, takes the
        winning dot, and (with read repair on) queues repairs for every
        laggard that answered.  With R + W > N every read quorum
        intersects the last acknowledged write's ack set, so the winner
        is at least as new as that write — zero stale reads by
        construction, the property the eventual-vs-quorum experiment in
        docs/REPLICATION.md measures."""
        self.ops += 1
        self.quorum_reads += 1
        start = self.sim_now()
        root = self._root_begin()
        self._last_ctx = (root[0], root[1]) if root is not None else None
        try:
            answers = []
            for node in self.service.replicas_for(key):
                if ("rpc", node) in self.dead:
                    continue
                try:
                    st, version, value = yield from self._vget_at(node, key)
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
                    self.failovers += 1
                    continue
                if st == wire.ST_REJECTED:
                    continue
                answers.append((node, version, value))
                if len(answers) >= self.quorum_r:
                    break
            if len(answers) < self.quorum_r:
                self.errors += 1
                return wire.ST_ERROR, None
            best_v, best_val = answers[0][1], answers[0][2]
            for _, version, value in answers[1:]:
                if wins(version, value, best_v, best_val):
                    best_v, best_val = version, value
            self.last_version = best_v
            seen = self._seen.get(key)
            if seen is None or best_v > seen[0]:
                self._seen[key] = (best_v, best_val)
            if self.read_repair:
                for node, version, value in answers:
                    if version < best_v:
                        self.stale_detected += 1
                        self._queue_repair(node, key, best_v, best_val)
            if best_val is None:
                self.misses += 1
                return wire.ST_MISS, None
            return wire.ST_OK, best_val
        finally:
            self._span("get", start, root)

    def _quorum_write(self, key: str, value: Optional[bytes]):
        """W-replica synchronous write (generator); None value deletes.

        The client coordinates the dot itself: one epoch past the
        newest it has seen or written for the key, with a writer id
        disjoint from the shards' (100 + client id) so concurrent
        writers tie-break deterministically.  Success requires W acks;
        the proposed dot then becomes the client's floor, which is what
        a later quorum read proves freshness against."""
        self._cache_invalidate(key)
        self.ops += 1
        self.quorum_writes += 1
        start = self.sim_now()
        root = self._root_begin()
        self._last_ctx = (root[0], root[1]) if root is not None else None
        try:
            base = self._floor.get(key, VERSION_ZERO)
            seen = self._seen.get(key)
            if seen is not None and seen[0] > base:
                base = seen[0]
            proposed = (base[0] + 1, 100 + self.client_id)
            wire_v = pack_version(proposed)
            acks = 0
            for node in self.service.replicas_for(key):
                if ("rpc", node) in self.dead:
                    continue
                try:
                    if value is None:
                        blob = yield from self.rpc[node].vdelete(key, wire_v)
                    else:
                        blob = yield from self.rpc[node].vput(key, wire_v,
                                                              value)
                except (VmmcTimeoutError, VmmcError):
                    self.dead.add(("rpc", node))
                    self.failovers += 1
                    continue
                if blob and blob[0] == wire.ST_REJECTED:
                    continue
                acks += 1
                if acks >= self.quorum_w:
                    break
            if acks < self.quorum_w:
                self.errors += 1
                return wire.ST_ERROR
            self._floor[key] = proposed
            self._seen[key] = (proposed, value)
            self.last_version = proposed
            return wire.ST_OK
        finally:
            self._span("delete" if value is None else "put", start, root)

    def _sock_op(self, node: int, op: int, key: str, value: bytes):
        sock = self.socks[node]
        call = None
        try:
            call = yield from self._sock_trace(sock)
            frame = wire.encode_request(op, key, value)
            yield from self.proc.write(self._sbuf, frame)
            yield from sock.send(self._sbuf, len(frame))
            got = yield from sock.recv_exactly(self._rbuf,
                                               wire.RESP_HEADER.size)
            if got < wire.RESP_HEADER.size:
                raise VmmcTimeoutError("kv: server closed the connection")
            status, value_len = wire.decode_response_header(
                self.proc.peek(self._rbuf, wire.RESP_HEADER.size))
            out = None
            if value_len:
                got = yield from sock.recv_exactly(self._rbuf, value_len)
                if got < value_len:
                    raise VmmcTimeoutError("kv: truncated response value")
                out = self.proc.peek(self._rbuf, value_len)
            return status, out
        finally:
            self._sock_span(call, _OP_NAMES[op])

    def _sock_scan(self, node: int, prefix: str, limit: int):
        sock = self.socks[node]
        call = None
        try:
            call = yield from self._sock_trace(sock)
            frame = wire.encode_request(wire.OP_SCAN, prefix,
                                        scan_limit=limit)
            yield from self.proc.write(self._sbuf, frame)
            yield from sock.send(self._sbuf, len(frame))
            records: List[Tuple[str, bytes]] = []
            while True:
                got = yield from sock.recv_exactly(self._rbuf,
                                                   wire.SCAN_RECORD.size)
                if got < wire.SCAN_RECORD.size:
                    raise VmmcTimeoutError("kv: scan stream cut short")
                key_len, value_len = wire.SCAN_RECORD.unpack(
                    self.proc.peek(self._rbuf, wire.SCAN_RECORD.size))
                if key_len == wire.SCAN_END:
                    return records
                if key_len == wire.SCAN_REJECT:
                    return None  # server shed this scan at admission
                got = yield from sock.recv_exactly(
                    self._rbuf, key_len + value_len)
                if got < key_len + value_len:
                    raise VmmcTimeoutError("kv: truncated scan record")
                blob = self.proc.peek(self._rbuf, key_len + value_len)
                records.append((blob[:key_len].decode(), blob[key_len:]))
        finally:
            self._sock_span(call, "scan")

    def stats(self) -> Dict[str, int]:
        """This client's request counters (mitigation counters included)."""
        return {
            "ops": self.ops,
            "misses": self.misses,
            "errors": self.errors,
            "failovers": self.failovers,
            "corruptions": self.corruptions,
            "cache_hits": self.cache_hits,
            "cache_lookups": self.cache_lookups,
            "spread_reads": self.spread_reads,
            "batch_calls": self.batch_calls,
            "batched_keys": self.batched_keys,
            "onesided_hits": self.onesided_hits,
            "onesided_fallbacks": self.onesided_fallbacks,
            "rejected": self.rejected,
            "retries": self.retries,
            "repairs": self.repairs,
            "stale_detected": self.stale_detected,
            "quorum_reads": self.quorum_reads,
            "quorum_writes": self.quorum_writes,
        }


_OP_NAMES = {wire.OP_GET: "get", wire.OP_PUT: "put",
             wire.OP_DELETE: "delete", wire.OP_SCAN: "scan"}
