"""Shard-server programs: the processes a KV node runs.

One mesh node hosts one shard server, modeled as a multi-threaded
process: each accepted client binding/connection gets its own handler
generator, all sharing the node's :class:`ShardStore`.  CPU contention
between handlers is not modeled (only the shared buses, NIC engines,
and mesh links contend) — docs/WORKLOADS.md discusses the limitation.

Three transports, per the tentpole split:

* **SHRIMP RPC** for request/response — the ``KvShard`` IDL below;
* **sockets** for streaming bulk transfer — framed GET/PUT/DELETE plus
  the streamed SCAN of ``protocol.py``;
* **NX** for replication fan-out — a per-node sender drains the
  service's replication queue and ``csend``s records to the other
  replicas, while the NX rank program receives and applies.  The
  collectives library brackets the replication lifecycle: a binomial
  ``broadcast`` distributes the shard map at startup and a
  ``reduce_int`` sums applied-record counts at shutdown.

Every long-running loop here catches the typed ``VmmcTimeoutError``
family: under an armed :class:`~repro.sim.faults.FaultPlan` the
hardened libraries bound all waits, and a handler whose peer died must
exit cleanly instead of crashing the event loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ...libs import collectives
from ...libs.shrimp_rpc import SrpcTimeoutError, compile_stubs
from ...libs.sockets import SocketLib, SocketTimeoutError
from ...sim.faults import FaultKind, FaultSite
from ...vmmc import VmmcError, VmmcTimeoutError
from . import protocol as wire
from .admission import LANE_BACKGROUND, LANE_BULK, LANE_CHEAP
from .replication.versions import (
    VERSION_ZERO, pack_version, unpack_version,
)

if TYPE_CHECKING:
    from .service import KVService

__all__ = [
    "KV_IDL", "KvShardClient", "KvShardServer", "KV_INTERFACE",
    "KV_BATCH_IDL", "KvBatchClient", "KvBatchServer", "KV_BATCH_INTERFACE",
    "KV_VER_IDL", "KvVerClient", "KvVerServer", "KV_VER_INTERFACE",
    "REPL_TYPE", "srpc_server_program", "socket_server_program",
    "make_repl_program",
]

# The request/response contract.  GET returns a status byte followed by
# the value (opaque length covers both), so a miss and an empty value
# are distinguishable; the int-returning procedures use the ST_* codes.
KV_IDL = """
program KvShard version 1 {
    opaque<%d> get(in string<%d> key);
    int put(in string<%d> key, in opaque<%d> value);
    int delete(in string<%d> key);
    int stop();
}
""" % (wire.VALUE_BOUND + 1, wire.KEY_BOUND, wire.KEY_BOUND,
       wire.VALUE_BOUND, wire.KEY_BOUND)

KvShardClient, KvShardServer, KV_INTERFACE = compile_stubs(KV_IDL)

# The batched contract: everything v1 has plus multi_get, which carries
# up to MULTI_GET_MAX keys per call (protocol.py packs the blobs).  A
# separate interface *version* because the bigger opaque slots change
# the binding's buffer layout — v1 timing stays bit-identical.  The
# entries travel in an OUT parameter, not the return slot: a bounded
# return is read back whole (all MG_RESP_BOUND bytes), while an OUT
# slot reads its length word and only the bytes actually present, so a
# short batch costs what it carries.
KV_BATCH_IDL = """
program KvShard version 2 {
    opaque<%d> get(in string<%d> key);
    int put(in string<%d> key, in opaque<%d> value);
    int delete(in string<%d> key);
    int stop();
    void multi_get(in opaque<%d> keys, out opaque<%d> entries);
}
""" % (wire.VALUE_BOUND + 1, wire.KEY_BOUND, wire.KEY_BOUND,
       wire.VALUE_BOUND, wire.KEY_BOUND,
       wire.MG_REQ_BOUND, wire.MG_RESP_BOUND)

KvBatchClient, KvBatchServer, KV_BATCH_INTERFACE = compile_stubs(KV_BATCH_IDL)

# The versioned contract (consistency modes — docs/REPLICATION.md).
# vget returns status byte + 8-byte version dot + value; vput/vdelete
# carry the client's proposed dot (VERSION_ZERO asks the server to
# assign the next epoch) and return status + the winning dot.  A third
# interface *version* for the same reason v2 was: new buffer layouts
# must never perturb v1/v2 timing.
KV_VER_IDL = """
program KvShard version 3 {
    opaque<%d> vget(in string<%d> key);
    opaque<9> vput(in string<%d> key, in opaque<8> version, in opaque<%d> value);
    opaque<9> vdelete(in string<%d> key, in opaque<8> version);
    int stop();
}
""" % (wire.VGET_BOUND, wire.KEY_BOUND, wire.KEY_BOUND,
       wire.VALUE_BOUND, wire.KEY_BOUND)

KvVerClient, KvVerServer, KV_VER_INTERFACE = compile_stubs(KV_VER_IDL)

# NX message type carrying replication records; data and stop records
# share it so per-connection FIFO ordering makes the stop a barrier.
REPL_TYPE = 0x6B760001

# The explicit apply-cost model: what the server charges for hashing
# into the shard and touching the value, per operation and per byte.
# Transport time dominates by design — the paper's question is the
# communication stack, not dict performance.
APPLY_US = 0.8
APPLY_PER_BYTE_US = 0.0005


def apply_cost(nbytes: int) -> float:
    """Simulated CPU time to apply one operation on ``nbytes`` of value."""
    return APPLY_US + APPLY_PER_BYTE_US * nbytes


class _ShardImpl:
    """The RPC server implementation: one instance per binding handler."""

    def __init__(self, service: "KVService", node_id: int, proc):
        self.service = service
        self.store = service.stores[node_id]
        self.node_id = node_id
        self.proc = proc
        self.stopped = False
        # The node's admission controller, or None (admission off).
        # Lane priorities still apply to the bare CPU scheduler when
        # only cpu modeling is enabled (docs/OVERLOAD.md).
        self.admission = service.admission.get(node_id)

    def _admit(self, lane, cost, defer=False):
        """Charge the op's CPU cost, through admission when enabled.

        Generator returning False when the request was shed — the
        caller must answer ``ST_REJECTED`` without running the handler.
        With admission off this is exactly the historical
        ``proc.compute(cost)`` (contended only if the CPU scheduler is
        on), so the default path stays byte-identical.

        ``defer=True`` is set by read-only handlers whose remaining
        work until the reply write is pure (store lookup + encode): the
        charge then rides the reply write's deadline via
        :meth:`~repro.kernel.process.UserProcess.charge`, saving a wake
        at a bit-exact instant.  Mutating handlers must not defer —
        their replication enqueue would run before the charge elapsed.
        """
        if self.admission is not None:
            ok = yield from self.admission.admit(self.proc, lane, cost)
            return ok
        if defer and self.proc.node.cpu is None:
            self.proc.charge(cost)
        else:
            yield from self.proc.compute(cost, priority=lane)
        return True

    def _op_span(self, name):
        """Open the handler span for an *admitted* op (None when off).

        Only emitted under admission control, so default-path traces
        are unchanged; its absence from a rejected request's tree is
        what the shed-tree golden pins.
        """
        tracer = self.proc.tracer
        if self.admission is None or not tracer.enabled:
            return None
        data = {"node": self.node_id}
        ctx = self.proc.trace_ctx
        if ctx is not None:
            data["tid"] = ctx[0]
            data["cparent"] = ctx[1]
        return tracer.begin("kv.server", name, track=self.proc.trace_track,
                            data=data)

    def get(self, key):
        ok = yield from self._admit(LANE_CHEAP, self.service.op_cost(0),
                                    defer=True)
        if not ok:
            return bytes([wire.ST_REJECTED])
        span = self._op_span("get")
        try:
            value = self.store.get(key)
            if value is None:
                return bytes([wire.ST_MISS])
            return bytes([wire.ST_OK]) + value
        finally:
            self.proc.tracer.end(span)

    def put(self, key, value):
        ok = yield from self._admit(LANE_BULK,
                                    self.service.op_cost(len(value)))
        if not ok:
            return wire.ST_REJECTED
        span = self._op_span("put")
        try:
            self.store.put(key, bytes(value))
            yield from self.service.region_store(self.node_id, self.proc,
                                                 key, bytes(value))
            self.service.enqueue_replication(self.node_id, key, bytes(value),
                                             trace_ctx=self.proc.trace_ctx)
            return wire.ST_OK
        finally:
            self.proc.tracer.end(span)

    def delete(self, key):
        ok = yield from self._admit(LANE_BULK, self.service.op_cost(0))
        if not ok:
            return wire.ST_REJECTED
        span = self._op_span("delete")
        try:
            existed = self.store.delete(key)
            yield from self.service.region_store(self.node_id, self.proc,
                                                 key, None)
            self.service.enqueue_replication(self.node_id, key, None,
                                             trace_ctx=self.proc.trace_ctx)
            return wire.ST_OK if existed else wire.ST_MISS
        finally:
            self.proc.tracer.end(span)

    def stop(self):
        self.stopped = True
        return wire.ST_OK
        yield  # pragma: no cover - generator protocol

    def multi_get(self, keys_blob, entries):
        """The v2 batched read: N keys in, N (status, value) entries
        written into the OUT slot (propagated back by automatic update
        as they are set)."""
        keys = wire.decode_multi_get_request(keys_blob)
        if self.admission is not None:
            # One admission decision covers the batch (it is one CPU
            # dispatch); a shed batch answers ST_REJECTED per entry so
            # the client can retry each key on its own budget.
            ok = yield from self.admission.admit(
                self.proc, LANE_CHEAP,
                len(keys) * self.service.op_cost(0))
            if not ok:
                yield from entries.set(wire.encode_multi_get_response(
                    [(wire.ST_REJECTED, None)] * len(keys)))
                return
            span = self._op_span("multi_get")
            try:
                found = []
                for key in keys:
                    value = self.store.get(key)
                    found.append((wire.ST_MISS, None) if value is None
                                 else (wire.ST_OK, value))
                yield from entries.set(wire.encode_multi_get_response(found))
            finally:
                self.proc.tracer.end(span)
            return
        found = []
        for key in keys:
            yield from self.proc.compute(apply_cost(0), priority=LANE_CHEAP)
            value = self.store.get(key)
            found.append((wire.ST_MISS, None) if value is None
                         else (wire.ST_OK, value))
        yield from entries.set(wire.encode_multi_get_response(found))

    # --------------------------------------------- versioned ops (v3)

    def vget(self, key):
        """GET with the record's version dot (status, version, value)."""
        ok = yield from self._admit(LANE_CHEAP, self.service.op_cost(0),
                                    defer=True)
        if not ok:
            return bytes([wire.ST_REJECTED]) + pack_version(VERSION_ZERO)
        span = self._op_span("vget")
        try:
            value = self.store.get(key)
            version = self.store.version_of(key)
            if value is None:
                return bytes([wire.ST_MISS]) + pack_version(version)
            return bytes([wire.ST_OK]) + pack_version(version) + value
        finally:
            self.proc.tracer.end(span)

    def vput(self, key, version, value):
        """PUT through the LWW guard; returns status + the winning dot.

        A ``VERSION_ZERO`` proposal asks this server to coordinate: it
        assigns the key's next epoch with its own writer id.  A losing
        proposal still answers ``ST_OK`` — last-writer-wins means the
        write *happened*, it was just superseded; the returned dot
        tells the client who won.
        """
        value = bytes(value)
        ok = yield from self._admit(LANE_BULK,
                                    self.service.op_cost(len(value)))
        if not ok:
            return bytes([wire.ST_REJECTED]) + pack_version(VERSION_ZERO)
        span = self._op_span("vput")
        try:
            self.store.puts += 1
            proposed = unpack_version(version)
            if proposed == VERSION_ZERO:
                proposed = self.store.assign_version(key, self.node_id + 1)
            if self.store.apply_versioned(key, proposed, value):
                yield from self.service.region_store(self.node_id, self.proc,
                                                     key, value)
                self.service.enqueue_replication(
                    self.node_id, key, value,
                    trace_ctx=self.proc.trace_ctx, version=proposed)
            return (bytes([wire.ST_OK])
                    + pack_version(self.store.version_of(key)))
        finally:
            self.proc.tracer.end(span)

    def vdelete(self, key, version):
        """DELETE through the LWW guard (leaves a versioned tombstone)."""
        ok = yield from self._admit(LANE_BULK, self.service.op_cost(0))
        if not ok:
            return bytes([wire.ST_REJECTED]) + pack_version(VERSION_ZERO)
        span = self._op_span("vdelete")
        try:
            self.store.deletes += 1
            existed = key in self.store.data
            proposed = unpack_version(version)
            if proposed == VERSION_ZERO:
                proposed = self.store.assign_version(key, self.node_id + 1)
            if self.store.apply_versioned(key, proposed, None):
                yield from self.service.region_store(self.node_id, self.proc,
                                                     key, None)
                self.service.enqueue_replication(
                    self.node_id, key, None,
                    trace_ctx=self.proc.trace_ctx, version=proposed)
            return ((bytes([wire.ST_OK]) if existed
                     else bytes([wire.ST_MISS]))
                    + pack_version(self.store.version_of(key)))
        finally:
            self.proc.tracer.end(span)


def srpc_server_program(service: "KVService", node_id: int):
    """One SHRIMP RPC binding handler: accept one client, serve until
    its ``stop()`` call (or the hardened idle bound under faults).

    The service's ``batch``/``srpc_window`` knobs pick the interface
    version (v2 adds multi_get) and the pipelining window; clients must
    be built with the same settings, which the workload plumbing and
    :class:`~repro.apps.kv.client.KVClient` guarantee."""

    def program(proc):
        impl = _ShardImpl(service, node_id, proc)
        if service.versioned:
            server_cls = KvVerServer
        elif service.batch:
            server_cls = KvBatchServer
        else:
            server_cls = KvShardServer
        server = server_cls(service.system, proc, impl,
                            window=service.srpc_window)
        yield from server.serve_binding(service.srpc_port)
        try:
            while not impl.stopped:
                yield from server.run(max_calls=1)
        except (SrpcTimeoutError, VmmcTimeoutError):
            pass  # client died mid-binding; bounded wait, clean exit
        return server.calls_served

    return program


def socket_server_program(service: "KVService", node_id: int):
    """One socket connection handler: accept once, serve framed
    requests (and streamed SCANs) until QUIT/EOF."""

    def program(proc):
        lib = SocketLib(service.system, proc, variant=service.socket_variant)
        listener = lib.listen(service.socket_port)
        sock = yield from listener.accept()
        store = service.stores[node_id]
        buf = proc.space.mmap(4096)
        out = proc.space.mmap(4096)
        served = 0
        pending_ctx = None
        admission = service.admission.get(node_id)

        def _admit(lane, cost):
            """Socket-side twin of ``_ShardImpl._admit`` (generator)."""
            if admission is not None:
                ok = yield from admission.admit(proc, lane, cost)
                return ok
            yield from proc.compute(cost, priority=lane)
            return True

        try:
            while True:
                got = yield from sock.recv_exactly(buf, wire.REQ_HEADER.size)
                if got < wire.REQ_HEADER.size:
                    break  # EOF: peer closed without QUIT
                op, key_len, third = wire.decode_request_header(
                    proc.peek(buf, wire.REQ_HEADER.size))
                if op == wire.OP_TRACE:
                    # Self-describing prefix: stash the context for the
                    # next real request (no response frame).
                    got = yield from sock.recv_exactly(buf, third)
                    if got < third:
                        break
                    pending_ctx = wire.decode_trace_ctx(proc.peek(buf, third))
                    continue
                if op == wire.OP_QUIT:
                    break
                body = key_len + (third if op == wire.OP_PUT else 0)
                if body:
                    got = yield from sock.recv_exactly(buf, body)
                    if got < body:
                        break
                key = proc.peek(buf, key_len).decode()
                served += 1
                span = None
                if proc.tracer.enabled:
                    span = proc.tracer.begin(
                        "kv.serve", "sock op %d" % op,
                        track=proc.trace_track, data={"op": op})
                    if span is not None and pending_ctx is not None:
                        span.data["tid"] = pending_ctx[0]
                        span.data["xparent"] = pending_ctx[1]
                prev_ctx = proc.trace_ctx
                if pending_ctx is not None:
                    proc.trace_ctx = (pending_ctx[0],
                                      span.sid if span is not None
                                      else pending_ctx[1])
                try:
                    if op == wire.OP_GET:
                        ok = yield from _admit(LANE_CHEAP,
                                               service.op_cost(0))
                        if not ok:
                            frame = wire.encode_response(wire.ST_REJECTED)
                            yield from proc.write(out, frame)
                            yield from sock.send(out, len(frame))
                            continue
                        value = store.get(key)
                        frame = wire.encode_response(
                            wire.ST_MISS if value is None else wire.ST_OK,
                            value or b"")
                        yield from proc.write(out, frame)
                        yield from sock.send(out, len(frame))
                    elif op == wire.OP_PUT:
                        value = proc.peek(buf + key_len, third)
                        ok = yield from _admit(LANE_BULK,
                                               service.op_cost(len(value)))
                        if not ok:
                            frame = wire.encode_response(wire.ST_REJECTED)
                            yield from proc.write(out, frame)
                            yield from sock.send(out, len(frame))
                            continue
                        store.put(key, value)
                        yield from service.region_store(
                            node_id, proc, key, value)
                        service.enqueue_replication(
                            node_id, key, value, trace_ctx=proc.trace_ctx)
                        frame = wire.encode_response(wire.ST_OK)
                        yield from proc.write(out, frame)
                        yield from sock.send(out, len(frame))
                    elif op == wire.OP_DELETE:
                        ok = yield from _admit(LANE_BULK,
                                               service.op_cost(0))
                        if not ok:
                            frame = wire.encode_response(wire.ST_REJECTED)
                            yield from proc.write(out, frame)
                            yield from sock.send(out, len(frame))
                            continue
                        existed = store.delete(key)
                        yield from service.region_store(
                            node_id, proc, key, None)
                        service.enqueue_replication(
                            node_id, key, None, trace_ctx=proc.trace_ctx)
                        frame = wire.encode_response(
                            wire.ST_OK if existed else wire.ST_MISS)
                        yield from proc.write(out, frame)
                        yield from sock.send(out, len(frame))
                    elif op == wire.OP_SCAN:
                        ok = yield from _admit(LANE_BULK,
                                               service.op_cost(0))
                        if not ok:
                            # Streams have no response header; a
                            # distinguished sentinel record tells the
                            # client the whole scan was shed.
                            frame = wire.scan_reject_record()
                            yield from proc.write(out, frame)
                            yield from sock.send(out, len(frame))
                            continue
                        records = store.scan(key, third)
                        for rec_key, rec_value in records:
                            yield from proc.compute(
                                apply_cost(len(rec_value)),
                                priority=LANE_BULK)
                            frame = wire.encode_scan_record(rec_key, rec_value)
                            yield from proc.write(out, frame)
                            yield from sock.send(out, len(frame))
                        frame = wire.scan_end_record()
                        yield from proc.write(out, frame)
                        yield from sock.send(out, len(frame))
                    else:
                        frame = wire.encode_response(wire.ST_ERROR)
                        yield from proc.write(out, frame)
                        yield from sock.send(out, len(frame))
                finally:
                    proc.trace_ctx = prev_ctx
                    proc.tracer.end(span)
                    pending_ctx = None
            yield from sock.close()
        except (SocketTimeoutError, VmmcTimeoutError):
            pass  # peer died; the hardened recv bounded the wait
        return served

    return program


def make_repl_program(service: "KVService", rank: int):
    """The NX rank program for node ``rank``: replication receive loop.

    Startup: participate in the shard-map broadcast (root 0).  Then
    spawn the sender co-process (it shares this rank's NXProcess; the
    send and receive halves keep disjoint state) and apply incoming
    records until every peer's stop has arrived.  Shutdown: wait for
    the local sender, then reduce applied-record counts to rank 0 —
    skipped under an armed fault plan, where a dead peer would turn
    the collective into a bounded-timeout cascade.
    """
    system = service.system
    size = len(service.nodes)

    def program(nx):
        proc = nx.proc
        page = proc.space.mmap(4096)
        blob = service.shard_map_blob()
        try:
            if rank == 0:
                proc.poke(page, blob)
            yield from collectives.broadcast(nx, page, len(blob), root=0)
            if proc.peek(page, len(blob)) != blob:
                service.map_mismatches.append(rank)
        except VmmcTimeoutError:
            pass  # faulted startup: fall back to the local map copy
        sender_done = service.sim_event("kv-repl-tx-done-n%d" % rank)
        service.handles.append(system.spawn(
            rank, _sender_program(service, nx, rank, sender_done),
            name="kv-repl-tx-n%d" % rank))
        stops = 0
        applied = 0
        down_until = 0.0
        hardened = system.faults.enabled
        rbuf = proc.space.mmap(4096)
        try:
            while stops < size - 1:
                nbytes = yield from nx.crecv(REPL_TYPE, rbuf, 2048)
                blob = proc.peek(rbuf, nbytes)
                kind = blob[0]
                # Stops pass first — a crashed replica still shuts down
                # cleanly; only *data* records are lost while it is gone.
                if kind == wire.REPL_STOP:
                    stops += 1
                    continue
                if hardened:
                    fault = system.faults.draw(FaultSite.KV_REPLICA,
                                               node=rank)
                    if fault is not None and fault.kind == FaultKind.CRASH:
                        down_until = proc.sim.now + float(
                            fault.params.get("duration_us", 0.0))
                    if proc.sim.now < down_until:
                        # The replica is "down": records arrive but the
                        # apply side discards them — the silent
                        # divergence anti-entropy exists to repair.
                        service.repl_crash_drops += 1
                        continue
                # Replication apply rides the background lane: it only
                # gets the CPU when no client op is waiting, so fan-out
                # work cannot steal capacity from the request path.
                if kind == wire.REPL_VDATA:
                    key, version, value = wire.decode_vrepl_record(blob)
                else:
                    _kind, key, value = wire.decode_repl_record(blob)
                    version = None
                yield from proc.compute(
                    service.op_cost(0 if value is None else len(value)),
                    priority=LANE_BACKGROUND)
                service.stores[rank].apply_replication(key, value,
                                                       version=version)
                yield from service.region_store(rank, proc, key, value)
                applied += 1
        except VmmcTimeoutError:
            pass  # a peer died; its stop will never come
        yield sender_done
        if not system.faults.enabled:
            total = yield from collectives.reduce_int(
                nx, applied, lambda a, b: a + b, root=0)
            if rank == 0:
                service.repl_applied_total = total
        return applied

    return program


def _sender_program(service: "KVService", nx, rank: int, done):
    """Drain this node's replication queue into NX point-to-point sends.

    Runs as its own simulated process but drives the *rank's* NX send
    half (slot acquisition and credit reclaim never touch the receive
    half the rank program is blocked in).  A per-target send failure
    under faults is counted and skipped — replication is best-effort
    once the fabric is faulty; the client-visible contract is the
    synchronous request path, not the fan-out.
    """
    queue = service.repl_queues[rank]
    system = service.system

    def program(_proc):
        sbuf = nx.proc.space.mmap(4096)
        sent = 0
        try:
            while True:
                item = yield queue.get()
                if item is None:
                    break
                targets, record, ctx = item
                yield from nx.proc.write(sbuf, record)
                # Adopt the serving span's context around the fan-out so
                # each csend parents under the request that queued it.
                prev_ctx = nx.proc.trace_ctx
                nx.proc.trace_ctx = ctx
                try:
                    for target in targets:
                        try:
                            yield from nx.csend(REPL_TYPE, sbuf,
                                                len(record), to=target)
                            sent += 1
                        except (VmmcTimeoutError, VmmcError):
                            service.repl_send_failures += 1
                finally:
                    nx.proc.trace_ctx = prev_ctx
            stop = wire.encode_repl_record(wire.REPL_STOP)
            yield from nx.proc.write(sbuf, stop)
            for peer in service.nodes:
                if peer == rank:
                    continue
                try:
                    yield from nx.csend(REPL_TYPE, sbuf, len(stop), to=peer)
                except (VmmcTimeoutError, VmmcError):
                    service.repl_send_failures += 1
        finally:
            done.succeed()
        return sent

    return program
