"""The per-node shard store: a host-level dict plus serving counters.

The *data structure* is untimed on purpose — the paper's question is
what the communication stack costs, so the simulated time of a request
is transport time plus an explicit apply cost the server charges with
``proc.compute`` (see ``server.py``), not Python dict performance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["ShardStore"]


class ShardStore:
    """One shard server's keyspace and its operation counters."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.data: Dict[str, bytes] = {}
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.deletes = 0
        self.scans = 0
        self.repl_applied = 0

    def get(self, key: str) -> Optional[bytes]:
        """The value for ``key``, or None on a miss."""
        self.gets += 1
        value = self.data.get(key)
        if value is not None:
            self.hits += 1
        return value

    def put(self, key: str, value: bytes) -> None:
        """Upsert ``key``."""
        self.puts += 1
        self.data[key] = value

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed."""
        self.deletes += 1
        return self.data.pop(key, None) is not None

    def scan(self, prefix: str, limit: int) -> List[Tuple[str, bytes]]:
        """Up to ``limit`` records with keys starting with ``prefix``,
        in sorted key order (deterministic regardless of insert order)."""
        self.scans += 1
        out = []
        for key in sorted(self.data):
            if key.startswith(prefix):
                out.append((key, self.data[key]))
                if len(out) >= limit:
                    break
        return out

    def apply_replication(self, key: str, value: Optional[bytes]) -> None:
        """Apply a replicated upsert (or delete when ``value`` is None)."""
        self.repl_applied += 1
        if value is None:
            self.data.pop(key, None)
        else:
            self.data[key] = value

    def counters(self) -> Dict[str, int]:
        """Operation counters plus the live key count."""
        return {
            "keys": len(self.data),
            "gets": self.gets,
            "hits": self.hits,
            "puts": self.puts,
            "deletes": self.deletes,
            "scans": self.scans,
            "repl_applied": self.repl_applied,
        }
