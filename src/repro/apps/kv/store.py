"""The per-node shard store: a host-level dict plus serving counters.

The *data structure* is untimed on purpose — the paper's question is
what the communication stack costs, so the simulated time of a request
is transport time plus an explicit apply cost the server charges with
``proc.compute`` (see ``server.py``), not Python dict performance.

Every record also carries a version dot (``meta``), stamped
:data:`~.replication.versions.VERSION_ZERO` on the plain default path
so unversioned replicas that hold the same bytes also hold the same
metadata — their Merkle digests agree without any new wire traffic.
A key present in ``meta`` but absent from ``data`` is a tombstone: the
versioned delete path leaves one so anti-entropy can tell "deleted
here" from "never written here" (docs/REPLICATION.md).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .replication.versions import VERSION_ZERO, Version, wins

__all__ = ["ShardStore"]


class ShardStore:
    """One shard server's keyspace and its operation counters."""

    def __init__(self, node_id: int):
        self.node_id = node_id
        self.data: Dict[str, bytes] = {}
        self.meta: Dict[str, Version] = {}
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.deletes = 0
        self.scans = 0
        self.repl_applied = 0
        self.repl_stale = 0
        # The service hooks this (anti-entropy on) to keep pair Merkle
        # trees current; None on the default path so plain runs pay no
        # callback dispatch.
        self.on_mutate: Optional[
            Callable[[str, Version, Optional[bytes]], None]] = None

    def _note(self, key: str, version: Version,
              value: Optional[bytes]) -> None:
        self.meta[key] = version
        if self.on_mutate is not None:
            self.on_mutate(key, version, value)

    def get(self, key: str) -> Optional[bytes]:
        """The value for ``key``, or None on a miss."""
        self.gets += 1
        value = self.data.get(key)
        if value is not None:
            self.hits += 1
        return value

    def put(self, key: str, value: bytes,
            version: Optional[Version] = None) -> None:
        """Upsert ``key`` (the plain path stamps :data:`VERSION_ZERO`)."""
        self.puts += 1
        self.data[key] = value
        self._note(key, VERSION_ZERO if version is None else version, value)

    def delete(self, key: str, version: Optional[Version] = None) -> bool:
        """Remove ``key``; True if it existed.  Leaves a tombstone."""
        self.deletes += 1
        existed = self.data.pop(key, None) is not None
        self._note(key, VERSION_ZERO if version is None else version, None)
        return existed

    def preload(self, key: str, value: bytes) -> None:
        """Seed ``key`` without touching serving counters."""
        self.data[key] = value
        self._note(key, VERSION_ZERO, value)

    def scan(self, prefix: str, limit: int) -> List[Tuple[str, bytes]]:
        """Up to ``limit`` records with keys starting with ``prefix``,
        in sorted key order (deterministic regardless of insert order)."""
        self.scans += 1
        out = []
        for key in sorted(self.data):
            if key.startswith(prefix):
                out.append((key, self.data[key]))
                if len(out) >= limit:
                    break
        return out

    # ------------------------------------------------------ versions

    def version_of(self, key: str) -> Version:
        """The version dot ``key`` last committed at (ZERO if unseen)."""
        return self.meta.get(key, VERSION_ZERO)

    def assign_version(self, key: str, writer: int) -> Version:
        """The next version a coordinated write of ``key`` should carry."""
        return (self.version_of(key)[0] + 1, writer)

    def apply_versioned(self, key: str, version: Version,
                        value: Optional[bytes]) -> bool:
        """Apply a versioned record through the LWW guard.

        Returns True when the record won and was stored (or tombstoned);
        stale records are rejected and counted, which is what keeps
        concurrent replication, read repair, and anti-entropy applies
        convergent — every replica keeps the same winner.
        """
        if key in self.meta and not wins(version, value,
                                         self.meta[key],
                                         self.data.get(key)):
            self.repl_stale += 1
            return False
        if value is None:
            self.data.pop(key, None)
        else:
            self.data[key] = value
        self._note(key, version, value)
        return True

    def apply_replication(self, key: str, value: Optional[bytes],
                          version: Optional[Version] = None) -> None:
        """Apply a replicated upsert (or delete when ``value`` is None)."""
        self.repl_applied += 1
        if version is not None:
            self.apply_versioned(key, version, value)
            return
        if value is None:
            self.data.pop(key, None)
        else:
            self.data[key] = value
        self._note(key, VERSION_ZERO, value)

    def counters(self) -> Dict[str, int]:
        """Operation counters plus the live key count."""
        return {
            "keys": len(self.data),
            "gets": self.gets,
            "hits": self.hits,
            "puts": self.puts,
            "deletes": self.deletes,
            "scans": self.scans,
            "repl_applied": self.repl_applied,
        }
