"""User-level communication libraries built on VMMC (systems S14-S18).

* :mod:`repro.libs.nx` — Intel NX message passing (compatibility)
* :mod:`repro.libs.rpc` — XDR + SunRPC-compatible VRPC (compatibility)
* :mod:`repro.libs.sockets` — BSD stream sockets (compatibility)
* :mod:`repro.libs.shrimp_rpc` — the specialized, non-compatible RPC
* :mod:`repro.libs.collectives` — software multicast/reduce/gather
* :mod:`repro.libs.shmem` — two-party shared memory over AU bindings
"""
