"""Shared memory over VMMC: bidirectional automatic-update regions.

Section 2 lists shared memory among the models VMMC supports.  The
hardware gives exactly this much: two processes export mirror-image
regions and bind each to the other, so every CPU store by either party
appears in both copies — an update-propagated shared segment (the
Pipelined RAM / Merlin lineage the related-work section cites).

What it does *not* give is coherence: if both parties write the same
word concurrently, each copy ends up with its own writer's value (the
DMA-written updates are not re-snooped, so there is no echo and no
ordering between the two writers).  The discipline is single writer
per location — which the helpers here (flags, a token) make practical.
N-party transparent sharing is impossible on this NIC: a page binds to
one destination, and the multicast feature was removed from the
hardware (Section 6); fan-out belongs in software
(:mod:`repro.libs.collectives`).
"""

from __future__ import annotations

import struct
from typing import Optional

from ..hardware.config import CacheMode
from ..kernel.daemon import AutomaticBinding
from ..testbed import Rendezvous
from ..vmmc import VmmcEndpoint

__all__ = ["SharedRegion"]


class SharedRegion:
    """One endpoint's view of a two-party shared segment.

    Create one on each side with matching ``group`` keys and opposite
    ``member`` ids (0 and 1) via :meth:`join`; afterwards plain
    ``write``/``read`` behave like shared memory with remote-update
    latency.
    """

    def __init__(self, ep: VmmcEndpoint, vaddr: int, nbytes: int,
                 binding: AutomaticBinding, member: int):
        self.ep = ep
        self.proc = ep.proc
        self.vaddr = vaddr
        self.nbytes = nbytes
        self.binding = binding
        self.member = member

    # ------------------------------------------------------------------
    @classmethod
    def join(cls, ep: VmmcEndpoint, rdv: Rendezvous, group: str,
             nbytes: int, member: int):
        """Generator: establish one side of the shared segment.

        Both members allocate + export a copy, exchange export ids via
        the rendezvous, import the peer's copy, and AU-bind their own
        copy to it.  Returns the :class:`SharedRegion`.
        """
        if member not in (0, 1):
            raise ValueError("two-party sharing: member must be 0 or 1")
        page = ep.proc.config.page_size
        rounded = -(-nbytes // page) * page
        vaddr = ep.alloc_buffer(rounded, cache_mode=CacheMode.WRITE_THROUGH)
        export = yield from ep.export(vaddr, rounded)
        rdv.put("%s-%d" % (group, member), (ep.proc.node.node_id, export.export_id))
        peer_node, peer_export = yield rdv.get("%s-%d" % (group, 1 - member))
        imported = yield from ep.import_buffer(peer_node, peer_export)
        binding = yield from ep.bind(vaddr, imported)
        return cls(ep, vaddr, rounded, binding, member)

    # ------------------------------------------------------------------
    def write(self, offset: int, data: bytes):
        """Store into the segment; propagates to the peer's copy."""
        self._check(offset, len(data))
        yield from self.proc.write(self.vaddr + offset, data)

    def read(self, offset: int, nbytes: int):
        """Load from the local copy (updates land here asynchronously)."""
        self._check(offset, nbytes)
        data = yield from self.proc.read(self.vaddr + offset, nbytes)
        return data

    def peek(self, offset: int, nbytes: int) -> bytes:
        """Untimed debug read."""
        self._check(offset, nbytes)
        return self.proc.peek(self.vaddr + offset, nbytes)

    # -- synchronization helpers ------------------------------------------
    def set_flag(self, offset: int, value: int):
        """Word-sized flag store (single-writer location)."""
        yield from self.write(offset, struct.pack("<I", value))

    def wait_flag(self, offset: int, value: int):
        """Spin (watch-assisted) until the flag at ``offset`` equals
        ``value``."""
        expected = struct.pack("<I", value)
        yield from self.proc.poll(self.vaddr + offset, 4, lambda b: b == expected)

    def wait_change(self, offset: int, nbytes: int, current: bytes):
        """Wait until the bytes at ``offset`` differ from ``current``;
        returns the new bytes."""
        self._check(offset, nbytes)
        data = yield from self.proc.poll(
            self.vaddr + offset, nbytes, lambda b: b != current
        )
        return data

    def leave(self):
        """Tear down this side's binding (the export stays until the
        process exits or unexports explicitly)."""
        yield from self.ep.unbind(self.binding)

    # ------------------------------------------------------------------
    def _check(self, offset: int, nbytes: int) -> None:
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                "access [%d, %d) outside shared region of %d bytes"
                % (offset, offset + nbytes, self.nbytes)
            )
