"""XDR: External Data Representation (RFC 1014 / RFC 4506).

The real wire encoding SunRPC uses — big-endian, 4-byte alignment,
length-prefixed variable data — implemented as a plain codec so the
VRPC library produces byte-compatible call and reply messages.  This
is the 'XDR implements architecture-independent data representation'
layer of Figure 6; the stream layer is folded into it at the call
sites (the encoder writes straight into the communication buffer's
mirror, the decoder reads straight out of the receive buffer).

Pure Python, no simulation dependencies: time is charged by the VRPC
runtime, which knows how many bytes moved.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional, Sequence

__all__ = ["XdrError", "XdrEncoder", "XdrDecoder", "pad_to_word"]


class XdrError(Exception):
    """Malformed XDR data or misuse of the codec."""


def pad_to_word(nbytes: int) -> int:
    """Round a byte count up to the XDR 4-byte unit."""
    return (nbytes + 3) & ~3


class XdrEncoder:
    """Append-only XDR serializer."""

    def __init__(self):
        self._chunks: List[bytes] = []
        self._length = 0

    # -- primitives ------------------------------------------------------
    def pack_int(self, value: int) -> "XdrEncoder":
        """XDR-encode a int."""
        if not -(1 << 31) <= value < (1 << 31):
            raise XdrError("int out of range: %r" % (value,))
        return self._append(struct.pack(">i", value))

    def pack_uint(self, value: int) -> "XdrEncoder":
        """XDR-encode a uint."""
        if not 0 <= value < (1 << 32):
            raise XdrError("uint out of range: %r" % (value,))
        return self._append(struct.pack(">I", value))

    def pack_hyper(self, value: int) -> "XdrEncoder":
        """XDR-encode a hyper."""
        if not -(1 << 63) <= value < (1 << 63):
            raise XdrError("hyper out of range: %r" % (value,))
        return self._append(struct.pack(">q", value))

    def pack_uhyper(self, value: int) -> "XdrEncoder":
        """XDR-encode a uhyper."""
        if not 0 <= value < (1 << 64):
            raise XdrError("uhyper out of range: %r" % (value,))
        return self._append(struct.pack(">Q", value))

    def pack_bool(self, value: bool) -> "XdrEncoder":
        """XDR-encode a bool."""
        return self.pack_int(1 if value else 0)

    def pack_enum(self, value: int) -> "XdrEncoder":
        """XDR-encode a enum."""
        return self.pack_int(value)

    def pack_float(self, value: float) -> "XdrEncoder":
        """XDR-encode a float."""
        return self._append(struct.pack(">f", value))

    def pack_double(self, value: float) -> "XdrEncoder":
        """XDR-encode a double."""
        return self._append(struct.pack(">d", value))

    # -- opaque / strings ---------------------------------------------------
    def pack_fixed_opaque(self, data: bytes, n: int) -> "XdrEncoder":
        """XDR-encode a fixed opaque."""
        if len(data) != n:
            raise XdrError("fixed opaque needs exactly %d bytes, got %d" % (n, len(data)))
        return self._append(data + b"\x00" * (pad_to_word(n) - n))

    def pack_opaque(self, data: bytes) -> "XdrEncoder":
        """XDR-encode a opaque."""
        self.pack_uint(len(data))
        return self._append(data + b"\x00" * (pad_to_word(len(data)) - len(data)))

    def pack_string(self, text: str) -> "XdrEncoder":
        """XDR-encode a string."""
        return self.pack_opaque(text.encode("utf-8"))

    # -- composites -----------------------------------------------------------
    def pack_fixed_array(self, items: Sequence, pack_item: Callable) -> "XdrEncoder":
        """XDR-encode a fixed array."""
        for item in items:
            pack_item(self, item)
        return self

    def pack_array(self, items: Sequence, pack_item: Callable) -> "XdrEncoder":
        """XDR-encode a array."""
        self.pack_uint(len(items))
        return self.pack_fixed_array(items, pack_item)

    def pack_optional(self, value, pack_item: Callable) -> "XdrEncoder":
        """XDR-encode a optional."""
        if value is None:
            return self.pack_bool(False)
        self.pack_bool(True)
        pack_item(self, value)
        return self

    # -- output ------------------------------------------------------------------
    def _append(self, data: bytes) -> "XdrEncoder":
        self._chunks.append(data)
        self._length += len(data)
        return self

    def __len__(self) -> int:
        return self._length

    def getvalue(self) -> bytes:
        """The serialized bytes."""
        return b"".join(self._chunks)


class XdrDecoder:
    """Sequential XDR deserializer."""

    def __init__(self, data: bytes, offset: int = 0):
        self._data = data
        self._offset = offset

    @property
    def offset(self) -> int:
        return self._offset

    def remaining(self) -> int:
        """Bytes left to decode."""
        return len(self._data) - self._offset

    def done(self) -> bool:
        """Has every byte been consumed?"""
        return self._offset >= len(self._data)

    def _take(self, nbytes: int) -> bytes:
        if self._offset + nbytes > len(self._data):
            raise XdrError(
                "truncated XDR data: need %d bytes at offset %d of %d"
                % (nbytes, self._offset, len(self._data))
            )
        piece = self._data[self._offset : self._offset + nbytes]
        self._offset += nbytes
        return piece

    # -- primitives -------------------------------------------------------
    def unpack_int(self) -> int:
        """XDR-decode a int."""
        return struct.unpack(">i", self._take(4))[0]

    def unpack_uint(self) -> int:
        """XDR-decode a uint."""
        return struct.unpack(">I", self._take(4))[0]

    def unpack_hyper(self) -> int:
        """XDR-decode a hyper."""
        return struct.unpack(">q", self._take(8))[0]

    def unpack_uhyper(self) -> int:
        """XDR-decode a uhyper."""
        return struct.unpack(">Q", self._take(8))[0]

    def unpack_bool(self) -> bool:
        """XDR-decode a bool."""
        value = self.unpack_int()
        if value not in (0, 1):
            raise XdrError("bool must be 0 or 1, got %d" % value)
        return bool(value)

    def unpack_enum(self) -> int:
        """XDR-decode a enum."""
        return self.unpack_int()

    def unpack_float(self) -> float:
        """XDR-decode a float."""
        return struct.unpack(">f", self._take(4))[0]

    def unpack_double(self) -> float:
        """XDR-decode a double."""
        return struct.unpack(">d", self._take(8))[0]

    # -- opaque / strings -----------------------------------------------------
    def unpack_fixed_opaque(self, n: int) -> bytes:
        """XDR-decode a fixed opaque."""
        data = self._take(pad_to_word(n))
        return data[:n]

    def unpack_opaque(self, max_length: Optional[int] = None) -> bytes:
        """XDR-decode a opaque."""
        n = self.unpack_uint()
        if max_length is not None and n > max_length:
            raise XdrError("opaque of %d exceeds bound %d" % (n, max_length))
        if n > self.remaining():
            raise XdrError("opaque length %d exceeds remaining data" % n)
        return self.unpack_fixed_opaque(n)

    def unpack_string(self, max_length: Optional[int] = None) -> str:
        """XDR-decode a string."""
        return self.unpack_opaque(max_length).decode("utf-8")

    # -- composites ---------------------------------------------------------------
    def unpack_fixed_array(self, n: int, unpack_item: Callable) -> list:
        """XDR-decode a fixed array."""
        return [unpack_item(self) for _ in range(n)]

    def unpack_array(self, unpack_item: Callable, max_length: Optional[int] = None) -> list:
        """XDR-decode a array."""
        n = self.unpack_uint()
        if max_length is not None and n > max_length:
            raise XdrError("array of %d exceeds bound %d" % (n, max_length))
        if n * 4 > self.remaining():
            raise XdrError("array of %d cannot fit remaining data" % n)
        return self.unpack_fixed_array(n, unpack_item)

    def unpack_optional(self, unpack_item: Callable):
        """XDR-decode a optional."""
        if self.unpack_bool():
            return unpack_item(self)
        return None
