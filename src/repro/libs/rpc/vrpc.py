"""VRPC: the SunRPC-compatible runtime on VMMC (Section 4.2).

Only the runtime library differs from stock SunRPC — 'we changed only
the SunRPC runtime library; the stub generator and the operating system
kernel are unchanged'.  Stubs are therefore plain encode/decode
callables over the XDR codec (what rpcgen would have emitted), and the
wire bytes are genuine RFC 1057 messages.

Binding establishes the pair of cyclic stream queues (one mapping per
direction) over the Ethernet, exactly like the sockets library's
connection setup; calls then never leave user level.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...kernel.system import ShrimpSystem
from ...vmmc import VmmcEndpoint, VmmcTimeoutError, VmmcTransferError, attach
from ..recovery import MAX_XMIT, attempt_timeout_us
from .rpclib import (
    PROC_UNAVAIL,
    PROG_MISMATCH,
    PROG_UNAVAIL,
    RpcCallHeader,
    RpcFault,
    RpcReplyHeader,
    SUCCESS,
    SYSTEM_ERR,
    decode_trace_cred,
    encode_trace_cred,
)
from .stream import STREAM_CTRL_BYTES, VrpcStream
from .xdr import XdrDecoder, XdrEncoder

__all__ = ["VrpcServer", "VrpcClient", "clnt_create", "RpcFault", "RpcTimeout"]


class RpcTimeout(RpcFault, VmmcTimeoutError):
    """A hardened VRPC wait expired: the retransmission budget ran out
    (client) or no call arrived within the idle bound (server)."""

    def __init__(self, message: str):
        RpcFault.__init__(self, SYSTEM_ERR, message)

_ETH_RPC_BASE = 60000
_ETH_REPLY_BASE = 80000
# Hardened-protocol budgets (docs/FAULTS.md): exponential backoff from
# a payload-scaled base on the client, a long idle bound on the server.
_RETRY_BASE_US = 400.0
_RETRY_PER_BYTE_US = 0.1
_SVC_IDLE_US = 1_000_000.0
_xids = itertools.count(0x5000)
_CALL_HEADER_BYTES = 40
_REPLY_HEADER_BYTES = 24
_reply_ports = itertools.count(1)

# Stub signatures: encode(XdrEncoder, value) and decode(XdrDecoder) -> value.
EncodeFn = Callable[[XdrEncoder, object], object]
DecodeFn = Callable[[XdrDecoder], object]


def _u32_pack(value: int) -> bytes:
    import struct

    return struct.pack("<I", value & 0xFFFFFFFF)


def encode_void(enc: XdrEncoder, value: object) -> None:
    """The void stub (null procedures)."""


def decode_void(dec: XdrDecoder) -> None:
    """The void result stub."""
    return None


@dataclass
class _Procedure:
    func: Callable
    decode_args: DecodeFn
    encode_result: EncodeFn


@dataclass
class _BindRequest:
    prog: int
    vers: int
    client_node: int
    reply_port: int
    stream_export: int
    ring_bytes: int
    automatic: bool


@dataclass
class _BindReply:
    ok: bool
    error: str = ""
    server_node: int = 0
    stream_export: int = 0
    ring_bytes: int = 0


class _Endpoint:
    """Shared stream setup for client and server halves."""

    def __init__(self, system: ShrimpSystem, proc: UserProcess,
                 automatic: bool, ring_bytes: int,
                 endpoint: Optional[VmmcEndpoint] = None):
        self.system = system
        self.proc = proc
        self.automatic = automatic
        self.ring_bytes = ring_bytes
        self.ep = endpoint or attach(system, proc)
        self.ethernet = system.machine.ethernet
        self.stream: Optional[VrpcStream] = None

    def _make_local_half(self):
        in_vaddr = self.ep.alloc_buffer(self.ring_bytes, cache_mode=CacheMode.WRITE_THROUGH)
        export = yield from self.ep.export(in_vaddr, self.ring_bytes)
        stream = VrpcStream(self.proc, self.ep, in_vaddr, self.ring_bytes,
                            self.automatic)
        self.stream = stream
        return export, stream

    def _attach_remote_half(self, stream: VrpcStream, node: int,
                            export_id: int, ring_bytes: int):
        page = self.proc.config.page_size
        imp = yield from self.ep.import_buffer(node, export_id)
        if self.automatic:
            au_out = self.ep.alloc_buffer(ring_bytes, cache_mode=CacheMode.WRITE_THROUGH)
            # VRPC writes each stream piece as one burst, so a short
            # per-page flush timer gets the tail packet out promptly.
            yield from self.ep.bind(au_out, imp, combining=True, timer_us=0.25)
            staging = 0
        else:
            # Control words still travel by AU: mirror only the first page.
            au_out = self.ep.alloc_buffer(page, cache_mode=CacheMode.WRITE_THROUGH)
            yield from self.ep.bind(au_out, imp, nbytes=page, combining=True,
                                    timer_us=0.25)
            staging = self.ep.alloc_buffer(ring_bytes, cache_mode=CacheMode.WRITE_BACK)
        stream.attach_peer(imp, au_out, staging)


class VrpcServer(_Endpoint):
    """A SunRPC server process: register procedures, bind, svc_run.

    Multiple clients may bind; ``svc_run`` multiplexes across all bound
    transports (the select() loop of a real svc_run), serving whichever
    stream has a flagged call.
    """

    def __init__(self, system: ShrimpSystem, proc: UserProcess,
                 prog: int, vers: int, automatic: bool = True,
                 ring_bytes: int = 16384, **kwargs):
        super().__init__(system, proc, automatic, ring_bytes, **kwargs)
        self.prog = prog
        self.vers = vers
        self.procedures: Dict[int, _Procedure] = {}
        self.transports: list = []
        self.calls_served = 0

    def register(self, proc_num: int, func: Callable,
                 decode_args: DecodeFn = decode_void,
                 encode_result: EncodeFn = encode_void) -> None:
        """svc_register: install a procedure's handler and its stubs."""
        self.procedures[proc_num] = _Procedure(func, decode_args, encode_result)

    def accept_binding(self):
        """Wait for one client binding (the RPC analog of accept)."""
        frame = yield self.ethernet.recv(
            self.proc.node.node_id, _ETH_RPC_BASE + self.prog
        )
        request: _BindRequest = frame.payload
        if request.prog != self.prog or request.vers != self.vers:
            reply = _BindReply(ok=False, error="program/version mismatch")
            self.ethernet.send(self.proc.node.node_id, request.client_node,
                               request.reply_port, reply)
            return False
        self.automatic = request.automatic
        self.ring_bytes = request.ring_bytes
        export, stream = yield from self._make_local_half()
        reply = _BindReply(
            ok=True,
            server_node=self.proc.node.node_id,
            stream_export=export.export_id,
            ring_bytes=self.ring_bytes,
        )
        self.ethernet.send(self.proc.node.node_id, request.client_node,
                           request.reply_port, reply)
        yield from self._attach_remote_half(
            stream, request.client_node, request.stream_export, request.ring_bytes
        )
        self.transports.append(stream)
        return True

    def _wait_any_call(self):
        """Block until some bound transport has a flagged call; returns
        that transport (round-robin fairness across clients)."""
        if not self.transports:
            raise RpcFault(PROG_UNAVAIL, "svc_run with no bound transport")
        if len(self.transports) == 1:
            return self.transports[0]
        start = self.calls_served % len(self.transports)
        memory = self.proc.node.memory
        hardened = any(stream.hardened for stream in self.transports)
        deadline = self.proc.sim.now + _SVC_IDLE_US
        while True:
            for shift in range(len(self.transports)):
                stream = self.transports[(start + shift) % len(self.transports)]
                flagged = yield from stream.check_flag()
                if flagged:
                    return stream
                # A bumped xmit word without a new flag means a client
                # never saw its reply — replay it before sleeping.
                yield from stream.service_retransmits()
            # Nothing flagged: sleep until any transport's flag word moves.
            from ...sim import Event

            woke = Event(self.proc.sim, name="svc-wait")
            watches = []
            # Hardened streams also watch the xmit/crc words so a pure
            # retransmission (same flag) wakes the loop.
            window = 16 if hardened else 4
            for stream in self.transports:
                for paddr, length in self.proc.space.translate(stream.in_vaddr, window):
                    watches.append(memory.add_watch(
                        paddr, length,
                        lambda p, n: None if woke.triggered else woke.succeed(None),
                    ))
            arrived = any(
                self.proc.peek(stream.in_vaddr, 4) != _u32_pack(stream.flag_in)
                for stream in self.transports
            )
            if not arrived:
                if hardened:
                    idle = self.proc.sim.timeout(max(0.0, deadline - self.proc.sim.now))
                    yield self.proc.sim.any_of([woke, idle])
                    if not woke.triggered:
                        for watch in watches:
                            memory.remove_watch(watch)
                        raise RpcTimeout(
                            "svc_run idle: no call within %.0f us" % _SVC_IDLE_US
                        )
                else:
                    yield woke
            for watch in watches:
                memory.remove_watch(watch)
            yield self.proc.sim.timeout(self.proc.config.costs.vmmc_poll_check)

    def svc_run(self, max_calls: Optional[int] = None):
        """Serve calls from every bound client; returns after
        ``max_calls`` (None = forever)."""
        costs = self.proc.config.costs
        served = 0
        while max_calls is None or served < max_calls:
            stream = yield from self._wait_any_call()
            if stream.hardened:
                raw = yield from stream.recv_message(timeout_us=_SVC_IDLE_US)
                if raw is None:
                    raise RpcTimeout(
                        "svc_run idle: no call within %.0f us" % _SVC_IDLE_US
                    )
            else:
                raw = yield from stream.recv_message()
            span = None
            if self.proc.tracer.enabled:
                span = self.proc.tracer.begin(
                    "vrpc.serve", "serve call", track=self.proc.trace_track,
                )
            yield from self.proc.compute(costs.vrpc_header_process)
            dec = XdrDecoder(raw)
            header = RpcCallHeader.decode(dec)
            wire_ctx = decode_trace_cred(header.cred)
            if span is not None and wire_ctx is not None:
                span.data = {"tid": wire_ctx[0], "xparent": wire_ctx[1]}
            prev_ctx = self.proc.trace_ctx
            if wire_ctx is not None:
                self.proc.trace_ctx = (
                    wire_ctx[0],
                    span.sid if span is not None else wire_ctx[1])
            try:
                reply_enc = XdrEncoder()
                if header.prog != self.prog:
                    RpcReplyHeader(header.xid, PROG_UNAVAIL).encode(reply_enc)
                elif header.vers != self.vers:
                    RpcReplyHeader(header.xid, PROG_MISMATCH,
                                   (self.vers, self.vers)).encode(reply_enc)
                elif header.proc not in self.procedures:
                    RpcReplyHeader(header.xid, PROC_UNAVAIL).encode(reply_enc)
                else:
                    procedure = self.procedures[header.proc]
                    args = procedure.decode_args(dec)
                    yield from self.proc.compute(
                        costs.vrpc_xdr_per_byte
                        * max(0, dec.offset - _CALL_HEADER_BYTES)
                    )
                    result = procedure.func(args)
                    RpcReplyHeader(header.xid, SUCCESS).encode(reply_enc)
                    procedure.encode_result(reply_enc, result)
                payload = reply_enc.getvalue()
                yield from self.proc.compute(
                    costs.vrpc_xdr_per_byte
                    * max(0, len(payload) - _REPLY_HEADER_BYTES)
                )
                if stream.hardened:
                    try:
                        yield from stream.send_message(payload)
                    except VmmcTransferError:
                        # A DU abort dropped the reply; the client's
                        # retransmission will trigger a replay.
                        pass
                else:
                    yield from stream.send_message(payload)
            finally:
                self.proc.trace_ctx = prev_ctx
                # Close here, not after: a fault-raised timeout in the
                # reply send must not leak the serve span.
                self.proc.tracer.end(span)
            self.calls_served += 1
            served += 1


class VrpcClient(_Endpoint):
    """A bound SunRPC client handle (what clnt_create returns)."""

    def __init__(self, system: ShrimpSystem, proc: UserProcess,
                 prog: int, vers: int, automatic: bool = True,
                 ring_bytes: int = 16384, **kwargs):
        super().__init__(system, proc, automatic, ring_bytes, **kwargs)
        self.prog = prog
        self.vers = vers
        self.calls_made = 0

    def bind(self, server_node: int):
        """Establish the stream pair with the server's daemon."""
        export, stream = yield from self._make_local_half()
        reply_port = _ETH_REPLY_BASE + next(_reply_ports)
        request = _BindRequest(
            prog=self.prog, vers=self.vers,
            client_node=self.proc.node.node_id,
            reply_port=reply_port,
            stream_export=export.export_id,
            ring_bytes=self.ring_bytes,
            automatic=self.automatic,
        )
        self.ethernet.send(self.proc.node.node_id, server_node,
                           _ETH_RPC_BASE + self.prog, request)
        frame = yield self.ethernet.recv(self.proc.node.node_id, reply_port)
        reply: _BindReply = frame.payload
        if not reply.ok:
            raise RpcFault(PROG_UNAVAIL, reply.error)
        yield from self._attach_remote_half(
            stream, reply.server_node, reply.stream_export, reply.ring_bytes
        )

    def _exchange_hardened(self, payload: bytes, xid: int):
        """Send the call, retransmitting with backoff until the CRC-valid
        reply lands; raises :class:`RpcTimeout` when the budget runs out."""
        base_us = _RETRY_BASE_US + _RETRY_PER_BYTE_US * len(payload)
        try:
            yield from self.stream.send_message(payload)
        except VmmcTransferError:
            pass  # the retry loop below repairs a dropped first copy
        for attempt in range(MAX_XMIT):
            if attempt:
                try:
                    yield from self.stream.resend_last()
                except VmmcTransferError:
                    continue
            raw = yield from self.stream.recv_message(
                timeout_us=attempt_timeout_us(base_us, attempt)
            )
            if raw is not None:
                return raw
        raise RpcTimeout(
            "no reply for xid %#x after %d transmissions" % (xid, MAX_XMIT)
        )

    def call(self, proc_num: int, args: object = None,
             encode_args: EncodeFn = encode_void,
             decode_result: DecodeFn = decode_void):
        """clnt_call: synchronous remote procedure call."""
        costs = self.proc.config.costs
        span = None
        cred = b""
        if self.proc.tracer.enabled:
            ctx = self.proc.trace_ctx
            data = {"proc": proc_num}
            if ctx is not None:
                data["tid"] = ctx[0]
                data["cparent"] = ctx[1]
            span = self.proc.tracer.begin(
                "vrpc.call", "call proc %d" % proc_num,
                track=self.proc.trace_track, data=data,
            )
            if ctx is not None:
                # The call span's own sid becomes the wire parent, so
                # the serve span on the other node links under *this*
                # call; a hardened resend carries identical bytes and
                # the replay path never re-serves, so no double-count.
                cred = encode_trace_cred(
                    ctx[0], span.sid if span is not None else ctx[1])
        try:
            yield from self.proc.compute(costs.vrpc_call_prep)
            enc = XdrEncoder()
            header = RpcCallHeader(xid=next(_xids), prog=self.prog,
                                   vers=self.vers, proc=proc_num, cred=cred)
            header.encode(enc)
            encode_args(enc, args)
            payload = enc.getvalue()
            yield from self.proc.compute(
                costs.vrpc_xdr_per_byte
                * max(0, len(payload) - _CALL_HEADER_BYTES)
            )
            if self.stream.hardened:
                raw = yield from self._exchange_hardened(payload, header.xid)
            else:
                yield from self.stream.send_message(payload)
                raw = yield from self.stream.recv_message()
            yield from self.proc.compute(costs.vrpc_return_cost)
            dec = XdrDecoder(raw)
            reply = RpcReplyHeader.decode(dec)
            if reply.xid != header.xid:
                raise RpcFault(SUCCESS, "xid mismatch: got %#x want %#x"
                               % (reply.xid, header.xid))
            if reply.accept_status != SUCCESS:
                raise RpcFault(reply.accept_status,
                               "call not executed (status %d)"
                               % reply.accept_status)
            result = decode_result(dec)
            yield from self.proc.compute(
                costs.vrpc_xdr_per_byte
                * max(0, dec.offset - _REPLY_HEADER_BYTES)
            )
            self.calls_made += 1
        finally:
            # finally: RpcTimeout/RpcFault exits must close the span.
            self.proc.tracer.end(span)
        return result


def clnt_create(system: ShrimpSystem, proc: UserProcess, server_node: int,
                prog: int, vers: int, automatic: bool = True,
                ring_bytes: int = 16384):
    """SunRPC's clnt_create: build and bind a client handle."""
    client = VrpcClient(system, proc, prog, vers, automatic=automatic,
                        ring_bytes=ring_bytes)
    yield from client.bind(server_node)
    return client
