"""SunRPC-compatible VRPC library (system S15 in DESIGN.md):
XDR codec, RFC 1057 headers, the folded stream layer, and the runtime."""

from .rpclib import (
    PROC_UNAVAIL,
    PROG_MISMATCH,
    PROG_UNAVAIL,
    RpcCallHeader,
    RpcFault,
    RpcReplyHeader,
    SUCCESS,
)
from .stream import VrpcStream
from .vrpc import RpcTimeout, VrpcClient, VrpcServer, clnt_create, decode_void, encode_void
from .xdr import XdrDecoder, XdrEncoder, XdrError

__all__ = [
    "PROC_UNAVAIL",
    "PROG_MISMATCH",
    "PROG_UNAVAIL",
    "RpcCallHeader",
    "RpcFault",
    "RpcTimeout",
    "RpcReplyHeader",
    "SUCCESS",
    "VrpcClient",
    "VrpcServer",
    "VrpcStream",
    "XdrDecoder",
    "XdrEncoder",
    "XdrError",
    "clnt_create",
    "decode_void",
    "encode_void",
]
