"""SunRPC message structure (RFC 1057): call and reply headers.

VRPC is 'fully compatible with the SunRPC standard' — the stub
generator and kernel are unchanged, only the runtime library was
reimplemented.  Compatibility means the bytes on the wire are real
SunRPC messages; this module encodes and decodes them with the XDR
codec.  ('The SunRPC standard requires a nontrivial header to be sent
for every RPC' — the ~40 byte call header below is exactly the cost
the specialized SHRIMP RPC avoids, Figure 8.)
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .xdr import XdrDecoder, XdrEncoder, XdrError

__all__ = [
    "CALL", "REPLY", "RPC_VERSION", "AUTH_NULL",
    "MSG_ACCEPTED", "SUCCESS", "PROG_UNAVAIL", "PROC_UNAVAIL", "PROG_MISMATCH",
    "GARBAGE_ARGS", "SYSTEM_ERR",
    "RpcCallHeader", "RpcReplyHeader", "RpcFault",
    "encode_trace_cred", "decode_trace_cred",
]

# Causal-trace context rides the call header's credential body — the
# one opaque, forward-compatible slot RFC 1057 gives a client (real
# deployments smuggle context the same way).  AUTH_NULL flavor with an
# 8-byte body: [trace_id][parent span sid], little-endian.
_TRACE_CRED = struct.Struct("<II")


def encode_trace_cred(trace_id: int, parent_sid: int) -> bytes:
    """Pack a causal-trace context into a credential body."""
    return _TRACE_CRED.pack(trace_id, parent_sid)


def decode_trace_cred(cred: bytes) -> Optional[Tuple[int, int]]:
    """``(trace_id, parent_sid)`` from a credential body, or None when
    the body is absent, foreign-sized, or carries a zero trace id."""
    if len(cred) != _TRACE_CRED.size:
        return None
    trace_id, parent_sid = _TRACE_CRED.unpack(cred)
    if trace_id == 0:
        return None
    return trace_id, parent_sid

RPC_VERSION = 2
CALL = 0
REPLY = 1
AUTH_NULL = 0

# Reply status / accept status values of RFC 1057.
MSG_ACCEPTED = 0
MSG_DENIED = 1
SUCCESS = 0
PROG_UNAVAIL = 1
PROG_MISMATCH = 2
PROC_UNAVAIL = 3
GARBAGE_ARGS = 4
SYSTEM_ERR = 5


class RpcFault(Exception):
    """A call that the server did not accept or execute."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class RpcCallHeader:
    """The per-call header SunRPC requires: xid, rpcvers, prog, vers,
    proc, plus credential and verifier (AUTH_NULL here, as in the
    paper's null-call measurements)."""

    xid: int
    prog: int
    vers: int
    proc: int
    cred: bytes = b""

    def encode(self, enc: XdrEncoder) -> XdrEncoder:
        """Append this header's XDR bytes to the encoder."""
        enc.pack_uint(self.xid)
        enc.pack_enum(CALL)
        enc.pack_uint(RPC_VERSION)
        enc.pack_uint(self.prog)
        enc.pack_uint(self.vers)
        enc.pack_uint(self.proc)
        enc.pack_enum(AUTH_NULL)   # credential flavor
        enc.pack_opaque(self.cred)  # credential body (trace ctx, or empty)
        enc.pack_enum(AUTH_NULL)   # verifier flavor
        enc.pack_opaque(b"")       # verifier body
        return enc

    @classmethod
    def decode(cls, dec: XdrDecoder) -> "RpcCallHeader":
        """Parse a call header from the decoder (XdrError on garbage)."""
        xid = dec.unpack_uint()
        msg_type = dec.unpack_enum()
        if msg_type != CALL:
            raise XdrError("expected CALL, got message type %d" % msg_type)
        rpcvers = dec.unpack_uint()
        if rpcvers != RPC_VERSION:
            raise XdrError("unsupported RPC version %d" % rpcvers)
        prog = dec.unpack_uint()
        vers = dec.unpack_uint()
        proc = dec.unpack_uint()
        dec.unpack_enum()          # cred flavor
        cred = bytes(dec.unpack_opaque())  # cred body (may carry trace ctx)
        dec.unpack_enum()          # verf flavor
        dec.unpack_opaque()        # verf body
        return cls(xid=xid, prog=prog, vers=vers, proc=proc, cred=cred)


@dataclass
class RpcReplyHeader:
    """An accepted-reply header (xid echo, verifier, accept status)."""

    xid: int
    accept_status: int = SUCCESS
    mismatch: Optional[Tuple[int, int]] = None   # (low, high) for PROG_MISMATCH

    def encode(self, enc: XdrEncoder) -> XdrEncoder:
        """Append this header's XDR bytes to the encoder."""
        enc.pack_uint(self.xid)
        enc.pack_enum(REPLY)
        enc.pack_enum(MSG_ACCEPTED)
        enc.pack_enum(AUTH_NULL)   # verifier flavor
        enc.pack_opaque(b"")       # verifier body
        enc.pack_enum(self.accept_status)
        if self.accept_status == PROG_MISMATCH:
            low, high = self.mismatch or (0, 0)
            enc.pack_uint(low)
            enc.pack_uint(high)
        return enc

    @classmethod
    def decode(cls, dec: XdrDecoder) -> "RpcReplyHeader":
        """Parse an accepted-reply header (RpcFault if denied)."""
        xid = dec.unpack_uint()
        msg_type = dec.unpack_enum()
        if msg_type != REPLY:
            raise XdrError("expected REPLY, got message type %d" % msg_type)
        reply_status = dec.unpack_enum()
        if reply_status != MSG_ACCEPTED:
            raise RpcFault(reply_status, "RPC message denied")
        dec.unpack_enum()          # verifier flavor
        dec.unpack_opaque()        # verifier body
        accept_status = dec.unpack_enum()
        mismatch = None
        if accept_status == PROG_MISMATCH:
            mismatch = (dec.unpack_uint(), dec.unpack_uint())
        return cls(xid=xid, accept_status=accept_status, mismatch=mismatch)
