"""The VRPC bidirectional stream: a cyclic shared queue per direction.

'The communication between the client and the server takes place over
a pair of mappings which implement a bidirectional stream...  we
implement a cyclic shared queue in each direction.  The control
information in each buffer consists of 2 reserved words.  The first
word is a flag and the second the total length (in bytes) of the data
that has been written into the buffer from the last and previous
transfers.  The sender (respectively, receiver) remembers the next
position to write (read) data to (from) the buffer.  The XDR layer
sends the data directly to the receiver, so there is no copying on
the sending side.'

This is the 'stream layer folded directly into the XDR layer': the
encoder's output bytes are written straight into the (mirror of the)
peer's queue, and the decoder reads straight out of the local queue.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...vmmc import VmmcEndpoint, VmmcTransferError
from ..recovery import bounded_poll, crc32_of

__all__ = ["VrpcStream", "STREAM_CTRL_BYTES"]

STREAM_CTRL_BYTES = 8  # [flag][total_length]

# Under an armed fault plan the stream grows two more reserved words —
# [flag][total][xmit][crc] — so a receiver can tell a retransmission
# from a new message (xmit) and reject corrupted payloads (crc).  The
# fault-free layout is untouched.
_HARDENED_CTRL_BYTES = 16


class VrpcStream:
    """One endpoint's view of the bidirectional VRPC stream.

    The local half (``in_vaddr``) is this process's receive queue; the
    peer's queue is reached through ``au_out`` (automatic update mirror)
    or deliberate update into ``imp_out`` — per the binding's variant.
    Message payloads are always XDR data, hence word-multiple, which
    keeps every deliberate-update destination aligned.
    """

    def __init__(
        self,
        proc: UserProcess,
        ep: VmmcEndpoint,
        in_vaddr: int,
        ring_bytes: int,
        automatic: bool,
    ):
        self.proc = proc
        self.ep = ep
        self.in_vaddr = in_vaddr
        self.ring_bytes = ring_bytes
        # The reserved control words live at the region's start; the
        # cyclic data area is what remains.  Both endpoints derive the
        # hardened flag from the same armed fault plan, so the layouts
        # always agree.
        self.hardened = proc.faults.enabled
        self.ctrl_bytes = _HARDENED_CTRL_BYTES if self.hardened else STREAM_CTRL_BYTES
        self.data_capacity = ring_bytes - self.ctrl_bytes
        self.automatic = automatic
        # Peer-side handles, installed by attach_peer():
        self.imp_out = None
        self.au_out = 0            # AU mirror (whole region for AU; page 0 always)
        self.staging = 0           # DU marshal area
        # 'The sender remembers the next position to write':
        self.write_total = 0
        self.flag_out = 0
        # '...the receiver the next position to read':
        self.read_total = 0
        self.flag_in = 0
        # Hardened-protocol state: retransmission stamps and the last
        # message we sent (kept so a lost reply can be replayed when the
        # peer retransmits an already-consumed request).
        self._xmit_out = 0
        self._xmit_seen = 0
        self._last_payload: Optional[bytes] = None
        self._last_base = 0

    # ------------------------------------------------------------------
    def attach_peer(self, imp_out, au_out: int, staging: int) -> None:
        """Install the peer-side handles after the handshake."""
        self.imp_out = imp_out
        self.au_out = au_out
        self.staging = staging

    def _ring_segments(self, total: int, nbytes: int) -> List[Tuple[int, int]]:
        """(ring offset, length) pieces for nbytes starting at counter."""
        segments = []
        while nbytes > 0:
            offset = total % self.data_capacity
            piece = min(nbytes, self.data_capacity - offset)
            segments.append((offset, piece))
            total += piece
            nbytes -= piece
        return segments

    # ------------------------------------------------------------------
    # Send side ('no copying on the sending side' beyond the marshal)
    # ------------------------------------------------------------------
    def send_message(self, payload: bytes):
        """Write one XDR message into the peer's queue and flag it."""
        nbytes = len(payload)
        if nbytes % 4 != 0:
            raise ValueError("stream payloads are XDR data (word multiples)")
        if nbytes > self.data_capacity:
            raise ValueError("message of %d bytes exceeds the stream queue" % nbytes)
        if self.hardened:
            # Commit the stream counters first, then transmit: a DU
            # abort mid-transmit leaves the counters consistent and a
            # later resend_last() replays the identical message.
            self._last_payload = payload
            self._last_base = self.write_total
            self.write_total += nbytes
            self.flag_out += 1
            yield from self._transmit()
            return
        proc = self.proc
        segments = self._ring_segments(self.write_total, nbytes)
        if self.automatic:
            # Marshal straight into the AU mirror: the writes are the send.
            cursor = 0
            for offset, length in segments:
                yield from proc.write(
                    self.au_out + self.ctrl_bytes + offset,
                    payload[cursor : cursor + length],
                )
                cursor += length
        else:
            # Marshal into the staging ring, one deliberate update per
            # contiguous piece.
            cursor = 0
            for offset, length in segments:
                yield from proc.write(self.staging + offset, payload[cursor : cursor + length])
                yield from self.ep.send(
                    self.imp_out, self.staging + offset, length,
                    offset=self.ctrl_bytes + offset,
                )
                cursor += length
        self.write_total += nbytes
        self.flag_out += 1
        # Control words: flag + total, one 8-byte AU write after the data.
        yield from proc.write(
            self.au_out, struct.pack("<II", self.flag_out, self.write_total)
        )

    def _transmit(self):
        """(Re)write the newest message: data, [xmit][crc], [flag][total].

        Idempotent with respect to the stream counters, so the hardened
        retry paths call it as many times as the fault plan demands."""
        payload = self._last_payload
        proc = self.proc
        self._xmit_out += 1
        segments = self._ring_segments(self._last_base, len(payload))
        cursor = 0
        for offset, length in segments:
            if self.automatic:
                yield from proc.write(
                    self.au_out + self.ctrl_bytes + offset,
                    payload[cursor : cursor + length],
                )
            else:
                yield from proc.write(
                    self.staging + offset, payload[cursor : cursor + length]
                )
                yield from self.ep.send(
                    self.imp_out, self.staging + offset, length,
                    offset=self.ctrl_bytes + offset,
                )
            cursor += length
        ctrl = struct.pack("<II", self.flag_out, self.write_total)
        crc = crc32_of(ctrl, payload)
        yield from proc.write(
            self.au_out + 8, struct.pack("<II", self._xmit_out & 0xFFFFFFFF, crc)
        )
        yield from proc.write(self.au_out, ctrl)

    def resend_last(self):
        """Retransmit the most recent message (hardened only)."""
        if self._last_payload is None:
            return
        yield from self._transmit()

    def service_retransmits(self):
        """Hardened probe: if the peer retransmitted a message we already
        consumed, our last send (their ack) was lost — replay it."""
        if not self.hardened:
            return
        raw = yield from self.proc.read(self.in_vaddr, 12)
        flag, _total, xmit = struct.unpack("<III", raw)
        if xmit != self._xmit_seen and flag == self.flag_in:
            self._xmit_seen = xmit
            try:
                yield from self.resend_last()
            except VmmcTransferError:
                # The replay itself got aborted; the peer's next
                # retransmission will trigger another one.
                pass

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def check_flag(self):
        """Non-blocking: has the next transfer been flagged?  One timed
        load of the flag word (the svc_run select-loop probe)."""
        raw = yield from self.proc.read(self.in_vaddr, 4)
        (flag,) = struct.unpack("<I", raw)
        return flag == self.flag_in + 1

    def recv_message(self, timeout_us: Optional[float] = None):
        """Wait for the next flagged transfer; returns its bytes.

        Hardened streams accept an optional ``timeout_us``; when the
        deadline passes without a valid message, returns ``None`` (the
        RPC layer maps that to a typed fault).  Corrupted arrivals are
        rejected by CRC and the wait continues until the sender's
        retransmission repairs them."""
        proc = self.proc
        if not self.hardened:
            expected = struct.pack("<I", self.flag_in + 1)
            yield from proc.poll(self.in_vaddr, 4, lambda b: b == expected)
            raw = yield from proc.read(self.in_vaddr, STREAM_CTRL_BYTES)
            flag, total = struct.unpack("<II", raw)
            self.flag_in = flag
            nbytes = total - self.read_total
            segments = self._ring_segments(self.read_total, nbytes)
            pieces = []
            for offset, length in segments:
                piece = yield from proc.read(
                    self.in_vaddr + STREAM_CTRL_BYTES + offset, length
                )
                pieces.append(piece)
            self.read_total = total
            return b"".join(pieces)
        return (yield from self._recv_message_hardened(timeout_us))

    def _recv_message_hardened(self, timeout_us: Optional[float]):
        proc = self.proc
        expected = struct.pack("<I", self.flag_in + 1)
        deadline = None if timeout_us is None else proc.sim.now + timeout_us
        while True:
            # Wake on either a new flag or a bumped xmit word — the
            # latter covers retransmissions whose flag we already hold
            # (our reply was dropped) and corrupt flags repaired later.
            snapshot = proc.peek(self.in_vaddr + 8, 4)

            def fresh(window, expected=expected, snapshot=snapshot):
                return window[:4] == expected or window[8:12] != snapshot

            if deadline is None:
                window = yield from proc.poll(
                    self.in_vaddr, _HARDENED_CTRL_BYTES, fresh
                )
            else:
                remaining = deadline - proc.sim.now
                if remaining <= 0:
                    return None
                window = yield from bounded_poll(
                    proc, self.in_vaddr, _HARDENED_CTRL_BYTES, fresh, remaining
                )
                if window is None:
                    return None
            raw = yield from proc.read(self.in_vaddr, _HARDENED_CTRL_BYTES)
            flag, total, xmit, crc = struct.unpack("<IIII", raw)
            if flag != self.flag_in + 1:
                if flag == self.flag_in and xmit != self._xmit_seen:
                    # Duplicate of the message we already consumed: the
                    # peer never saw our answer — replay it.
                    self._xmit_seen = xmit
                    try:
                        yield from self.resend_last()
                    except VmmcTransferError:
                        pass
                # Otherwise the flag word itself is garbage; wait for
                # the retransmission to rewrite it.
                continue
            self._xmit_seen = xmit
            nbytes = total - self.read_total
            if not (0 < nbytes <= self.data_capacity) or nbytes % 4 != 0:
                continue  # corrupt length word — reject, await retransmit
            segments = self._ring_segments(self.read_total, nbytes)
            pieces = []
            for offset, length in segments:
                piece = yield from proc.read(
                    self.in_vaddr + self.ctrl_bytes + offset, length
                )
                pieces.append(piece)
            payload = b"".join(pieces)
            if crc32_of(raw[:8], payload) != crc:
                continue  # corrupt payload — reject, await retransmit
            self.flag_in = flag
            self.read_total = total
            return payload
