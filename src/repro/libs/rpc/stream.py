"""The VRPC bidirectional stream: a cyclic shared queue per direction.

'The communication between the client and the server takes place over
a pair of mappings which implement a bidirectional stream...  we
implement a cyclic shared queue in each direction.  The control
information in each buffer consists of 2 reserved words.  The first
word is a flag and the second the total length (in bytes) of the data
that has been written into the buffer from the last and previous
transfers.  The sender (respectively, receiver) remembers the next
position to write (read) data to (from) the buffer.  The XDR layer
sends the data directly to the receiver, so there is no copying on
the sending side.'

This is the 'stream layer folded directly into the XDR layer': the
encoder's output bytes are written straight into the (mirror of the)
peer's queue, and the decoder reads straight out of the local queue.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...vmmc import VmmcEndpoint

__all__ = ["VrpcStream", "STREAM_CTRL_BYTES"]

STREAM_CTRL_BYTES = 8  # [flag][total_length]


class VrpcStream:
    """One endpoint's view of the bidirectional VRPC stream.

    The local half (``in_vaddr``) is this process's receive queue; the
    peer's queue is reached through ``au_out`` (automatic update mirror)
    or deliberate update into ``imp_out`` — per the binding's variant.
    Message payloads are always XDR data, hence word-multiple, which
    keeps every deliberate-update destination aligned.
    """

    def __init__(
        self,
        proc: UserProcess,
        ep: VmmcEndpoint,
        in_vaddr: int,
        ring_bytes: int,
        automatic: bool,
    ):
        self.proc = proc
        self.ep = ep
        self.in_vaddr = in_vaddr
        self.ring_bytes = ring_bytes
        # The two reserved control words live at the region's start; the
        # cyclic data area is what remains.
        self.data_capacity = ring_bytes - STREAM_CTRL_BYTES
        self.automatic = automatic
        # Peer-side handles, installed by attach_peer():
        self.imp_out = None
        self.au_out = 0            # AU mirror (whole region for AU; page 0 always)
        self.staging = 0           # DU marshal area
        # 'The sender remembers the next position to write':
        self.write_total = 0
        self.flag_out = 0
        # '...the receiver the next position to read':
        self.read_total = 0
        self.flag_in = 0

    # ------------------------------------------------------------------
    def attach_peer(self, imp_out, au_out: int, staging: int) -> None:
        """Install the peer-side handles after the handshake."""
        self.imp_out = imp_out
        self.au_out = au_out
        self.staging = staging

    def _ring_segments(self, total: int, nbytes: int) -> List[Tuple[int, int]]:
        """(ring offset, length) pieces for nbytes starting at counter."""
        segments = []
        while nbytes > 0:
            offset = total % self.data_capacity
            piece = min(nbytes, self.data_capacity - offset)
            segments.append((offset, piece))
            total += piece
            nbytes -= piece
        return segments

    # ------------------------------------------------------------------
    # Send side ('no copying on the sending side' beyond the marshal)
    # ------------------------------------------------------------------
    def send_message(self, payload: bytes):
        """Write one XDR message into the peer's queue and flag it."""
        nbytes = len(payload)
        if nbytes % 4 != 0:
            raise ValueError("stream payloads are XDR data (word multiples)")
        if nbytes > self.data_capacity:
            raise ValueError("message of %d bytes exceeds the stream queue" % nbytes)
        proc = self.proc
        segments = self._ring_segments(self.write_total, nbytes)
        if self.automatic:
            # Marshal straight into the AU mirror: the writes are the send.
            cursor = 0
            for offset, length in segments:
                yield from proc.write(
                    self.au_out + STREAM_CTRL_BYTES + offset,
                    payload[cursor : cursor + length],
                )
                cursor += length
        else:
            # Marshal into the staging ring, one deliberate update per
            # contiguous piece.
            cursor = 0
            for offset, length in segments:
                yield from proc.write(self.staging + offset, payload[cursor : cursor + length])
                yield from self.ep.send(
                    self.imp_out, self.staging + offset, length,
                    offset=STREAM_CTRL_BYTES + offset,
                )
                cursor += length
        self.write_total += nbytes
        self.flag_out += 1
        # Control words: flag + total, one 8-byte AU write after the data.
        yield from proc.write(
            self.au_out, struct.pack("<II", self.flag_out, self.write_total)
        )

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def check_flag(self):
        """Non-blocking: has the next transfer been flagged?  One timed
        load of the flag word (the svc_run select-loop probe)."""
        raw = yield from self.proc.read(self.in_vaddr, 4)
        (flag,) = struct.unpack("<I", raw)
        return flag == self.flag_in + 1

    def recv_message(self):
        """Wait for the next flagged transfer; returns its bytes."""
        proc = self.proc
        expected = struct.pack("<I", self.flag_in + 1)
        yield from proc.poll(self.in_vaddr, 4, lambda b: b == expected)
        raw = yield from proc.read(self.in_vaddr, STREAM_CTRL_BYTES)
        flag, total = struct.unpack("<II", raw)
        self.flag_in = flag
        nbytes = total - self.read_total
        segments = self._ring_segments(self.read_total, nbytes)
        pieces = []
        for offset, length in segments:
            piece = yield from proc.read(
                self.in_vaddr + STREAM_CTRL_BYTES + offset, length
            )
            pieces.append(piece)
        self.read_total = total
        return b"".join(pieces)
