"""One-sided remote-memory channels over VMMC (docs/ONESIDED.md).

The RDMA-style layer the serving stack's bypass reads use: a *region*
is an exported buffer laid out as a table of fixed-size slots, each
protected by a seqlock (version stamp at the head and tail of the slot)
and a CRC over its key/value body.  Writers on the owning node update
slots in place through :class:`RegionWriter`; remote readers fetch a
whole slot with one :meth:`~repro.vmmc.VmmcEndpoint.read_remote` call —
no CPU runs on the owning node — and validate the stamps locally
through :class:`RegionReader`.

Protocol summary (the full walk-through is docs/ONESIDED.md):

* a slot is ``[version_head][key_len][value_len][crc][key][value]
  [version_tail]`` with the tail stamp *adjacent to the body*, so a
  reader that fetches only a prefix of the slot (adaptive readers track
  per-key lengths and read just what they expect) still sees both
  stamps; stable slots have ``head == tail`` and even;
* a writer bumps the head to odd, writes the body, then stamps tail and
  head back to the next even version — a concurrent remote read sees
  either a stable version or a torn one it can detect and retry;
* the CRC covers key+value, so a reply corrupted on the mesh (or data
  interleaved from a stale late reply) is also detected and retried;
* reader retries are *bounded*: a writer that stalls mid-update under
  fault injection surfaces as :class:`SeqlockTimeoutError` (a
  :class:`~repro.vmmc.errors.VmmcTimeoutError`), never a spin;
* region discovery is a rendezvous handshake: the exporter advertises a
  :class:`RegionAdvert` under a well-known name, importers look it up
  and pay the daemon import round trip; values too large for a slot are
  marked oversize, telling the reader to rendezvous with the owner over
  its RPC path instead.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..vmmc.errors import (VmmcReadTimeoutError, VmmcTimeoutError,
                           VmmcTransferError)
from .recovery import attempt_timeout_us

__all__ = ["SLOT_HEADER", "SLOT_TAIL", "OVERSIZE", "RegionFormat",
           "RegionAdvert", "RegionWriter", "RegionReader", "SlotHints",
           "SeqlockTimeoutError", "decode_slot"]

# Slot body header: version_head, key_len, value_len, crc32(key+value).
SLOT_HEADER = struct.Struct("<IHHI")
_HEAD = struct.Struct("<I")
SLOT_TAIL = struct.Struct("<I")

#: ``value_len`` sentinel: the key's value did not fit the slot — the
#: reader must rendezvous with the owner over the RPC path instead.
OVERSIZE = 0xFFFF

# Slot stride tuned to the serving mix: one slot is one one-sided read,
# so the stride bounds the bytes every bypass GET moves over the EISA
# buses and the mesh.  256 covers the common small values; larger ones
# publish an oversize marker and ride the RPC fallback.
DEFAULT_SLOT_SIZE = 256


class SlotHints:
    """Occupancy cache for one remote region, shareable across readers.

    ``sizes`` maps key -> exact slot-read length; ``skip`` holds keys
    the region is known not to answer (oversize values, colliding
    slots, deletions).  Both are learned from reads and this host's own
    writes, so sharing one table among the clients of one host (a
    client-library cache) is the natural deployment: a key's occupancy
    is a property of the region, not of who asked.  Stale entries cost
    one "short" corrective read or a missed bypass opportunity — never
    a wrong answer.
    """

    __slots__ = ("sizes", "skip")

    def __init__(self):
        self.sizes: dict = {}
        self.skip: set = set()


class SeqlockTimeoutError(VmmcTimeoutError):
    """Bounded seqlock retries exhausted on a one-sided read.

    Every attempt observed a torn/in-flight slot (a writer stalled
    mid-update), a corrupt reply, or a read timeout.  Callers fall back
    to their RPC path; the default workload knobs never reach here.
    """


@dataclass(frozen=True)
class RegionFormat:
    """Geometry of one slot-table region.

    ``slot_size`` must divide the page size: imported frames need not
    be physically contiguous and a one-sided read cannot cross a remote
    page boundary, so every slot must sit inside one page.
    """

    slots: int
    slot_size: int = DEFAULT_SLOT_SIZE
    page_size: int = 4096

    def __post_init__(self):
        if self.slots <= 0:
            raise ValueError("a region needs at least one slot")
        if self.slot_size <= SLOT_HEADER.size + SLOT_TAIL.size:
            raise ValueError("slot size %d leaves no body room" % self.slot_size)
        if self.page_size % self.slot_size != 0:
            raise ValueError(
                "slot size %d must divide the page size %d (slots may not "
                "cross page boundaries)" % (self.slot_size, self.page_size))

    @property
    def nbytes(self) -> int:
        """Page-rounded region size."""
        raw = self.slots * self.slot_size
        return -(-raw // self.page_size) * self.page_size

    @property
    def capacity(self) -> int:
        """Body bytes one slot can hold (key plus value)."""
        return self.slot_size - SLOT_HEADER.size - SLOT_TAIL.size

    def slot_of(self, key: str) -> int:
        """The slot index a key hashes to (colliding keys evict)."""
        return zlib.crc32(key.encode()) % self.slots

    def slot_offset(self, index: int) -> int:
        """Byte offset of slot ``index`` within the region."""
        return index * self.slot_size


@dataclass(frozen=True)
class RegionAdvert:
    """What an exporter publishes for the rendezvous handshake."""

    node_id: int
    export_id: int
    slots: int
    slot_size: int

    def format(self, page_size: int = 4096) -> RegionFormat:
        """The advertised geometry as a :class:`RegionFormat`."""
        return RegionFormat(self.slots, self.slot_size, page_size)


def decode_slot(fmt: RegionFormat, raw: bytes, key: str):
    """Validate a fetched slot prefix against ``key``.

    ``raw`` may be any prefix of the slot — adaptive readers fetch only
    the bytes they expect to need.  Returns one of:

    * ``("hit", value)`` — stable slot holding ``key``;
    * ``("absent", None)`` — empty slot, other key, or oversize value
      (the caller falls back to RPC);
    * ``("torn", None)`` — in-flight or corrupt (the caller retries);
    * ``("short", total)`` — the prefix ends before the tail stamp;
      re-read ``total`` bytes.
    """
    if len(raw) < SLOT_HEADER.size + SLOT_TAIL.size:
        return "short", SLOT_HEADER.size + SLOT_TAIL.size
    head, key_len, value_len, crc = SLOT_HEADER.unpack_from(raw, 0)
    if head % 2 != 0:
        return "torn", None
    if head == 0:
        return "absent", None
    body_len = key_len + (0 if value_len == OVERSIZE else value_len)
    total = SLOT_HEADER.size + body_len + SLOT_TAIL.size
    if total > fmt.slot_size:
        return "torn", None  # lengths from a corrupt/in-flight header
    if len(raw) < total:
        return "short", total
    (tail,) = SLOT_TAIL.unpack_from(raw, total - SLOT_TAIL.size)
    if tail != head:
        return "torn", None
    if key_len == 0:
        return "absent", None
    kb = key.encode()
    body = raw[SLOT_HEADER.size:]
    if body[:key_len] != kb:
        return "absent", None
    if value_len == OVERSIZE:
        return "absent", None
    value = bytes(body[key_len:key_len + value_len])
    if zlib.crc32(kb + value) & 0xFFFFFFFF != crc:
        return "torn", None
    return "hit", value


class RegionWriter:
    """Seqlock writer over an exported slot region.

    Shared by every request handler of the owning node: writes go
    through *physical* memory against the export's pinned frames (the
    handlers run in their own address spaces), with the timed store
    cost charged to the calling process.  A cooperative lock serializes
    concurrent handlers — the seqlock protects readers against one
    in-flight writer, not writers against each other.
    """

    def __init__(self, memory, frames: List[int], fmt: RegionFormat, config,
                 shadow=None):
        self.memory = memory
        self.frames = frames
        self.fmt = fmt
        self.config = config
        # The NIC's on-card region shadow, when the export registered
        # its frames there.  Region pages are write-through, so every
        # store below is on the bus where the card snoops it; mirroring
        # here models that retention — same bytes, same instant, no
        # extra cost (hardware/nic/shadow.py).
        self.shadow = shadow
        self._versions = [0] * fmt.slots
        self._busy = False
        self._waiters: list = []
        self.stores = 0
        self.clears = 0
        self.oversize = 0

    # -- physical region access ---------------------------------------
    def _phys_write(self, offset: int, data: bytes) -> None:
        page = self.fmt.page_size
        while data:
            frame = self.frames[offset // page]
            within = offset % page
            take = min(len(data), page - within)
            self.memory.write(frame * page + within, data[:take])
            if self.shadow is not None:
                self.shadow.write(frame * page + within, data[:take])
            offset += take
            data = data[take:]

    def _phys_read(self, offset: int, nbytes: int) -> bytes:
        page = self.fmt.page_size
        out = bytearray()
        while nbytes > 0:
            frame = self.frames[offset // page]
            within = offset % page
            take = min(nbytes, page - within)
            out += self.memory.read(frame * page + within, take)
            offset += take
            nbytes -= take
        return bytes(out)

    # -- writer serialization ------------------------------------------
    def _acquire(self, proc):
        while self._busy:
            event = proc.sim.event("onesided-writer-wait")
            self._waiters.append(event)
            yield event
        self._busy = True

    def _release(self) -> None:
        self._busy = False
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.succeed()

    # -- slot bodies ---------------------------------------------------
    def _body(self, version: int, key: str, value: Optional[bytes],
              oversize: bool) -> bytes:
        """One complete slot image: header, key, value, tail stamp."""
        kb = key.encode()
        if oversize:
            header = SLOT_HEADER.pack(version, len(kb), OVERSIZE, 0)
            return header + kb + SLOT_TAIL.pack(version)
        body = value or b""
        crc = zlib.crc32(kb + body) & 0xFFFFFFFF
        return (SLOT_HEADER.pack(version, len(kb), len(body), crc)
                + kb + body + SLOT_TAIL.pack(version))

    def _commit(self, proc, index: int, body_after_head: bytes):
        """The timed seqlock sequence: odd head, body+tail, even head.

        The body write is charged at the calling process's store rate
        *between* the odd and even stamps, so a concurrent remote read
        really can observe the in-flight (odd) state — which is what
        the fault sweeps drive at.
        """
        from ..hardware.config import CacheMode

        fmt = self.fmt
        base = fmt.slot_offset(index)
        next_version = self._versions[index] + 2
        base_us, per_byte = self.config.write_rate(CacheMode.WRITE_THROUGH)
        yield proc.sim.timeout(base_us)
        self._phys_write(base, _HEAD.pack(next_version - 1))
        yield proc.sim.timeout(base_us + per_byte * len(body_after_head))
        self._phys_write(base + _HEAD.size, body_after_head)
        yield proc.sim.timeout(base_us)
        self._phys_write(base, _HEAD.pack(next_version))
        self._versions[index] = next_version

    # -- the write-side API --------------------------------------------
    def store(self, proc, key: str, value: bytes):
        """Publish ``key -> value`` (timed; called from a handler).

        A value too large for the slot is published as an oversize
        marker instead — readers then rendezvous over the RPC path.
        """
        fmt = self.fmt
        index = fmt.slot_of(key)
        kb = key.encode()
        oversize = len(kb) + len(value) > fmt.capacity
        if oversize:
            self.oversize += 1
        yield from self._acquire(proc)
        try:
            version = self._versions[index] + 2
            body = self._body(version, key, None if oversize else value,
                              oversize)
            yield from self._commit(proc, index, body[_HEAD.size:])
            self.stores += 1
        finally:
            self._release()

    def clear(self, proc, key: str):
        """Retire ``key``'s slot if it still holds that key (timed)."""
        fmt = self.fmt
        index = fmt.slot_of(key)
        base = fmt.slot_offset(index)
        yield from self._acquire(proc)
        try:
            _head, key_len, _vlen, _crc = SLOT_HEADER.unpack(
                self._phys_read(base, SLOT_HEADER.size))
            held = self._phys_read(base + SLOT_HEADER.size, key_len) if key_len else b""
            if held != key.encode():
                return
            version = self._versions[index] + 2
            empty = SLOT_HEADER.pack(version, 0, 0, 0)
            yield from self._commit(proc, index, empty[_HEAD.size:])
            self.clears += 1
        finally:
            self._release()

    def preload(self, key: str, value: bytes) -> None:
        """Untimed boot-time slot fill (mirrors the store preload)."""
        fmt = self.fmt
        index = fmt.slot_of(key)
        kb = key.encode()
        oversize = len(kb) + len(value) > fmt.capacity
        version = self._versions[index] + 2
        body = self._body(version, key, None if oversize else value, oversize)
        base = fmt.slot_offset(index)
        self._phys_write(base + _HEAD.size, body[_HEAD.size:])
        self._phys_write(base, _HEAD.pack(version))
        self._versions[index] = version


class RegionReader:
    """Client-side bypass reader: one-sided slot fetch + validation.

    ``reply_vaddr`` points into a locally *exported* page (the target
    NIC's reply packets must pass this node's Incoming Page Table); one
    page serves every region a client reads, since a blocking client
    has one read outstanding at a time.
    """

    #: Bounded retry budget; each attempt's completion-poll deadline
    #: grows exponentially (libs/recovery.py discipline).
    MAX_ATTEMPTS = 4
    #: Backoff between seqlock retries: enough for an in-flight writer
    #: to finish its body write at the modeled store rate.
    RETRY_BACKOFF_US = 3.0
    #: First-touch read size: header plus a typical small key and value.
    #: One-sided bytes are the bypass's scarce resource, so readers
    #: learn each key's exact slot occupancy and fetch just that.
    INITIAL_READ_BYTES = 160

    def __init__(self, endpoint, imported, fmt: RegionFormat,
                 reply_vaddr: int, base_timeout_us: float = 400.0,
                 hints: Optional[SlotHints] = None):
        self.endpoint = endpoint
        self.imported = imported
        self.fmt = fmt
        self.reply_vaddr = reply_vaddr
        self.base_timeout_us = base_timeout_us
        # The region's occupancy cache: exact read lengths (a wrong
        # hint costs one "short" re-read, never a wrong answer — the
        # tail stamp is part of the validated bytes) plus the keys the
        # region cannot answer (skipped straight to RPC rather than
        # paying a doomed read on every GET).  Pass a shared
        # :class:`SlotHints` to pool what co-located clients learn.
        self.hints = hints if hints is not None else SlotHints()
        self.hits = 0
        self.absences = 0
        self.retries = 0
        self.rereads = 0
        self.skips = 0

    def knows(self, key: str) -> bool:
        """Whether the cache pins ``key`` to an exact, fitting read.

        KV clients only bypass for known keys: a first GET rides the
        RPC path anyway (only the server can answer a true miss), and
        its reply teaches the exact slot occupancy — so no bypass read
        is ever issued blind, and every one moves just the bytes the
        slot holds.
        """
        return key in self.hints.sizes and key not in self.hints.skip

    def note_write(self, key: str, nbytes: Optional[int]) -> None:
        """Learn a key's new occupancy from a write this host made.

        ``nbytes`` is the written value's size, or None for a delete.
        A fitting value yields an exact read-length hint; a delete or
        an oversize value marks the key skip-to-RPC.  A write is
        authoritative — the slot now holds (or no longer holds) this
        key — so it may clear a skip mark that a read never could.
        """
        if nbytes is not None and nbytes <= self.fmt.capacity:
            self.hints.sizes[key] = (SLOT_HEADER.size + len(key.encode())
                                     + nbytes + SLOT_TAIL.size)
            self.hints.skip.discard(key)
        else:
            self.hints.sizes.pop(key, None)
            self.hints.skip.add(key)

    def note_size(self, key: str, nbytes: Optional[int]) -> None:
        """Learn a key's occupancy from an RPC *read* of it.

        Like :meth:`note_write` for sizing, but it never clears a skip
        mark: a skipped key whose slot another key occupies (a
        collision) would otherwise ping-pong — each RPC answer
        re-arming a bypass read that is doomed to come back absent.
        Only a write to the key (which re-stamps the slot) re-opens it.
        """
        if nbytes is None:
            self.hints.sizes.pop(key, None)
            self.hints.skip.add(key)
        elif key not in self.hints.skip:
            if nbytes <= self.fmt.capacity:
                self.hints.sizes[key] = (SLOT_HEADER.size
                                         + len(key.encode())
                                         + nbytes + SLOT_TAIL.size)
            else:
                self.hints.skip.add(key)

    def lookup(self, key: str):
        """Fetch ``key``'s slot one-sidedly; ``(found, value-or-None)``.

        ``(False, None)`` means the region cannot answer (empty slot,
        colliding key, oversize value) — fall back to RPC.  Raises
        :class:`SeqlockTimeoutError` once the bounded retry budget is
        spent on torn slots, corrupt replies, or read timeouts.
        """
        fmt = self.fmt
        if key in self.hints.skip:
            self.skips += 1
            return False, None
        offset = fmt.slot_offset(fmt.slot_of(key))
        proc = self.endpoint.proc
        floor = SLOT_HEADER.size + SLOT_TAIL.size
        want = max(floor, min(self.hints.sizes.get(key,
                                                   self.INITIAL_READ_BYTES),
                              fmt.slot_size))
        last_error: Optional[Exception] = None
        attempt = 0
        corrections = 0
        while attempt < self.MAX_ATTEMPTS:
            if attempt:
                self.retries += 1
                yield from proc.compute(self.RETRY_BACKOFF_US * attempt)
            try:
                raw = yield from self.endpoint.read_remote(
                    self.imported, offset, want, self.reply_vaddr,
                    timeout_us=attempt_timeout_us(self.base_timeout_us,
                                                  attempt))
            except (VmmcReadTimeoutError, VmmcTransferError) as exc:
                last_error = exc
                attempt += 1
                continue
            state, extra = decode_slot(fmt, raw, key)
            if state == "short":
                # A length correction, not a failure — but bounded: a
                # slot rewritten under us could keep moving the goal.
                want = extra
                corrections += 1
                self.rereads += 1
                if corrections > 2:
                    attempt += 1
                continue
            if state == "hit":
                self.hits += 1
                self.hints.sizes[key] = (SLOT_HEADER.size + len(key.encode())
                                         + len(extra) + SLOT_TAIL.size)
                self.hints.skip.discard(key)
                return True, extra
            if state == "absent":
                self.absences += 1
                self.hints.skip.add(key)
                return False, None
            last_error = None  # torn: the writer is (or was) in flight
            attempt += 1
        raise SeqlockTimeoutError(
            "one-sided lookup of %r gave no stable slot in %d attempts"
            % (key, self.MAX_ATTEMPTS)) from last_error
