"""Software collectives over NX (system S18 in DESIGN.md).

The co-design discussion (Section 6) records that a hardware multicast
feature was *removed* from the SHRIMP NIC: 'the software designers
found that the multicast feature was not as useful as we originally
thought, and that software implementations of multicast would likely
have acceptable performance.'

This module is that software implementation: binomial-tree broadcast,
reduction, and an all-to-one gather, all expressed in ordinary NX
sends and receives.  The ablation benchmark compares the tree against
a naive sequential multicast to quantify the claim.
"""

from __future__ import annotations

import struct
from typing import Callable, List, Optional

from .nx.api import NXProcess

__all__ = ["broadcast", "broadcast_naive", "reduce_int", "gather"]

_BCAST_TYPE = 0x7FFE0001
_REDUCE_TYPE = 0x7FFE0002
_GATHER_TYPE = 0x7FFE0003


def broadcast(nx: NXProcess, vaddr: int, nbytes: int, root: int = 0):
    """Binomial-tree broadcast of ``nbytes`` at ``vaddr`` from ``root``.

    log2(N) rounds; in round k, every rank that already has the data
    forwards it to the rank 2^k away.  Generator: call from every rank
    with the same arguments; non-roots receive into ``vaddr``.
    """
    size = nx.numnodes()
    me = (nx.mynode() - root) % size  # root-relative rank
    # Receive from the appropriate parent first (non-roots).
    if me != 0:
        yield from nx.crecv(_BCAST_TYPE, vaddr, nbytes)
    # Forward to children: the set bit pattern of a binomial tree.
    mask = 1
    while mask < size:
        if me < mask:
            child = me + mask
            if child < size:
                yield from nx.csend(_BCAST_TYPE, vaddr, nbytes,
                                    to=(child + root) % size)
        elif me < 2 * mask:
            pass  # received this round already (me >= mask handled above)
        mask <<= 1


def broadcast_naive(nx: NXProcess, vaddr: int, nbytes: int, root: int = 0):
    """Sequential multicast: the root sends to every rank, one by one.

    The baseline the removed hardware feature would have replaced —
    O(N) serialized sends from one node.
    """
    if nx.mynode() == root:
        for peer in range(nx.numnodes()):
            if peer != root:
                yield from nx.csend(_BCAST_TYPE, vaddr, nbytes, to=peer)
    else:
        yield from nx.crecv(_BCAST_TYPE, vaddr, nbytes)


def reduce_int(nx: NXProcess, value: int, op: Callable[[int, int], int],
               root: int = 0):
    """Binomial-tree reduction of one integer; the root returns the
    result, other ranks return None."""
    size = nx.numnodes()
    me = (nx.mynode() - root) % size
    scratch = nx.proc.space.mmap(nx.proc.config.page_size)
    accumulator = value
    mask = 1
    while mask < size:
        if me & mask:
            parent = ((me & ~mask) + root) % size
            nx.proc.poke(scratch, struct.pack("<q", accumulator))
            yield from nx.csend(_REDUCE_TYPE, scratch, 8, to=parent)
            return None
        child = me | mask
        if child < size:
            yield from nx.crecv(_REDUCE_TYPE, scratch, 8)
            (incoming,) = struct.unpack("<q", nx.proc.peek(scratch, 8))
            accumulator = op(accumulator, incoming)
        mask <<= 1
    return accumulator


def gather(nx: NXProcess, vaddr: int, nbytes: int, root: int = 0):
    """Every rank sends its buffer to the root; the root returns the
    list of payloads indexed by rank (its own included)."""
    if nx.mynode() != root:
        yield from nx.csend(_GATHER_TYPE + nx.mynode(), vaddr, nbytes, to=root)
        return None
    pieces: List[Optional[bytes]] = [None] * nx.numnodes()
    pieces[root] = nx.proc.peek(vaddr, nbytes)
    scratch = nx.proc.space.mmap(
        -(-nbytes // nx.proc.config.page_size) * nx.proc.config.page_size
    )
    for peer in range(nx.numnodes()):
        if peer == root:
            continue
        yield from nx.crecv(_GATHER_TYPE + peer, scratch, nbytes)
        pieces[peer] = nx.proc.peek(scratch, nbytes)
    return pieces
