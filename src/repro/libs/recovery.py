"""Shared recovery machinery for the hardened library protocols.

When a :class:`~repro.sim.faults.FaultPlan` is armed, the communication
libraries switch from the paper's reliable-network fast paths to
*hardened* protocols (docs/FAULTS.md): payloads carry CRC32 checksums,
senders retransmit with exponential backoff until the receiver
acknowledges, and every blocking wait is bounded so a lost packet
surfaces as a typed :class:`~repro.vmmc.errors.VmmcError` subclass
instead of a hang.

This module holds the pieces those protocols share:

* :func:`crc32_of` — checksum over several byte chunks;
* :func:`bounded_poll` — a deadline-bounded wait on remote memory
  (watchpoint-driven like :meth:`UserProcess.poll`, so event count
  scales with writes, not with the deadline);
* the common retry constants (attempt budget, backoff schedule).

Every helper is a pure function of simulated state, so hardened runs
stay deterministic: same seed, same schedule, same outcome.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from ..kernel.process import UserProcess

__all__ = ["MAX_XMIT", "attempt_timeout_us", "bounded_poll", "crc32_of"]

# Transmission attempts before a hardened sender gives up with a typed
# timeout error.  With exponential backoff the total wait is
# base * (2**MAX_XMIT - 1), comfortably under the harness watchdog.
MAX_XMIT = 6


def crc32_of(*chunks: bytes) -> int:
    """CRC32 over the concatenation of ``chunks`` (no copy)."""
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def attempt_timeout_us(base_us: float, attempt: int) -> float:
    """Backoff schedule: the wait budget for retransmission ``attempt``.

    Attempt 0 waits ``base_us``; each further attempt doubles it, so a
    transient pile-up (delayed packets, a stalled DMA engine) gets
    progressively more room before the next retransmission.
    """
    return base_us * (2.0 ** attempt)


def bounded_poll(
    proc: UserProcess,
    vaddr: int,
    nbytes: int,
    predicate: Callable[[bytes], bool],
    timeout_us: float,
):
    """Wait at most ``timeout_us`` for ``predicate`` to hold at ``vaddr``.

    Returns the satisfying bytes, or None when the deadline passes
    first.  A thin wrapper over :meth:`UserProcess.poll` with a relative
    deadline — the hardened protocols' standard "wait for the ack, but
    not forever" shape.
    """
    result = yield from proc.poll(
        vaddr, nbytes, predicate, deadline=proc.sim.now + timeout_us
    )
    return result
