"""NX message-passing compatibility library (system S14 in DESIGN.md)."""

from .api import ANY_TYPE, MsgId, NXProcess, NXVariant, VARIANTS, nx_world
from .connection import CHUNK_TYPE, Connection, PendingMessage

__all__ = [
    "ANY_TYPE",
    "CHUNK_TYPE",
    "Connection",
    "MsgId",
    "NXProcess",
    "NXVariant",
    "PendingMessage",
    "VARIANTS",
    "nx_world",
]
