"""NX message-passing compatibility library (system S14 in DESIGN.md)."""

from .api import (
    ANY_NODE,
    ANY_TYPE,
    MsgId,
    NXProcess,
    NXTimeoutError,
    NXVariant,
    VARIANTS,
    nx_world,
)
from .connection import CHUNK_TYPE, Connection, PendingMessage

__all__ = [
    "ANY_NODE",
    "ANY_TYPE",
    "CHUNK_TYPE",
    "Connection",
    "MsgId",
    "NXProcess",
    "NXTimeoutError",
    "NXVariant",
    "PendingMessage",
    "VARIANTS",
    "nx_world",
]
