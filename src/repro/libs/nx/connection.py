"""NX connections: the per-pair buffer structure and wire protocol.

'A connection between two processes consists of a set of buffers, each
exported by one process and imported by the other; there is also a
fixed protocol for using the buffers to transfer data and synchronize.'
For NX: 'a connection is set up between each pair of processes at
initialization time' and the data buffer is 'divided into fixed-size
packet buffers' that credits recycle in any order.

Memory layout per direction (all offsets in the *receiver's* memory):

* data region — ``slots`` packet buffers of ``12 + payload`` bytes each:
  an in-slot header ``[type][seq][size]`` followed by the payload.
* control page —
  - credit ring (written by the peer when it consumes my messages),
  - descriptor ring (written by the peer when it sends to me; the
    sequence stamp is the arrival flag, written after the data, which
    in-order delivery makes safe),
  - scout-reply field, buffer-request word, and large-message
    completion word (the zero-copy protocol's control traffic).

Control information always travels by automatic update (all three
compatibility libraries do this — it is small and latency-critical);
message payload travels by AU or DU according to the library variant.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Deque, List, Optional
from collections import deque

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...testbed import Rendezvous
from ...vmmc import VmmcEndpoint
from ...vmmc.errors import VmmcTimeoutError, VmmcTransferError
from ..recovery import MAX_XMIT, attempt_timeout_us, bounded_poll, crc32_of
from .credits import CREDIT_SLOT_BYTES, CreditRing

__all__ = ["NXVariant", "Connection", "NXTimeoutError", "HEADER_BYTES",
           "DESCRIPTOR_BYTES", "SCOUT_SLOT", "CHUNK_TYPE", "ANY_TYPE"]

HEADER_BYTES = 12          # in-slot [type][seq][size]
DESCRIPTOR_BYTES = 16      # ring entry [slot][type][size][seq]; seq is the flag
TRACE_DESC_EXT = 8         # traced rings widen entries to
                           # [slot][type][size][tid][psid][seq]; the seq
                           # stamp stays last, so arrival flagging is
                           # unchanged (docs/OBSERVABILITY.md)
SCOUT_SLOT = 0xFFFFFFFF    # descriptor slot index meaning "scout, no payload"
CHUNK_TYPE = 0xFFFFFFFE    # internal message type for the chunked fallback
ANY_TYPE = -1

# Control-page field offsets.
_CREDITS_OFF = 0x000
_DESC_RING_OFF = 0x100
_REPLY_OFF = 0x400         # [export_id][buf_offset][mode][reply_seq]
_REQUEST_OFF = 0x480       # [request_seq]
_COMPLETE_OFF = 0x4C0      # [complete_seq]
# Hardened-protocol words (docs/FAULTS.md; written only under an armed
# fault plan, so the fault-free wire traffic is unchanged):
_HCRC_OFF = 0x500          # [crc32][seq][xmit] of the newest transmission
_RREQ_OFF = 0x540          # replay-request beacon (sender asks for control replay)
REPLY_MODE_DIRECT = 1      # zero-copy: DU straight into the user buffer
REPLY_MODE_CHUNKED = 2     # alignment fallback: stream through packet buffers

# Hardened retransmission budget: fixed turnaround plus transfer time,
# doubled per attempt (exponential backoff).
_RETRY_BASE_US = 400.0
_RETRY_PER_BYTE_US = 0.1


class NXTimeoutError(VmmcTimeoutError):
    """A hardened NX retry budget expired (message, credit, or reply
    repeatedly lost); raised instead of hanging."""


@dataclass(frozen=True)
class NXVariant:
    """The small-message strategy of an NX build (Figure 4's curves).

    ``automatic``: payload via AU marshal into the bound send region
    (the copy is the send) vs deliberate update.
    ``staging_copy``: copy payload into a staging area first — for AU
    this is the '2copy' variant; for DU it trades a copy for sending
    header+payload with a *single* deliberate update ('the tradeoff
    between a local copy and an extra send').
    ``force_zero_copy``: run the scout protocol for every size (the
    DU-0copy curve), instead of only above the packet-buffer size.
    """

    name: str
    automatic: bool
    staging_copy: bool
    force_zero_copy: bool = False


@dataclass
class PendingMessage:
    """A message that has arrived (descriptor seen) but not been consumed."""

    peer: int
    slot: int               # SCOUT_SLOT for scouts
    mtype: int
    size: int
    seq: int
    arrival: int            # global arrival tick for ANY_TYPE fairness
    tctx: Optional[tuple] = None  # (trace_id, parent_sid) off a traced ring


def _u32(*values: int) -> bytes:
    return struct.pack("<%dI" % len(values), *values)


class Connection:
    """One direction-symmetric NX connection between two processes."""

    def __init__(
        self,
        proc: UserProcess,
        ep: VmmcEndpoint,
        peer_node: int,
        peer_rank: int,
        variant: NXVariant,
        slots: int,
        payload_bytes: int,
    ):
        self.proc = proc
        self.ep = ep
        self.peer_node = peer_node
        self.peer_rank = peer_rank
        self.variant = variant
        self.slots = slots
        self.payload_bytes = payload_bytes
        self.slot_bytes = HEADER_BYTES + payload_bytes
        page = proc.config.page_size
        self.data_bytes = -(-self.slots * self.slot_bytes // page) * page

        # Filled in by establish():
        self.data_in = 0
        self.ctrl_in = 0
        self.imp_data = None
        self.imp_ctrl = None
        self.au_ctrl_out = 0
        self.au_data_out = 0
        self.staging = 0

        # Sender-side state.
        self.free_slots: Deque[int] = deque(range(slots))
        self.next_send_seq = 1
        self.credit_reader = CreditRing(0, 2 * slots)  # rebased in establish()
        self.next_reply_seq = 1       # scout replies I expect
        self.large_send_active = False

        # Receiver-side state.
        self.credit_writer_seq = 1
        self.next_recv_seq = 1        # next descriptor-ring stamp expected
        self.next_credit_out = CreditRing(0, 2 * slots)  # peer's ring, via AU
        self.next_complete_seq = 1
        self.next_reply_out_seq = 1
        self.buffer_requests_seen = 0

        # Causal-tracing state: traced connections widen descriptor-ring
        # entries with [trace_id][parent_sid] words.  Both peers derive
        # the flag from the machine-wide tracer and the shared slot
        # count, so the ring layouts always agree; oversized rings that
        # would overflow into the reply field fall back to untraced
        # descriptors on both sides.
        self.traced = proc.tracer.enabled and (
            (2 * slots + 2) * (DESCRIPTOR_BYTES + TRACE_DESC_EXT)
            <= _REPLY_OFF - _DESC_RING_OFF)
        self.desc_bytes = DESCRIPTOR_BYTES + (TRACE_DESC_EXT if self.traced
                                              else 0)
        self.trace_out: Optional[tuple] = None  # ctx the next send carries

        # Hardened-protocol state (armed fault plan => CRC'd synchronous
        # sends, credit-acks, and control-write replay; docs/FAULTS.md).
        self.hardened = proc.faults.enabled
        self._xmit_out = 0            # sender: hardened transmissions issued
        self._rreq_out = 0            # sender: replay requests issued
        self._rreq_seen = 0           # receiver: last replay request serviced
        # Recent control writes (credits, replies, completes) as exact
        # (vaddr, bytes) pairs.  Long enough to cover two full wraps of
        # the credit ring, so replaying it in order reconstructs the
        # latest intended state of every control word it spans.
        self._replay_log: Deque[tuple] = deque(maxlen=4 * slots + 8)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def establish(self, rdv: Rendezvous, my_rank: int):
        """Export my halves, exchange ids, import the peer's, bind AU."""
        proc, ep = self.proc, self.ep
        page = proc.config.page_size
        self.data_in = ep.alloc_buffer(self.data_bytes, cache_mode=CacheMode.WRITE_THROUGH)
        self.ctrl_in = ep.alloc_buffer(page, cache_mode=CacheMode.WRITE_THROUGH)
        exp_data = yield from ep.export(self.data_in, self.data_bytes)
        exp_ctrl = yield from ep.export(self.ctrl_in, page,
                                        handler=self._on_buffer_request)
        key = "nx-conn-%d-%d" % (my_rank, self.peer_rank)
        rdv.put(key, (proc.node.node_id, exp_data.export_id, exp_ctrl.export_id))
        peer_key = "nx-conn-%d-%d" % (self.peer_rank, my_rank)
        peer_node, peer_data_id, peer_ctrl_id = yield rdv.get(peer_key)
        assert peer_node == self.peer_node
        self.imp_data = yield from ep.import_buffer(peer_node, peer_data_id)
        self.imp_ctrl = yield from ep.import_buffer(peer_node, peer_ctrl_id)

        self.au_ctrl_out = ep.alloc_buffer(page, cache_mode=CacheMode.WRITE_THROUGH)
        yield from ep.bind(self.au_ctrl_out, self.imp_ctrl, combining=True)
        if self.variant.automatic:
            self.au_data_out = ep.alloc_buffer(
                self.data_bytes, cache_mode=CacheMode.WRITE_THROUGH
            )
            yield from ep.bind(self.au_data_out, self.imp_data, combining=True)
        self.staging = ep.alloc_buffer(
            -(-self.slot_bytes // page) * page, cache_mode=CacheMode.WRITE_BACK
        )
        self.credit_reader = CreditRing(self.ctrl_in + _CREDITS_OFF, 2 * self.slots)
        self.next_credit_out = CreditRing(self.au_ctrl_out + _CREDITS_OFF, 2 * self.slots)

    def _on_buffer_request(self, buffer, page, size) -> None:
        """Notification handler: the peer ran out of packet buffers.

        Credits flow back when we consume messages; the interrupt's job
        is only to force the receiver into library code (Section 6) —
        recorded here, observable in tests and the interrupt statistics.
        """
        self.buffer_requests_seen += 1

    # ------------------------------------------------------------------
    # Send side
    # ------------------------------------------------------------------
    def reclaim_credits(self, at_least: int = 0):
        """Pull returned credits into the free list.

        Stops early once ``at_least`` credits were recovered (saves the
        trailing does-not-match read on the fast path); ``at_least=0``
        drains everything currently visible.
        """
        recovered = 0
        while True:
            slot_vaddr = self.credit_reader.expected_slot_vaddr()
            data = yield from self.proc.read(slot_vaddr, CREDIT_SLOT_BYTES)
            index = self.credit_reader.try_read(data)
            if index is None:
                return
            self.free_slots.append(index)
            recovered += 1
            if at_least and recovered >= at_least:
                return

    def acquire_slot(self):
        """Get a free remote packet buffer, blocking (and interrupting
        the receiver) if none are available.

        Credit reclaim is lazy: no control reads happen while the free
        list still has buffers.
        """
        if self.free_slots:
            return self.free_slots.popleft()
        yield from self.reclaim_credits(at_least=1)
        if self.free_slots:
            return self.free_slots.popleft()
        # Buffers exhausted: 'the NX library generates an interrupt on
        # the receiver to request more buffers', then waits for a credit.
        yield from self._send_buffer_request()
        while not self.free_slots:
            stamp_vaddr = self.credit_reader.expected_slot_vaddr() + 4
            expected = self.credit_reader.expected_seq_bytes()
            yield from self.proc.poll(stamp_vaddr, 4, lambda b: b == expected)
            yield from self.reclaim_credits()
        return self.free_slots.popleft()

    def _send_buffer_request(self):
        proc = self.proc
        yield from proc.write(self.staging, _u32(self.next_send_seq))
        yield from self.ep.send(
            self.imp_ctrl, self.staging, 4, offset=_REQUEST_OFF, notify=True
        )

    def slot_offset(self, slot: int) -> int:
        """Byte offset of packet buffer ``slot`` in the data region."""
        return slot * self.slot_bytes

    def send_small(self, user_vaddr: int, size: int, mtype: int):
        """One-copy-protocol send of a message that fits a packet buffer.

        Returns the message seq.  Payload lands at the slot, the in-slot
        header identifies it, and the descriptor-ring write (via AU,
        after the data, hence ordered) flags arrival.
        """
        if size > self.payload_bytes:
            raise ValueError("message of %d bytes does not fit a packet buffer" % size)
        if self.hardened:
            seq = yield from self._send_small_hardened(user_vaddr, size, mtype)
            return seq
        slot = yield from self.acquire_slot()
        seq = self.next_send_seq
        self.next_send_seq += 1
        yield from self._write_small_payload(slot, user_vaddr, size, mtype, seq)
        yield from self._write_descriptor(slot, mtype, size, seq)
        return seq

    def _write_small_payload(self, slot: int, user_vaddr: int, size: int,
                             mtype: int, seq: int):
        """Variant-specific payload placement for one small message.

        Idempotent with respect to connection state — the hardened
        sender replays it verbatim on retransmission.
        """
        proc, ep = self.proc, self.ep
        variant = self.variant
        offset = self.slot_offset(slot)
        header = _u32(mtype & 0xFFFFFFFF, seq, size)

        needs_staging = variant.staging_copy or (
            not variant.automatic and (user_vaddr % proc.config.word_size != 0)
        )
        if variant.automatic:
            # AU marshal straight into the bound slot; the descriptor-ring
            # write below is the header ('the sender may choose to send
            # the data along with the header directly via automatic
            # update as it marshals') — an in-slot copy of the header
            # would be redundant bookkeeping, so payload starts at the
            # slot's payload offset and nothing else is written here.
            base = self.au_data_out + offset
            if needs_staging:
                yield from proc.copy(user_vaddr, self.staging + HEADER_BYTES, size)
                yield from proc.copy(self.staging + HEADER_BYTES, base + HEADER_BYTES, size)
            else:
                yield from proc.copy(user_vaddr, base + HEADER_BYTES, size)
        else:
            if needs_staging:
                # Copy payload next to the header, one deliberate update
                # for both — the '2copy' point of the tradeoff.
                yield from proc.write(self.staging, header)
                yield from proc.copy(user_vaddr, self.staging + HEADER_BYTES, size)
                yield from ep.send(self.imp_data, self.staging,
                                   HEADER_BYTES + size, offset=offset)
            else:
                # Header and payload as two separate deliberate updates —
                # the '1copy' point.
                yield from proc.write(self.staging, header)
                yield from ep.send(self.imp_data, self.staging, HEADER_BYTES,
                                   offset=offset)
                yield from ep.send(self.imp_data, user_vaddr, _pad4(size),
                                   offset=offset + HEADER_BYTES)

    def _send_small_hardened(self, user_vaddr: int, size: int, mtype: int):
        """One small message, reliably: CRC + retransmit until acked.

        Hardened sends are a synchronous rendezvous: the message's
        credit coming back *is* the ack (the receiver only returns a
        credit after consuming the payload), so at most one message is
        outstanding per connection and a retransmission can blindly
        rewrite the same slot.  A timed-out attempt also bumps the
        peer's replay-request beacon, covering the case where the
        message arrived but the credit was lost.  Raises
        :class:`NXTimeoutError` when the retry budget is exhausted.
        """
        proc = self.proc
        slot = yield from self.acquire_slot()
        seq = self.next_send_seq
        self.next_send_seq += 1
        desc = self._desc_image(slot, mtype, size, seq)
        body = yield from proc.read(user_vaddr, size)    # checksum pass
        crc = crc32_of(desc, bytes(body))
        base_us = _RETRY_BASE_US + _RETRY_PER_BYTE_US * size
        for attempt in range(MAX_XMIT):
            self._xmit_out += 1
            try:
                yield from self._write_small_payload(slot, user_vaddr, size, mtype, seq)
                yield from proc.write(self.au_ctrl_out + _HCRC_OFF,
                                      _u32(crc, seq, self._xmit_out))
                yield from self._write_descriptor(slot, mtype, size, seq)
            except VmmcTransferError:
                # The DU engine aborted this attempt; burn it and retry.
                continue
            acked = yield from self._await_credit(attempt_timeout_us(base_us, attempt))
            if acked:
                if slot not in self.free_slots:
                    # The credit arrived but its index half was mangled
                    # (and rejected); synchrony pins it to this slot.
                    self.free_slots.append(slot)
                return seq
            yield from self.request_replay()
        raise NXTimeoutError(
            "no credit back from rank %d for seq %d (%d bytes) after %d transmissions"
            % (self.peer_rank, seq, size, MAX_XMIT)
        )

    def _await_credit(self, timeout_us: float):
        """Hardened ack wait: True once the next credit stamp lands."""
        stamp_vaddr = self.credit_reader.expected_slot_vaddr() + 4
        expected = self.credit_reader.expected_seq_bytes()
        ok = yield from self._await_ctrl_word(stamp_vaddr, expected, timeout_us)
        if not ok:
            return False
        yield from self.reclaim_credits(at_least=1)
        return True

    def _await_ctrl_word(self, vaddr: int, expected: bytes, timeout_us: float):
        """Bounded wait for a control word, servicing the replay beacon.

        Waits until the 4 bytes at ``vaddr`` (inside our control page)
        equal ``expected``; True on success, False at the deadline.  The
        wait covers the whole control window so it also wakes on the
        peer's replay-request beacon and answers it — without this, two
        peers whose rounds overlap after a lost ack would each sit in a
        send-retry loop waiting for the other to reach library code (a
        sender-sender standoff).
        """
        proc = self.proc
        deadline = proc.sim.now + timeout_us
        stamp_off = vaddr - self.ctrl_in
        window = _RREQ_OFF + 4
        while True:
            remaining = deadline - proc.sim.now
            if remaining <= 0:
                return False
            rreq_snapshot = proc.peek(self.ctrl_in + _RREQ_OFF, 4)

            def stamp_or_beacon(data: bytes) -> bool:
                return (data[stamp_off : stamp_off + 4] == expected
                        or data[_RREQ_OFF : _RREQ_OFF + 4] != rreq_snapshot)

            got = yield from bounded_poll(
                proc, self.ctrl_in, window, stamp_or_beacon, remaining
            )
            if got is None:
                return False
            if got[stamp_off : stamp_off + 4] == expected:
                return True
            yield from self.service_replays()

    def request_replay(self):
        """Bump the peer's replay-request beacon (hardened recovery).

        The receiver answers by rewriting its recent control writes —
        credits, scout replies, completion words — repairing any the
        fabric ate.  Idempotent on the receiver side, so a spurious
        request costs only the replayed writes.
        """
        self._rreq_out += 1
        yield from self.proc.write(self.au_ctrl_out + _RREQ_OFF, _u32(self._rreq_out))

    def send_scout(self, mtype: int, size: int):
        """Announce a large message (zero-copy protocol, step 1)."""
        seq = self.next_send_seq
        self.next_send_seq += 1
        yield from self.proc.compute(self.proc.config.costs.nx_scout_overhead)
        yield from self._write_descriptor(SCOUT_SLOT, mtype, size, seq)
        return seq

    def send_scout_hardened(self, mtype: int, size: int):
        """Hardened scout: retransmit until the receiver's reply arrives.

        Returns ``(seq, (export_id, buf_offset, mode))``.  A hardened
        receiver always replies CHUNKED (streaming keeps every byte
        under the per-chunk CRC/ack protocol); the reply itself is in
        the receiver's replay log, so a lost reply is recovered via the
        replay-request beacon.
        """
        proc = self.proc
        seq = self.next_send_seq
        self.next_send_seq += 1
        desc = self._desc_image(SCOUT_SLOT, mtype, size, seq)
        crc = crc32_of(desc)
        for attempt in range(MAX_XMIT):
            self._xmit_out += 1
            yield from proc.compute(proc.config.costs.nx_scout_overhead)
            yield from proc.write(self.au_ctrl_out + _HCRC_OFF,
                                  _u32(crc, seq, self._xmit_out))
            yield from self._write_descriptor(SCOUT_SLOT, mtype, size, seq)
            landed = yield from self._await_ctrl_word(
                self.ctrl_in + _REPLY_OFF + 12, _u32(self.next_reply_seq),
                attempt_timeout_us(_RETRY_BASE_US, attempt),
            )
            if landed:
                reply = yield from self.check_reply()
                if reply is not None:
                    return seq, reply
            yield from self.request_replay()
        raise NXTimeoutError(
            "no scout reply from rank %d for a %d-byte message after %d transmissions"
            % (self.peer_rank, size, MAX_XMIT)
        )

    def _desc_image(self, slot: int, mtype: int, size: int, seq: int) -> bytes:
        """The wire image of one descriptor-ring entry.

        Traced rings carry the sender's trace context between size and
        seq; zeros when the send has none, so a reused ring slot never
        leaks a previous message's identifiers.
        """
        if self.traced:
            tid, psid = self.trace_out or (0, 0)
            return _u32(slot, mtype & 0xFFFFFFFF, size, tid, psid, seq)
        return _u32(slot, mtype & 0xFFFFFFFF, size, seq)

    def _write_descriptor(self, slot: int, mtype: int, size: int, seq: int):
        ring_slot = seq % (2 * self.slots + 2)
        vaddr = self.au_ctrl_out + _DESC_RING_OFF + ring_slot * self.desc_bytes
        yield from self.proc.write(
            vaddr, self._desc_image(slot, mtype, size, seq)
        )

    def poll_reply(self):
        """Wait for the receiver's reply to our scout (step 3)."""
        expected = _u32(self.next_reply_seq)
        stamp = self.ctrl_in + _REPLY_OFF + 12
        yield from self.proc.poll(stamp, 4, lambda b: b == expected)
        data = yield from self.proc.read(self.ctrl_in + _REPLY_OFF, 16)
        export_id, buf_offset, mode, _seq = struct.unpack("<IIII", data)
        self.next_reply_seq += 1
        return export_id, buf_offset, mode

    def check_reply(self):
        """Non-blocking reply check; None if not yet there."""
        expected = _u32(self.next_reply_seq)
        data = yield from self.proc.read(self.ctrl_in + _REPLY_OFF, 16)
        export_id, buf_offset, mode, seq = struct.unpack("<IIII", data)
        if _u32(seq) != expected:
            return None
        self.next_reply_seq += 1
        return export_id, buf_offset, mode

    def send_complete(self, seq: int):
        """Flag the zero-copy data as fully in place (step 5, via AU)."""
        yield from self._ctrl_write(self.au_ctrl_out + _COMPLETE_OFF, _u32(seq))

    # ------------------------------------------------------------------
    # Receive side
    # ------------------------------------------------------------------
    def scan_descriptor(self):
        """Non-blocking: parse the next descriptor if it has arrived.

        Reads the 4-byte sequence stamp first; the full descriptor is
        read only on a hit (the common no-message scan is one load).
        """
        ring_slot = self.next_recv_seq % (2 * self.slots + 2)
        vaddr = self.ctrl_in + _DESC_RING_OFF + ring_slot * self.desc_bytes
        stamp = yield from self.proc.read(vaddr + self.desc_bytes - 4, 4)
        if stamp != _u32(self.next_recv_seq):
            return None
        data = yield from self.proc.read(vaddr, self.desc_bytes)
        tctx = None
        if self.traced:
            slot, mtype, size, tid, psid, seq = struct.unpack("<6I", data)
            if tid:
                tctx = (tid, psid)
        else:
            slot, mtype, size, seq = struct.unpack("<IIII", data)
        if seq != self.next_recv_seq:
            return None
        if self.hardened:
            ok = yield from self._validate_arrival(data, slot, size, seq)
            if not ok:
                # Corrupt, stale, or not fully landed: leave the ring
                # state untouched and let the sender's retransmission
                # (which rewrites the CRC block and descriptor) repair it.
                return None
        self.next_recv_seq += 1
        yield from self.proc.compute(self.proc.config.costs.nx_match_overhead)
        return slot, mtype, size, seq, tctx

    def _validate_arrival(self, desc: bytes, slot: int, size: int, seq: int):
        """Hardened check: descriptor + payload match the sender's CRC."""
        proc = self.proc
        hdr = yield from proc.read(self.ctrl_in + _HCRC_OFF, 12)
        crc, hseq, _xmit = struct.unpack("<III", hdr)
        if hseq != seq:
            return False
        if slot == SCOUT_SLOT:
            payload = b""
        else:
            if slot >= self.slots or size > self.payload_bytes:
                return False
            payload = yield from proc.read(
                self.data_in + self.slot_offset(slot) + HEADER_BYTES, size
            )
        return crc32_of(desc, payload) == crc

    def descriptor_stamp_vaddr(self) -> int:
        """Address of the next expected descriptor's sequence stamp
        (what a blocking receive polls)."""
        ring_slot = self.next_recv_seq % (2 * self.slots + 2)
        return (self.ctrl_in + _DESC_RING_OFF
                + ring_slot * self.desc_bytes + self.desc_bytes - 4)

    def expected_stamp_bytes(self) -> bytes:
        """Encoded stamp the next descriptor must carry."""
        return _u32(self.next_recv_seq)

    def consume_payload(self, slot: int, size: int, user_vaddr: int):
        """Copy a small message out of its packet buffer and return the
        credit ('at least one copy from the receive buffer')."""
        yield from self.proc.copy(self.data_in + self.slot_offset(slot) + HEADER_BYTES,
                                  user_vaddr, size)
        yield from self.return_credit(slot)

    def peek_payload(self, slot: int, size: int) -> bytes:
        """Untimed view of a slot's payload (tests/debug only)."""
        return self.proc.peek(self.data_in + self.slot_offset(slot) + HEADER_BYTES, size)

    def return_credit(self, slot: int):
        """Return ``slot``'s credit to the sender (via AU)."""
        yield from self.proc.compute(self.proc.config.costs.nx_credit_overhead)
        vaddr, data = self.next_credit_out.next_write(slot)
        yield from self._ctrl_write(vaddr, data)

    def send_reply(self, export_id: int, buf_offset: int, mode: int):
        """Receiver side of the zero-copy protocol: tell the sender where
        to put the data (step 2->3)."""
        seq = self.next_reply_out_seq
        self.next_reply_out_seq += 1
        yield from self._ctrl_write(
            self.au_ctrl_out + _REPLY_OFF, _u32(export_id, buf_offset, mode, seq)
        )

    def _ctrl_write(self, vaddr: int, data: bytes):
        """Timed control write, recorded for replay in hardened mode."""
        if self.hardened:
            self._replay_log.append((vaddr, data))
        yield from self.proc.write(vaddr, data)

    def service_replays(self):
        """Answer the peer's replay-request beacon (hardened recovery).

        Rewrites the logged control writes in order — the newest write
        to each word lands last, reconstructing the intended state of
        every credit-ring slot, reply, and completion word the log
        covers.  Rewriting a write that did arrive is harmless.
        """
        if not self.hardened:
            return
        raw = yield from self.proc.read(self.ctrl_in + _RREQ_OFF, 4)
        (rreq,) = struct.unpack("<I", raw)
        if rreq == self._rreq_seen:
            return
        self._rreq_seen = rreq
        for vaddr, data in list(self._replay_log):
            yield from self.proc.write(vaddr, data)

    def hardened_watch_ranges(self):
        """(vaddr, nbytes) control ranges a hardened receiver watches.

        Retransmissions rewrite the CRC block and replay requests bump
        the beacon; a sleeping receiver must wake for either (the
        retransmitted descriptor lands in an already-consumed ring slot,
        which the descriptor-stamp watch alone would sleep through).
        """
        return [(self.ctrl_in + _HCRC_OFF, 12), (self.ctrl_in + _RREQ_OFF, 4)]

    def poll_complete(self, seq: int):
        """Wait for the zero-copy completion word to show ``seq``."""
        expected = _u32(seq)
        yield from self.proc.poll(
            self.ctrl_in + _COMPLETE_OFF, 4, lambda b: b == expected
        )
        self.next_complete_seq = seq + 1


def _pad4(size: int) -> int:
    """DU transfer sizes are whole words; trailing pad bytes land in the
    slot's spare room (never read — size in the header bounds reads)."""
    return (size + 3) & ~3
