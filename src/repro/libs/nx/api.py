"""The NX message-passing interface (Intel NX/2 compatibility library).

Implements the classic NX calls — ``csend``/``crecv``, ``isend``/
``irecv``/``msgwait``/``msgdone``, ``cprobe``/``iprobe``, the info
calls, and ``gsync`` — entirely at user level on VMMC, as in Section
4.1 of the paper:

* small messages use the one-copy protocol through per-pair packet
  buffers with send credits;
* messages larger than a packet buffer use the zero-copy scout
  protocol: scout descriptor, receiver replies with its user buffer's
  export, sender deliberate-updates straight into it (the sender
  meanwhile makes a safety copy off the critical path);
* when alignment forbids zero-copy, the transfer falls back to
  streaming through the packet buffers.

One NX process per node, addressed by rank (node number), matching the
fixed-process-set model of NX ('NX allows communication between a fixed
set of processes only... at initialization time, NX sets up one set of
buffers for each pair of processes').
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...kernel.system import ShrimpSystem
from ...sim import Event
from ...testbed import Rendezvous
from ...vmmc import VmmcEndpoint, attach
from .connection import (
    ANY_TYPE,
    CHUNK_TYPE,
    Connection,
    NXTimeoutError,
    NXVariant,
    PendingMessage,
    REPLY_MODE_CHUNKED,
    REPLY_MODE_DIRECT,
    SCOUT_SLOT,
)

__all__ = ["NXVariant", "NXProcess", "MsgId", "nx_world", "VARIANTS",
           "ANY_TYPE", "ANY_NODE", "NXTimeoutError"]

ANY_NODE = -1

# How long a hardened blocking receive sleeps with no message, CRC
# rewrite, or replay request arriving before declaring the peer lost.
# Generously above a sender's whole retry budget.
_RECV_IDLE_US = 1_000_000.0

VARIANTS: Dict[str, NXVariant] = {
    v.name: v
    for v in [
        NXVariant("AU-1copy", automatic=True, staging_copy=False),
        NXVariant("AU-2copy", automatic=True, staging_copy=True),
        NXVariant("DU-1copy", automatic=False, staging_copy=False),
        NXVariant("DU-2copy", automatic=False, staging_copy=True),
        NXVariant("DU-0copy", automatic=False, staging_copy=False, force_zero_copy=True),
    ]
}

_BARRIER_TYPE = 0x7FFF0001


@dataclass
class MsgId:
    """Handle returned by isend/irecv/hrecv, consumed by msgwait/msgdone."""

    kind: str                     # "send" | "recv"
    done: bool = False
    typesel: int = ANY_TYPE
    vaddr: int = 0
    max_bytes: int = 0
    info: Optional[Tuple[int, int, int]] = None   # (count, node, type)
    handler: Optional[Callable[[int, int, int], None]] = None


class NXProcess:
    """One rank of an NX application."""

    def __init__(
        self,
        system: ShrimpSystem,
        proc: UserProcess,
        rank: int,
        nranks: int,
        rdv: Rendezvous,
        variant: NXVariant,
        slots: int = 8,
        payload_bytes: int = 2048,
    ):
        self.system = system
        self.proc = proc
        self.rank = rank
        self.nranks = nranks
        self.rdv = rdv
        self.variant = variant
        self.slots = slots
        self.payload_bytes = payload_bytes
        self.ep: VmmcEndpoint = attach(system, proc)
        self.connections: Dict[int, Connection] = {}
        self._pending: List[PendingMessage] = []
        self._posted: List[MsgId] = []
        self._arrival = 0
        self._last_info: Tuple[int, int, int] = (0, -1, -1)  # (count, node, type)
        self.last_trace_ctx: Optional[Tuple[int, int]] = None  # last consumed msg
        # Zero-copy machinery caches.
        self._export_cache: Dict[int, object] = {}     # region base -> ExportedBuffer
        self._import_cache: Dict[Tuple[int, int], object] = {}
        self._backup_vaddr = 0
        self._backup_bytes = 0
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------
    # Initialization
    # ------------------------------------------------------------------
    def init(self):
        """Establish connections to every rank (including self)."""
        for peer in range(self.nranks):
            conn = Connection(
                self.proc, self.ep, peer_node=peer, peer_rank=peer,
                variant=self.variant, slots=self.slots,
                payload_bytes=self.payload_bytes,
            )
            yield from conn.establish(self.rdv, self.rank)
            self.connections[peer] = conn

    # -- identity ------------------------------------------------------------
    def mynode(self) -> int:
        """This rank's number."""
        return self.rank

    def numnodes(self) -> int:
        """Total ranks in the application."""
        return self.nranks

    # ------------------------------------------------------------------
    # Blocking send / receive
    # ------------------------------------------------------------------
    def csend(self, mtype: int, vaddr: int, nbytes: int, to: int):
        """Blocking typed send of ``nbytes`` at ``vaddr`` to rank ``to``."""
        if not 0 <= to < self.nranks:
            raise ValueError("destination rank %d out of range" % to)
        if mtype < 0:
            raise ValueError("message types must be non-negative")
        conn = self.connections[to]
        span = None
        ctx = self.proc.trace_ctx
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "nx.csend", "csend %dB -> r%d" % (nbytes, to),
                track=self.proc.trace_track, data={"bytes": nbytes, "type": mtype},
            )
            if span is not None and ctx is not None:
                span.data["tid"] = ctx[0]
                span.data["cparent"] = ctx[1]
        if conn.traced and ctx is not None:
            # The descriptor advertises this csend span as the receive
            # side's cross-wire parent; retransmissions rewrite the same
            # image, so a replayed descriptor names the same parent.
            conn.trace_out = (ctx[0], span.sid if span is not None else ctx[1])
        try:
            yield from self.proc.compute(self.proc.config.costs.nx_send_overhead)
            if nbytes <= self.payload_bytes and not self.variant.force_zero_copy:
                yield from conn.send_small(vaddr, nbytes, mtype)
            else:
                yield from self._send_large(conn, mtype, vaddr, nbytes)
        finally:
            conn.trace_out = None
            # Close the span on fault-raised exits too, or the
            # span-balance audit flags a leak on every retried send.
            self.proc.tracer.end(span)
        self.messages_sent += 1

    def crecv(self, typesel: int, vaddr: int, max_bytes: int):
        """Blocking typed receive into ``vaddr``; returns the byte count.

        ``typesel`` of ANY_TYPE (-1) matches any message.  Messages may
        be consumed out of arrival order when types differ — the packet
        buffers are credit-recycled individually to allow exactly this.
        """
        size = yield from self.crecvx(typesel, vaddr, max_bytes, ANY_NODE)
        return size

    def crecvx(self, typesel: int, vaddr: int, max_bytes: int, nodesel: int):
        """Source-selective blocking receive (NX's crecvx): ``nodesel``
        restricts matching to one sender rank (-1 = any)."""
        span = None
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "nx.crecv", "crecv type %d" % typesel, track=self.proc.trace_track,
            )
        try:
            yield from self.proc.compute(self.proc.config.costs.nx_recv_overhead)
            while True:
                yield from self._progress()
                match = self._take_match(typesel, nodesel)
                if match is not None:
                    size = yield from self._consume(match, vaddr, max_bytes)
                    if span is not None:
                        data = {"bytes": size}
                        if match.tctx is not None:
                            data["tid"], data["xparent"] = match.tctx
                        self.proc.tracer.end(span, data=data)
                    return size
                yield from self._wait_any_descriptor()
        finally:
            # A fault-raised NXTimeoutError exits through here with the
            # span still open; close it (the success path above already
            # ended it, which makes this a no-op).
            if span is not None and span.end is None:
                self.proc.tracer.end(span)

    # ------------------------------------------------------------------
    # Non-blocking operations
    # ------------------------------------------------------------------
    def isend(self, mtype: int, vaddr: int, nbytes: int, to: int):
        """Asynchronous send.  This implementation completes the send
        eagerly (valid: isend may complete at any time); msgwait on the
        returned handle is then immediate."""
        yield from self.csend(mtype, vaddr, nbytes, to)
        return MsgId(kind="send", done=True)

    def irecv(self, typesel: int, vaddr: int, max_bytes: int):
        """Post an asynchronous receive; progress is made lazily by
        msgwait/msgdone/crecv/probe calls."""
        mid = MsgId(kind="recv", typesel=typesel, vaddr=vaddr, max_bytes=max_bytes)
        self._posted.append(mid)
        yield from self._progress()
        return mid

    def hrecv(self, typesel: int, vaddr: int, max_bytes: int,
              handler: Callable[[int, int, int], None]):
        """Handler receive: like irecv, but ``handler(count, node, type)``
        runs when the message is consumed (during library progress —
        NX/2's handler model, minus true preemption)."""
        mid = MsgId(kind="recv", typesel=typesel, vaddr=vaddr,
                    max_bytes=max_bytes, handler=handler)
        self._posted.append(mid)
        yield from self._progress()
        return mid

    def msgwait(self, mid: MsgId):
        """Block until the handle's operation completes."""
        while not mid.done:
            yield from self._progress()
            if mid.done:
                break
            yield from self._wait_any_descriptor()
        if mid.info is not None:
            self._last_info = mid.info

    def msgdone(self, mid: MsgId):
        """One progress pass; returns completion status."""
        yield from self._progress()
        return mid.done

    # ------------------------------------------------------------------
    # Probes and info
    # ------------------------------------------------------------------
    def iprobe(self, typesel: int):
        """Non-blocking: is a matching message available?"""
        yield from self._progress()
        match = self._find_match(typesel)
        if match is not None:
            self._last_info = (match.size, match.peer, match.mtype)
            return True
        return False

    def cprobe(self, typesel: int):
        """Block until a matching message is available (not consumed)."""
        while True:
            found = yield from self.iprobe(typesel)
            if found:
                return
            yield from self._wait_any_descriptor()

    def infocount(self) -> int:
        """Byte count of the last received message."""
        return self._last_info[0]

    def infonode(self) -> int:
        """Source rank of the last received message."""
        return self._last_info[1]

    def infotype(self) -> int:
        """Type of the last received message."""
        return self._last_info[2]

    # ------------------------------------------------------------------
    # Barrier
    # ------------------------------------------------------------------
    def gsync(self):
        """Global synchronization: gather-to-0 then broadcast."""
        token_vaddr = self._scratch_word()
        self.proc.poke(token_vaddr, b"SYNC")
        if self.rank == 0:
            for _ in range(self.nranks - 1):
                yield from self.crecv(_BARRIER_TYPE, token_vaddr, 4)
            for peer in range(1, self.nranks):
                yield from self.csend(_BARRIER_TYPE + 1, token_vaddr, 4, peer)
        else:
            yield from self.csend(_BARRIER_TYPE, token_vaddr, 4, 0)
            yield from self.crecv(_BARRIER_TYPE + 1, token_vaddr, 4)

    def _scratch_word(self) -> int:
        if not hasattr(self, "_scratch"):
            self._scratch = self.proc.space.mmap(self.proc.config.page_size)
        return self._scratch

    # ------------------------------------------------------------------
    # Progress engine
    # ------------------------------------------------------------------
    def _progress(self):
        """Scan every connection's descriptor ring; match posted irecvs.

        Pending notifications (e.g. a peer's buffer-request interrupt)
        are dispatched first — the signal handler runs as soon as the
        process is back in library code.
        """
        yield from self.ep.dispatch_notifications()
        for peer in range(self.nranks):
            conn = self.connections[peer]
            yield from conn.service_replays()
            while True:
                parsed = yield from conn.scan_descriptor()
                if parsed is None:
                    break
                slot, mtype, size, seq, tctx = parsed
                self._arrival += 1
                self._pending.append(
                    PendingMessage(peer, slot, mtype, size, seq,
                                   self._arrival, tctx)
                )
        # Lazy completion of posted receives, in post order.
        for mid in list(self._posted):
            match = self._take_match(mid.typesel)
            if match is None:
                continue
            self._posted.remove(mid)
            size = yield from self._consume(match, mid.vaddr, mid.max_bytes)
            mid.done = True
            mid.info = (size, match.peer, match.mtype)
            if mid.handler is not None:
                yield from self.proc.compute(self.proc.config.costs.call_overhead)
                mid.handler(size, match.peer, match.mtype)

    def _find_match(self, typesel: int, nodesel: int = -1) -> Optional[PendingMessage]:
        candidates = [
            m for m in self._pending
            if m.mtype != CHUNK_TYPE
            and (typesel == ANY_TYPE or m.mtype == typesel)
            and (nodesel == ANY_NODE or m.peer == nodesel)
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda m: m.arrival)

    def _take_match(self, typesel: int, nodesel: int = -1) -> Optional[PendingMessage]:
        match = self._find_match(typesel, nodesel)
        if match is not None:
            self._pending.remove(match)
        return match

    def _wait_any_descriptor(self):
        """Sleep until any connection's next descriptor stamp can have
        arrived (a watch-based stand-in for the receiver's polling loop;
        each wakeup charges one check).

        Hardened mode also watches each connection's CRC block and
        replay-request beacon — a retransmission or a replay request
        must wake the receiver even though the descriptor stamp it
        expects is unchanged — and bounds the sleep, raising
        :class:`NXTimeoutError` instead of hanging on a dead peer.
        """
        hardened = self.proc.faults.enabled
        woke = Event(self.proc.sim, name="nx-wait")
        watches = []
        memory = self.proc.node.memory
        for conn in self.connections.values():
            ranges = [(conn.descriptor_stamp_vaddr(), 4)]
            if hardened:
                ranges.extend(conn.hardened_watch_ranges())
            for vaddr, nbytes in ranges:
                for paddr, length in self.proc.space.translate(vaddr, nbytes):
                    watches.append(
                        memory.add_watch(
                            paddr, length,
                            lambda p, n: None if woke.triggered else woke.succeed(None),
                        )
                    )
        # Rescan once before sleeping (a descriptor may have landed
        # between the scan and the watch registration).
        arrived = False
        for conn in self.connections.values():
            data = self.proc.peek(conn.descriptor_stamp_vaddr(), 4)
            if data == conn.expected_stamp_bytes():
                arrived = True
        if not arrived:
            if hardened:
                timer = self.proc.sim.timeout(_RECV_IDLE_US)
                yield self.proc.sim.any_of([woke, timer])
                if not woke.triggered:
                    for watch in watches:
                        memory.remove_watch(watch)
                    raise NXTimeoutError(
                        "rank %d saw no message activity within %.0f us"
                        % (self.rank, _RECV_IDLE_US)
                    )
            else:
                yield woke
        for watch in watches:
            memory.remove_watch(watch)
        yield self.proc.sim.timeout(self.proc.config.costs.vmmc_poll_check)

    # ------------------------------------------------------------------
    # Consumption (small, zero-copy, chunked)
    # ------------------------------------------------------------------
    def _consume(self, match: PendingMessage, vaddr: int, max_bytes: int):
        if match.size > max_bytes:
            raise ValueError(
                "message of %d bytes exceeds receive buffer of %d"
                % (match.size, max_bytes)
            )
        conn = self.connections[match.peer]
        if match.slot == SCOUT_SLOT:
            size = yield from self._recv_large(conn, match, vaddr)
        else:
            yield from conn.consume_payload(match.slot, match.size, vaddr)
            size = match.size
        self._last_info = (size, match.peer, match.mtype)
        self.last_trace_ctx = match.tctx
        self.messages_received += 1
        return size

    # -- zero-copy protocol, sender side ------------------------------------
    def _send_large(self, conn: Connection, mtype: int, vaddr: int, nbytes: int):
        if conn.large_send_active:
            raise RuntimeError("one large send at a time per connection")
        conn.large_send_active = True
        try:
            if conn.hardened:
                # Hardened large sends always stream through the packet
                # buffers: every chunk rides the CRC'd, credit-acked
                # small-message protocol, and the scout reply (always
                # CHUNKED from a hardened receiver) is covered by the
                # replay beacon.  The zero-copy direct path would need
                # its own ack machinery for no coverage gain.
                _seq, _reply = yield from conn.send_scout_hardened(mtype, nbytes)
                sent = 0
                while sent < nbytes:
                    step = min(self.payload_bytes, nbytes - sent)
                    yield from conn.send_small(vaddr + sent, step, CHUNK_TYPE)
                    sent += step
                return
            seq = yield from conn.send_scout(mtype, nbytes)
            # 'The sender immediately begins copying the data into a
            # local buffer... The sender copies only when it has nothing
            # better to do; as soon as the receiver replies, the sender
            # immediately stops copying.'
            backup = self._backup_buffer(nbytes)
            copied = 0
            chunk = 1024
            reply = None
            while reply is None:
                reply = yield from conn.check_reply()
                if reply is not None:
                    break
                if copied < nbytes:
                    step = min(chunk, nbytes - copied)
                    yield from self.proc.copy(vaddr + copied, backup + copied, step)
                    copied += step
                else:
                    reply = yield from conn.poll_reply()
                    break
            export_id, buf_offset, mode = reply
            if mode == REPLY_MODE_DIRECT:
                src = backup if copied >= nbytes else vaddr
                if src % self.proc.config.word_size != 0:
                    # Finish the safety copy; the backup is aligned.
                    yield from self.proc.copy(vaddr + copied, backup + copied,
                                              nbytes - copied)
                    src = backup
                imported = yield from self._import_region(conn, export_id)
                yield from self.ep.send(imported, src, nbytes, offset=buf_offset)
                yield from conn.send_complete(seq)
            else:
                # Alignment fallback: stream through the packet buffers.
                sent = 0
                while sent < nbytes:
                    step = min(self.payload_bytes, nbytes - sent)
                    yield from conn.send_small(vaddr + sent, step, CHUNK_TYPE)
                    sent += step
        finally:
            conn.large_send_active = False

    def _backup_buffer(self, nbytes: int) -> int:
        page = self.proc.config.page_size
        needed = -(-nbytes // page) * page
        if needed > self._backup_bytes:
            self._backup_vaddr = self.proc.space.mmap(
                needed, cache_mode=CacheMode.WRITE_BACK
            )
            self._backup_bytes = needed
        return self._backup_vaddr

    def _import_region(self, conn: Connection, export_id: int):
        key = (conn.peer_rank, export_id)
        cached = self._import_cache.get(key)
        if cached is None:
            cached = yield from self.ep.import_buffer(conn.peer_node, export_id)
            self._import_cache[key] = cached
        return cached

    # -- zero-copy protocol, receiver side ------------------------------------
    def _recv_large(self, conn: Connection, scout: PendingMessage, vaddr: int):
        yield from self.proc.compute(self.proc.config.costs.nx_scout_overhead)
        page = self.proc.config.page_size
        word = self.proc.config.word_size
        region = (vaddr // page) * page
        end = -(-(vaddr + scout.size) // page) * page
        offset = vaddr - region
        if offset % word == 0 and scout.size % word == 0 and not conn.hardened:
            export = self._export_cache.get(region)
            if export is None or export.nbytes < end - region:
                export_vaddr = region
                export = yield from self.ep.export(export_vaddr, end - region)
                self._export_cache[region] = export
            yield from conn.send_reply(export.export_id, offset, REPLY_MODE_DIRECT)
            yield from conn.poll_complete(scout.seq)
            return scout.size
        # Alignment forbids zero-copy: receive chunks through the buffers.
        yield from conn.send_reply(0, 0, REPLY_MODE_CHUNKED)
        received = 0
        while received < scout.size:
            yield from self._progress()
            chunk = next(
                (m for m in self._pending
                 if m.peer == conn.peer_rank and m.mtype == CHUNK_TYPE),
                None,
            )
            if chunk is None:
                yield from self._wait_any_descriptor()
                continue
            self._pending.remove(chunk)
            yield from conn.consume_payload(chunk.slot, chunk.size, vaddr + received)
            received += chunk.size
        return scout.size


def nx_world(
    system: ShrimpSystem,
    programs: List[Callable[[NXProcess], object]],
    variant: NXVariant = VARIANTS["AU-1copy"],
    slots: int = 8,
    payload_bytes: int = 2048,
):
    """Boot an NX application: one rank per node running ``programs[rank]``.

    Each program is a generator function taking its :class:`NXProcess`
    (already initialized).  Returns the spawned process handles; run
    them with ``system.run_processes(handles)``.
    """
    if len(programs) > system.config.n_nodes:
        raise ValueError("more NX ranks than nodes")
    rdv = Rendezvous(system)
    nranks = len(programs)
    handles = []

    def make_main(rank: int, body):
        def main(proc: UserProcess):
            nx = NXProcess(system, proc, rank, nranks, rdv, variant,
                           slots=slots, payload_bytes=payload_bytes)
            yield from nx.init()
            result = yield from body(nx)
            return result

        return main

    for rank, body in enumerate(programs):
        handles.append(system.spawn(rank, make_main(rank, body), name="nx-%d" % rank))
    return handles
