"""Send-credit machinery of the NX one-copy protocol.

'After the receiver consumes the message, it resets the size field to a
special value and uses the control buffer to return a send credit to
the sender.  Since the receiver may consume messages out of order, the
credit identifies a specific packet buffer which has become available.'

The credit channel is a sequence-stamped ring in the sender's control
page, written by the receiver via automatic update.  Each 8-byte slot
holds ``[buffer_index][credit_seq]``; the writer stamps monotonically
increasing sequence numbers and the reader polls the slot where the
next expected sequence number must land.  The stamp is written in the
same 8-byte store as the index, so a credit is visible atomically.
"""

from __future__ import annotations

import struct
from typing import List, Optional

__all__ = ["CreditRing", "CREDIT_SLOT_BYTES"]

CREDIT_SLOT_BYTES = 8


class CreditRing:
    """One direction's credit ring bookkeeping (layout + codec).

    The ring itself lives in simulated memory; this class computes slot
    addresses and encodes/decodes slot contents.  Both the writer
    (receiver returning credits) and the reader (sender reclaiming
    buffers) keep their own instance, advancing independent sequence
    counters over the same memory.
    """

    def __init__(self, base_vaddr: int, slots: int):
        if slots < 2:
            raise ValueError("credit ring needs at least 2 slots")
        self.base = base_vaddr
        self.slots = slots
        self.next_seq = 1  # writer: next stamp to write; reader: next expected

    @property
    def region_bytes(self) -> int:
        return self.slots * CREDIT_SLOT_BYTES

    def slot_vaddr(self, seq: int) -> int:
        """Address of the ring slot that carries stamp ``seq``."""
        return self.base + (seq % self.slots) * CREDIT_SLOT_BYTES

    # -- codec ----------------------------------------------------------
    @staticmethod
    def encode(buffer_index: int, seq: int) -> bytes:
        return struct.pack("<II", buffer_index, seq)

    @staticmethod
    def decode(data: bytes) -> "tuple[int, int]":
        index, seq = struct.unpack("<II", data)
        return index, seq

    # -- writer side ------------------------------------------------------
    def next_write(self, buffer_index: int) -> "tuple[int, bytes]":
        """(slot vaddr, encoded bytes) for returning one credit."""
        vaddr = self.slot_vaddr(self.next_seq)
        data = self.encode(buffer_index, self.next_seq)
        self.next_seq += 1
        return vaddr, data

    # -- reader side ---------------------------------------------------------
    def try_read(self, slot_bytes: bytes) -> Optional[int]:
        """Decode a slot snapshot; returns the buffer index if the slot
        carries the next expected credit, else None."""
        index, seq = self.decode(slot_bytes)
        if seq != self.next_seq:
            return None
        self.next_seq += 1
        return index

    def expected_slot_vaddr(self) -> int:
        """Address the reader polls for its next credit."""
        return self.slot_vaddr(self.next_seq)

    def expected_seq_bytes(self) -> bytes:
        """The bytes the reader polls for in the stamp half of the slot."""
        return struct.pack("<I", self.next_seq)
