"""NX global operations: gisum, gdsum, gihigh, gdhigh, gilow, gdlow.

NX/2 shipped a family of global reduction calls every rank enters
together; applications used them constantly (residual norms, global
maxima, convergence tests).  Implemented here as a binomial-tree
reduce-to-0 followed by a tree broadcast of the result — pure software
over csend/crecv, like everything else above VMMC.
"""

from __future__ import annotations

import struct
from typing import Callable, List

from .api import NXProcess

__all__ = ["gisum", "gdsum", "gihigh", "gilow", "gdhigh", "gdlow", "gcol"]

_GLOBAL_REDUCE = 0x7FFD0001
_GLOBAL_BCAST = 0x7FFD0002
_GLOBAL_CONCAT = 0x7FFD0003


def _global_op(nx: NXProcess, values: List, fmt: str,
               combine: Callable[[List, List], List]):
    """Tree-reduce ``values`` elementwise to rank 0, broadcast back.

    ``fmt`` is the struct element code ('q' or 'd'); every rank returns
    the combined list.
    """
    size = nx.numnodes()
    count = len(values)
    pack = lambda vs: struct.pack("<%d%s" % (count, fmt), *vs)
    unpack = lambda raw: list(struct.unpack("<%d%s" % (count, fmt), raw))
    nbytes = len(pack(values))
    page = nx.proc.config.page_size
    scratch = nx.proc.space.mmap(-(-max(nbytes, 4) // page) * page)

    me = nx.mynode()
    accumulator = list(values)
    # Reduce: binomial tree toward rank 0.
    mask = 1
    while mask < size:
        if me & mask:
            parent = me & ~mask
            nx.proc.poke(scratch, pack(accumulator))
            yield from nx.csend(_GLOBAL_REDUCE, scratch, nbytes, to=parent)
            break
        child = me | mask
        if child < size:
            yield from nx.crecv(_GLOBAL_REDUCE, scratch, nbytes)
            accumulator = combine(accumulator, unpack(nx.proc.peek(scratch, nbytes)))
        mask <<= 1
    # Broadcast the result back down the same tree.
    if me != 0:
        yield from nx.crecv(_GLOBAL_BCAST, scratch, nbytes)
        accumulator = unpack(nx.proc.peek(scratch, nbytes))
    mask = 1
    while mask < size:
        if me < mask:
            child = me + mask
            if child < size:
                nx.proc.poke(scratch, pack(accumulator))
                yield from nx.csend(_GLOBAL_BCAST, scratch, nbytes, to=child)
        mask <<= 1
    return accumulator


def _elementwise(op):
    return lambda a, b: [op(x, y) for x, y in zip(a, b)]


def gisum(nx: NXProcess, values: List[int]):
    """Global integer sum, elementwise over ``values``; all ranks get
    the result."""
    result = yield from _global_op(nx, values, "q", _elementwise(lambda a, b: a + b))
    return result


def gdsum(nx: NXProcess, values: List[float]):
    """Global double sum."""
    result = yield from _global_op(nx, values, "d", _elementwise(lambda a, b: a + b))
    return result


def gihigh(nx: NXProcess, values: List[int]):
    """Global integer maximum."""
    result = yield from _global_op(nx, values, "q", _elementwise(max))
    return result


def gilow(nx: NXProcess, values: List[int]):
    """Global integer minimum."""
    result = yield from _global_op(nx, values, "q", _elementwise(min))
    return result


def gdhigh(nx: NXProcess, values: List[float]):
    """Global double maximum."""
    result = yield from _global_op(nx, values, "d", _elementwise(max))
    return result


def gdlow(nx: NXProcess, values: List[float]):
    """Global double minimum."""
    result = yield from _global_op(nx, values, "d", _elementwise(min))
    return result


def gcol(nx: NXProcess, vaddr: int, nbytes: int):
    """Global concatenation: every rank contributes ``nbytes`` at
    ``vaddr``; all ranks receive the rank-ordered concatenation.

    Gather to rank 0, then broadcast the concatenation (the classic
    gcolx shape, with equal contributions).
    """
    size = nx.numnodes()
    me = nx.mynode()
    total = nbytes * size
    page = nx.proc.config.page_size
    gathered = nx.proc.space.mmap(-(-total // page) * page)
    if me == 0:
        nx.proc.poke(gathered, nx.proc.peek(vaddr, nbytes))
        # Typed receives place each rank's piece directly (out-of-order
        # consumption is exactly what NX's credit scheme permits).
        for rank in range(1, size):
            yield from nx.crecv(
                _GLOBAL_CONCAT + 1000 + rank, gathered + rank * nbytes, nbytes
            )
        for child in range(1, size):
            yield from nx.csend(_GLOBAL_CONCAT, gathered, total, to=child)
    else:
        yield from nx.csend(_GLOBAL_CONCAT + 1000 + me, vaddr, nbytes, to=0)
        yield from nx.crecv(_GLOBAL_CONCAT, gathered, total)
    return nx.proc.peek(gathered, total)
