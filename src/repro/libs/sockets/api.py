"""Stream sockets on SHRIMP (Section 4.3): a user-level, VMMC-backed,
BSD-compatible stream socket library.

Connection establishment uses 'a regular internet-domain socket, on the
Ethernet, to exchange the data required to establish two VMMC mappings
(one in each direction).  The internet socket is held open, and is used
to detect when the connection has been broken.'

Data moves through per-direction circular record rings
(:mod:`.circular`); control information — produced/consumed counters
and the FIN flag — always travels by automatic update.  Three variants,
as in Figure 7:

* ``DU-2copy`` — sender copies into a staging area (handling alignment)
  and sends header+payload with one deliberate update; receiver copies
  out.
* ``DU-1copy`` — deliberate update straight from user memory (falling
  back to the two-copy path 'when dictated by alignment'); receiver
  copies out.
* ``AU-2copy`` — the sender-side copy into the AU-bound ring acts as
  the send; receiver copies out.  ('It is not possible to build a
  zero-copy deliberate-update protocol or a one-copy automatic-update
  protocol without violating the protection requirements of the sockets
  model' — the receiver's user memory is never exported.)
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...kernel.system import ShrimpSystem
from ...vmmc import VmmcEndpoint, attach
from ...vmmc.errors import VmmcTimeoutError, VmmcTransferError
from ..recovery import MAX_XMIT, attempt_timeout_us, bounded_poll, crc32_of
from .circular import RECORD_HEADER_BYTES, RecordRing, pad_word, record_bytes

__all__ = ["SocketVariant", "SOCKET_VARIANTS", "SocketLib", "ShrimpSocket",
           "Listener", "SocketError", "SocketTimeoutError"]

_PRODUCED_OFF = 0x00
_CONSUMED_OFF = 0x40
_FIN_OFF = 0x80
# Hardened-protocol control words (docs/FAULTS.md): record CRC32 and a
# transmission counter, written before the data so the receiver can
# validate a record and detect retransmissions.  Unused (never written,
# never read) when no fault plan is armed, so the fault-free wire
# traffic is byte-identical to the paper's protocol.
_CRC_OFF = 0xC0
# Per-attempt ack budget: fixed turnaround allowance plus transfer time.
_RETRY_BASE_US = 400.0
_RETRY_PER_BYTE_US = 0.1
# How long an idle hardened receiver waits before declaring the sender
# lost.  Generously above a sender's whole retry budget (base * 2^6).
_RECV_IDLE_US = 1_000_000.0
_ETH_LISTEN_BASE = 20000
_ETH_REPLY_BASE = 40000
_reply_ports = itertools.count(1)


class SocketError(Exception):
    """Connection-level failure (refused, state misuse)."""


class SocketTimeoutError(SocketError, VmmcTimeoutError):
    """A hardened-socket retry budget or bounded wait expired.

    Raised instead of hanging when faults eat a record (or its ack)
    more times than the retransmission budget allows.
    """


@dataclass(frozen=True)
class SocketVariant:
    name: str
    automatic: bool
    staging_copy: bool


SOCKET_VARIANTS: Dict[str, SocketVariant] = {
    v.name: v
    for v in [
        SocketVariant("AU-2copy", automatic=True, staging_copy=True),
        SocketVariant("DU-1copy", automatic=False, staging_copy=False),
        SocketVariant("DU-2copy", automatic=False, staging_copy=True),
    ]
}


def _u32(value: int) -> bytes:
    return struct.pack("<I", value & 0xFFFFFFFF)


@dataclass
class _ConnRequest:
    client_node: int
    reply_port: int
    ring_export: int
    ctrl_export: int
    ring_bytes: int


@dataclass
class _ConnReply:
    ok: bool
    error: str = ""
    server_node: int = 0
    ring_export: int = 0
    ctrl_export: int = 0
    ring_bytes: int = 0


@dataclass
class _Fin:
    pass


class SocketLib:
    """Per-process socket library instance."""

    def __init__(
        self,
        system: ShrimpSystem,
        proc: UserProcess,
        variant: SocketVariant = SOCKET_VARIANTS["DU-1copy"],
        ring_bytes: int = 32768,
        endpoint: Optional[VmmcEndpoint] = None,
    ):
        self.system = system
        self.proc = proc
        self.variant = variant
        self.ring_bytes = ring_bytes
        self.ep = endpoint or attach(system, proc)
        self.ethernet = system.machine.ethernet

    # ------------------------------------------------------------------
    # Connection establishment
    # ------------------------------------------------------------------
    def listen(self, port: int) -> "Listener":
        """Bind a listening socket to ``port`` (Ethernet rendezvous)."""
        return Listener(self, port)

    def connect(self, node: int, port: int):
        """Active open to ``(node, port)``; returns a connected socket."""
        half = yield from _LocalHalf.create(self)
        reply_port = _ETH_REPLY_BASE + next(_reply_ports)
        request = _ConnRequest(
            client_node=self.proc.node.node_id,
            reply_port=reply_port,
            ring_export=half.ring_export.export_id,
            ctrl_export=half.ctrl_export.export_id,
            ring_bytes=self.ring_bytes,
        )
        self.ethernet.send(
            self.proc.node.node_id, node, _ETH_LISTEN_BASE + port, request
        )
        frame = yield self.ethernet.recv(self.proc.node.node_id, reply_port)
        reply: _ConnReply = frame.payload
        if not reply.ok:
            raise SocketError("connect to node %d port %d failed: %s"
                              % (node, port, reply.error))
        sock = ShrimpSocket(self, half, peer_node=reply.server_node,
                            eth_peer=(node, port))
        yield from sock._attach_peer(reply.server_node, reply.ring_export,
                                     reply.ctrl_export, reply.ring_bytes)
        return sock


class Listener:
    """A listening socket: accepts Ethernet connection requests."""

    def __init__(self, lib: SocketLib, port: int):
        self.lib = lib
        self.port = port
        self.accepted = 0

    def accept(self):
        """Block for one connection; returns the connected socket."""
        lib = self.lib
        frame = yield lib.ethernet.recv(
            lib.proc.node.node_id, _ETH_LISTEN_BASE + self.port
        )
        request: _ConnRequest = frame.payload
        half = yield from _LocalHalf.create(lib)
        reply = _ConnReply(
            ok=True,
            server_node=lib.proc.node.node_id,
            ring_export=half.ring_export.export_id,
            ctrl_export=half.ctrl_export.export_id,
            ring_bytes=lib.ring_bytes,
        )
        lib.ethernet.send(
            lib.proc.node.node_id, request.client_node, request.reply_port, reply
        )
        sock = ShrimpSocket(lib, half, peer_node=request.client_node,
                            eth_peer=(request.client_node, request.reply_port))
        yield from sock._attach_peer(
            request.client_node, request.ring_export, request.ctrl_export,
            request.ring_bytes,
        )
        self.accepted += 1
        return sock


class _LocalHalf:
    """The locally-exported half of a connection: in-ring + control page."""

    def __init__(self, lib, ring_vaddr, ctrl_vaddr, ring_export, ctrl_export):
        self.ring_vaddr = ring_vaddr
        self.ctrl_vaddr = ctrl_vaddr
        self.ring_export = ring_export
        self.ctrl_export = ctrl_export

    @classmethod
    def create(cls, lib: SocketLib):
        page = lib.proc.config.page_size
        ring_vaddr = lib.ep.alloc_buffer(lib.ring_bytes, cache_mode=CacheMode.WRITE_THROUGH)
        ctrl_vaddr = lib.ep.alloc_buffer(page, cache_mode=CacheMode.WRITE_THROUGH)
        ring_export = yield from lib.ep.export(ring_vaddr, lib.ring_bytes)
        ctrl_export = yield from lib.ep.export(ctrl_vaddr, page)
        return cls(lib, ring_vaddr, ctrl_vaddr, ring_export, ctrl_export)


class ShrimpSocket:
    """One endpoint of a connected stream socket."""

    def __init__(self, lib: SocketLib, half: _LocalHalf, peer_node: int, eth_peer):
        self.lib = lib
        self.proc = lib.proc
        self.ep = lib.ep
        self.variant = lib.variant
        self.peer_node = peer_node
        self.eth_peer = eth_peer
        self.half = half
        # Hardened mode: armed fault plan => CRC + bounded retransmission.
        self.hardened = self.proc.faults.enabled
        self._xmit_count = 0           # sender: transmissions issued
        self._xmit_seen = 0            # receiver: last peer xmit counter seen
        # Receive side (peer -> me).
        self.in_ring = RecordRing(lib.ring_bytes)
        self._partial = 0              # bytes of the current record already read
        self._fin_seen = False
        # Send side (me -> peer); sized after the handshake.
        self.out_ring: Optional[RecordRing] = None
        self.imp_ring = None
        self.imp_ctrl = None
        self.au_ring_out = 0
        self.au_ctrl_out = 0
        self.staging = 0
        self.send_closed = False
        self.closed = False
        self.bytes_sent = 0
        self.bytes_received = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _attach_peer(self, node: int, ring_export: int, ctrl_export: int,
                     ring_bytes: int):
        lib = self.lib
        page = self.proc.config.page_size
        self.out_ring = RecordRing(ring_bytes)
        self.imp_ring = yield from self.ep.import_buffer(node, ring_export)
        self.imp_ctrl = yield from self.ep.import_buffer(node, ctrl_export)
        self.au_ctrl_out = self.ep.alloc_buffer(page, cache_mode=CacheMode.WRITE_THROUGH)
        # Control words are single-burst writes: a short flush timer gets
        # them out promptly.
        yield from self.ep.bind(self.au_ctrl_out, self.imp_ctrl, combining=True,
                                timer_us=0.25)
        if self.variant.automatic:
            self.au_ring_out = self.ep.alloc_buffer(
                ring_bytes, cache_mode=CacheMode.WRITE_THROUGH
            )
            # Data-ring packets grow across the header write and the
            # payload copy; a long timer lets them combine (the counter
            # write that follows closes the packet anyway).
            yield from self.ep.bind(self.au_ring_out, self.imp_ring, combining=True,
                                    timer_us=8.0)
        staging_bytes = -(-(ring_bytes // 2 + RECORD_HEADER_BYTES + 8) // page) * page
        self.staging = self.ep.alloc_buffer(staging_bytes, cache_mode=CacheMode.WRITE_BACK)

    # ------------------------------------------------------------------
    # Send
    # ------------------------------------------------------------------
    def send(self, vaddr: int, nbytes: int):
        """Blocking send of exactly ``nbytes``; returns ``nbytes``.

        (BSD send() may send less; blocking sockets with cooperative
        receivers always drain fully, which is the behaviour programs
        rely on and the one modeled here.)
        """
        if self.send_closed or self.closed:
            raise SocketError("send on closed socket")
        costs = self.proc.config.costs
        span = None
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "sock.send", "send %dB" % nbytes, track=self.proc.trace_track,
                data={"bytes": nbytes},
            )
        try:
            yield from self.proc.compute(costs.socket_send_overhead)
            sent = 0
            max_record = self.out_ring.capacity // 4
            while sent < nbytes:
                yield from self._refresh_consumed()
                fit = self.out_ring.max_payload_fitting()
                if fit <= 0:
                    yield from self._wait_for_space()
                    continue
                chunk = min(nbytes - sent, fit, max_record)
                if self.hardened:
                    yield from self._send_record_hardened(vaddr + sent, chunk)
                else:
                    yield from self._send_record(vaddr + sent, chunk)
                sent += chunk
            self.bytes_sent += nbytes
        finally:
            # finally: fault-raised timeouts must not leak an open span.
            self.proc.tracer.end(span)
        return nbytes

    def _send_record(self, vaddr: int, payload: int):
        proc = self.proc
        ring = self.out_ring
        header_off = ring.offset_of(ring.produced)
        header, segments, produced = ring.place_record(payload)
        yield from self._write_record_data(vaddr, payload, header, header_off, segments)
        # Publish the new produced counter (control via AU, after data).
        yield from proc.compute(proc.config.costs.socket_space_update)
        yield from proc.write(self.au_ctrl_out + _PRODUCED_OFF, _u32(produced))

    def _send_record_hardened(self, vaddr: int, payload: int):
        """One record, reliably: CRC + retransmit until the peer acks.

        The hardened protocol is a synchronous rendezvous per record:
        the receiver's consumed counter reaching the new produced value
        *is* the ack (no extra wire words), so the ring is drained
        between records and a retransmission can blindly rewrite the
        same offsets.  Raises :class:`SocketTimeoutError` once the
        retry budget is exhausted.
        """
        proc = self.proc
        ring = self.out_ring
        header_off = ring.offset_of(ring.produced)
        header, segments, produced = ring.place_record(payload)
        body = yield from proc.read(vaddr, payload)      # checksum pass
        crc = crc32_of(header, body)
        target = _u32(produced)
        base_us = _RETRY_BASE_US + _RETRY_PER_BYTE_US * payload
        for attempt in range(MAX_XMIT):
            self._xmit_count += 1
            try:
                yield from proc.write(
                    self.au_ctrl_out + _CRC_OFF,
                    _u32(crc) + _u32(self._xmit_count),
                )
                yield from self._write_record_data(
                    vaddr, payload, header, header_off, segments
                )
                yield from proc.compute(proc.config.costs.socket_space_update)
                yield from proc.write(self.au_ctrl_out + _PRODUCED_OFF, _u32(produced))
            except VmmcTransferError:
                # The DU engine aborted this attempt; burn it and retry.
                continue
            acked = yield from bounded_poll(
                proc, self.half.ctrl_vaddr + _CONSUMED_OFF, 4,
                lambda data: data == target,
                attempt_timeout_us(base_us, attempt),
            )
            if acked is not None:
                ring.consumed = produced
                return
        raise SocketTimeoutError(
            "no ack for a %d-byte record after %d transmissions"
            % (payload, MAX_XMIT)
        )

    def _write_record_data(self, vaddr: int, payload: int, header: bytes,
                           header_off: int, segments):
        """Variant-specific header+payload placement for one record.

        Idempotent with respect to ring state — the hardened sender
        replays it verbatim on retransmission.
        """
        proc = self.proc
        word = proc.config.word_size
        if self.variant.automatic:
            yield from proc.write(self.au_ring_out + header_off, header)
            cursor = 0
            for seg in segments:
                take = min(seg.length, payload - cursor)
                if take > 0:
                    yield from proc.copy(vaddr + cursor, self.au_ring_out + seg.ring_offset, take)
                cursor += seg.length
        else:
            use_staging = self.variant.staging_copy or vaddr % word != 0
            if use_staging:
                # Marshal header+payload contiguously; one deliberate
                # update when the record does not wrap.
                padded = pad_word(payload)
                yield from proc.write(self.staging, header)
                yield from proc.copy(vaddr, self.staging + RECORD_HEADER_BYTES, payload)
                if len(segments) == 1:
                    yield from self.ep.send(
                        self.imp_ring, self.staging,
                        RECORD_HEADER_BYTES + padded, offset=header_off,
                    )
                else:
                    yield from self.ep.send(self.imp_ring, self.staging,
                                            RECORD_HEADER_BYTES, offset=header_off)
                    cursor = 0
                    for seg in segments:
                        yield from self.ep.send(
                            self.imp_ring,
                            self.staging + RECORD_HEADER_BYTES + cursor,
                            seg.length, offset=seg.ring_offset,
                        )
                        cursor += seg.length
            else:
                # Direct from user memory; whole words straight across,
                # the trailing partial word via the staging area.
                yield from proc.write(self.staging, header)
                yield from self.ep.send(self.imp_ring, self.staging,
                                        RECORD_HEADER_BYTES, offset=header_off)
                cursor = 0
                for seg in segments:
                    take = min(seg.length, max(0, payload - cursor))
                    whole = take - (take % word)
                    if whole > 0:
                        yield from self.ep.send(self.imp_ring, vaddr + cursor,
                                                whole, offset=seg.ring_offset)
                    if take > whole:
                        tail = take - whole
                        yield from proc.copy(vaddr + cursor + whole,
                                             self.staging + RECORD_HEADER_BYTES, tail)
                        yield from self.ep.send(
                            self.imp_ring, self.staging + RECORD_HEADER_BYTES,
                            pad_word(tail), offset=seg.ring_offset + whole,
                        )
                    cursor += seg.length

    def _refresh_consumed(self):
        data = yield from self.proc.read(self.half.ctrl_vaddr + _CONSUMED_OFF, 4)
        (consumed,) = struct.unpack("<I", data)
        if consumed > self.out_ring.consumed:
            self.out_ring.consumed = consumed

    def _wait_for_space(self):
        current = _u32(self.out_ring.consumed)
        yield from self.proc.poll(
            self.half.ctrl_vaddr + _CONSUMED_OFF, 4, lambda b: b != current
        )
        yield from self._refresh_consumed()

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------
    def recv(self, vaddr: int, max_bytes: int):
        """Blocking receive; returns the byte count (0 at EOF).

        Returns as soon as at least one byte is available, up to
        ``max_bytes`` — BSD semantics.
        """
        if self.closed:
            raise SocketError("recv on closed socket")
        if max_bytes <= 0:
            return 0
        costs = self.proc.config.costs
        span = None
        if self.proc.tracer.enabled:
            span = self.proc.tracer.begin(
                "sock.recv", "recv up to %dB" % max_bytes,
                track=self.proc.trace_track,
            )
        try:
            yield from self.proc.compute(costs.socket_recv_overhead)
            while True:
                yield from self._refresh_produced()
                if self.in_ring.used > 0:
                    break
                if self._fin_seen:
                    self.proc.tracer.end(span,
                                         data={"bytes": 0} if span else None)
                    return 0
                yield from self._wait_for_data()
            got = 0
            while got < max_bytes and self.in_ring.used > 0:
                got += yield from self._read_from_current_record(
                    vaddr + got, max_bytes - got)
            self.bytes_received += got
            self.proc.tracer.end(span, data={"bytes": got} if span else None)
            return got
        finally:
            # Fault-raised timeouts exit with the span still open; the
            # success paths above already closed it (no-op then).
            if span is not None and span.end is None:
                self.proc.tracer.end(span)

    def bytes_available(self):
        """Timed check: payload bytes readable right now without blocking.

        (Record headers and padding are accounted out; partial-record
        progress is included.)
        """
        yield from self._refresh_produced()
        ring = self.in_ring
        available = 0
        probe = RecordRing(ring.capacity)
        probe.produced = ring.produced
        probe.consumed = ring.consumed
        first = True
        while probe.used > 0:
            header = self.proc.node.memory  # untimed header peeks below
            raw = self.proc.peek(self.half.ring_vaddr + probe.next_header_offset(), 4)
            (payload,) = struct.unpack("<I", raw)
            available += payload - (self._partial if first else 0)
            first = False
            probe.consume_record(payload)
        return available

    def recv_nowait(self, vaddr: int, max_bytes: int):
        """Non-blocking receive: returns 0 immediately when no data is
        buffered (and the connection is still open)."""
        if self.closed:
            raise SocketError("recv on closed socket")
        yield from self._refresh_produced()
        if self.in_ring.used == 0:
            return 0
        got = 0
        while got < max_bytes and self.in_ring.used > 0:
            got += yield from self._read_from_current_record(vaddr + got, max_bytes - got)
        self.bytes_received += got
        return got

    def wait_readable(self):
        """Block until data (or EOF) is available — the select() shape.

        Returns True if payload is readable, False at EOF.
        """
        while True:
            yield from self._refresh_produced()
            if self.in_ring.used > 0:
                return True
            if self._fin_seen:
                return False
            yield from self._wait_for_data()

    def recv_exactly(self, vaddr: int, nbytes: int):
        """Loop recv until ``nbytes`` arrive (or EOF; returns count)."""
        got = 0
        while got < nbytes:
            step = yield from self.recv(vaddr + got, nbytes - got)
            if step == 0:
                break
            got += step
        return got

    def _read_from_current_record(self, vaddr: int, room: int):
        proc = self.proc
        ring = self.in_ring
        header = yield from proc.read(self.half.ring_vaddr + ring.next_header_offset(), 4)
        (payload,) = struct.unpack("<I", header)
        want = min(room, payload - self._partial)
        segments = ring.payload_segments(payload)
        # Walk to the partial offset, then copy out `want` bytes.
        skip = self._partial
        copied = 0
        for seg in segments:
            if copied >= want:
                break
            if skip >= seg.length:
                skip -= seg.length
                continue
            take = min(seg.length - skip, want - copied)
            yield from proc.copy(
                self.half.ring_vaddr + seg.ring_offset + skip, vaddr + copied, take
            )
            copied += take
            skip = 0
        self._partial += copied
        if self._partial >= payload:
            self._partial = 0
            consumed = ring.consume_record(payload)
            yield from proc.compute(proc.config.costs.socket_space_update)
            yield from proc.write(self.au_ctrl_out + _CONSUMED_OFF, _u32(consumed))
        return copied

    def _refresh_produced(self):
        if self.hardened:
            yield from self._refresh_produced_hardened()
            return
        data = yield from self.proc.read(self.half.ctrl_vaddr + _PRODUCED_OFF, 4)
        (produced,) = struct.unpack("<I", data)
        if produced > self.in_ring.produced:
            self.in_ring.produced = produced
        fin = self.proc.peek(self.half.ctrl_vaddr + _FIN_OFF, 4)
        if fin != b"\x00\x00\x00\x00":
            self._fin_seen = True

    def _refresh_produced_hardened(self):
        """Validate before accepting: reject garbage instead of trusting it.

        A record is accepted only when the produced delta spans exactly
        one well-formed record whose CRC (over header + payload) matches
        the sender's — anything else (corrupted counter, stale or
        corrupted data, a delayed packet that has not landed yet) leaves
        the ring state untouched, and the sender's retransmission
        repairs it.  A bumped xmit counter also replays our consumed
        ack, since the retransmission may mean our ack was lost.
        """
        proc = self.proc
        ring = self.in_ring
        data = yield from proc.read(self.half.ctrl_vaddr + _PRODUCED_OFF, 4)
        (produced,) = struct.unpack("<I", data)
        crc_raw = yield from proc.read(self.half.ctrl_vaddr + _CRC_OFF, 8)
        crc, xmit = struct.unpack("<II", crc_raw)
        fin = proc.peek(self.half.ctrl_vaddr + _FIN_OFF, 4)
        if fin != b"\x00\x00\x00\x00":
            self._fin_seen = True
        if produced != ring.produced:
            delta = produced - ring.produced
            if 0 < delta <= ring.capacity:
                header = yield from proc.read(
                    self.half.ring_vaddr + ring.next_header_offset(),
                    RECORD_HEADER_BYTES,
                )
                (payload,) = struct.unpack("<I", header)
                if 0 <= payload <= ring.capacity and record_bytes(payload) == delta:
                    # Checksum pass over the (not yet consumed) payload.
                    body = bytearray()
                    remaining = payload
                    probe = RecordRing(ring.capacity)
                    probe.produced = produced
                    probe.consumed = ring.consumed
                    for seg in probe.payload_segments(payload):
                        take = min(seg.length, remaining)
                        if take <= 0:
                            break
                        piece = yield from proc.read(
                            self.half.ring_vaddr + seg.ring_offset, take
                        )
                        body += piece
                        remaining -= take
                    if crc32_of(header, bytes(body)) == crc:
                        ring.produced = produced
        if xmit != self._xmit_seen:
            # The sender retransmitted: our ack may have been lost or
            # corrupted, so replay it.  Harmless when it did arrive
            # (same value rewritten), and never a false ack — the
            # sender waits for its exact target counter.
            self._xmit_seen = xmit
            yield from proc.write(
                self.au_ctrl_out + _CONSUMED_OFF, _u32(ring.consumed)
            )

    def _wait_for_data(self):
        """Sleep until the produced counter moves or the FIN flag lands.

        The polled range spans both control words so either write wakes
        the receiver (a watch on the counter alone would sleep through
        a close).
        """
        if self.hardened:
            # Watch the whole control window (counters + CRC + xmit):
            # after rejecting a garbage record the produced word alone
            # would still look "changed" and busy-spin, but a
            # retransmission always bumps the xmit word.  Bounded so a
            # dead sender surfaces as a typed error, not a hang.
            window = _CRC_OFF + 8
            snapshot = self.proc.peek(self.half.ctrl_vaddr, window)
            woke = yield from bounded_poll(
                self.proc, self.half.ctrl_vaddr, window,
                lambda data: data != snapshot, _RECV_IDLE_US,
            )
            if woke is None:
                raise SocketTimeoutError(
                    "no data from peer node %d within %.0f us"
                    % (self.peer_node, _RECV_IDLE_US)
                )
            return
        current = _u32(self.in_ring.produced)

        def data_or_fin(window: bytes) -> bool:
            produced = window[:4]
            fin = window[_FIN_OFF : _FIN_OFF + 4]
            return produced != current or fin != b"\x00\x00\x00\x00"

        yield from self.proc.poll(
            self.half.ctrl_vaddr + _PRODUCED_OFF, _FIN_OFF + 4, data_or_fin
        )

    # ------------------------------------------------------------------
    # Shutdown / close
    # ------------------------------------------------------------------
    def shutdown_write(self):
        """Half-close: no more sends; the peer sees EOF after draining."""
        if self.send_closed:
            return
        self.send_closed = True
        yield from self.proc.write(self.au_ctrl_out + _FIN_OFF, _u32(1))
        if self.hardened:
            # The FIN flag is idempotent and unacknowledged, so blind
            # retransmissions (spaced out to dodge a transient fault
            # window) cover a dropped packet.
            for gap_us in (50.0, 200.0):
                yield from self.proc.compute(gap_us)
                yield from self.proc.write(self.au_ctrl_out + _FIN_OFF, _u32(1))
        # The held-open internet socket also learns about the close.
        node, port = self.eth_peer
        self.lib.ethernet.send(self.proc.node.node_id, node, port, _Fin())

    def close(self):
        """Full close: half-close the write side and release the socket."""
        if not self.send_closed:
            yield from self.shutdown_write()
        self.closed = True
