"""Circular-buffer bookkeeping for the stream sockets library.

'The sockets library uses a straightforward implementation of circular
buffers in order to manage incoming and outgoing data.'  Sockets and
VRPC use circular buffers (rather than NX's slot pool) because their
interfaces 'require that the receiver consume messages in the order
they were sent' (Section 6).

The ring carries *records*: a 4-byte length header followed by the
payload padded to a word boundary.  Records keep every deliberate-update
destination word-aligned regardless of payload sizes — the alignment
restriction workaround — while the byte-exact stream position is
recovered from the length headers.  Control info is two monotonic
counters (produced / consumed record-bytes), exchanged via automatic
update; the produced counter is written after the data, so in-order
delivery makes seeing it imply the data is in place.

This module is pure bookkeeping (no simulation time); both endpoints
drive it with their own timed reads/writes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["RecordRing", "RECORD_HEADER_BYTES", "pad_word"]

RECORD_HEADER_BYTES = 4


def pad_word(nbytes: int, word: int = 4) -> int:
    """Round up to the word size."""
    return (nbytes + word - 1) & ~(word - 1)


def record_bytes(payload: int) -> int:
    """Ring bytes one record of ``payload`` bytes occupies."""
    return RECORD_HEADER_BYTES + pad_word(payload)


@dataclass
class Segment:
    """One contiguous piece of a record placement (wrap splits it)."""

    ring_offset: int
    length: int


class RecordRing:
    """Position arithmetic for one direction's record ring.

    ``produced`` / ``consumed`` are monotonically increasing byte
    counters over record bytes (headers + padded payloads).  The writer
    advances ``produced``; the reader advances ``consumed``; both fit in
    the 32-bit counters the control page carries (wraparound-safe
    comparison is unnecessary at simulated message volumes; an assert
    guards the assumption).
    """

    def __init__(self, capacity: int, word: int = 4):
        if capacity % word != 0 or capacity <= 2 * RECORD_HEADER_BYTES:
            raise ValueError("ring capacity must be a reasonable word multiple")
        self.capacity = capacity
        self.word = word
        self.produced = 0
        self.consumed = 0

    # -- space accounting --------------------------------------------------
    @property
    def used(self) -> int:
        used = self.produced - self.consumed
        assert 0 <= used <= self.capacity, "ring counters out of sync"
        return used

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def can_write(self, payload: int) -> bool:
        """Does a record of this payload fit right now?"""
        return record_bytes(payload) <= self.free

    def max_payload_fitting(self) -> int:
        """Largest payload a single record could carry right now."""
        room = self.free - RECORD_HEADER_BYTES
        return max(0, room - (room % self.word))

    # -- writer side --------------------------------------------------------
    def place_record(self, payload: int) -> "Tuple[bytes, List[Segment], int]":
        """Plan one record write.

        Returns (header bytes, payload segments, new produced counter).
        Segments are ring placements for the *padded* payload; the
        header's own placement is ``ring_offset(produced)``.  Caller
        writes header + payload at those offsets, then publishes the
        returned counter via the control page.
        """
        total = record_bytes(payload)
        if total > self.free:
            raise ValueError("record of %d payload bytes does not fit" % payload)
        header = struct.pack("<I", payload)
        header_off = self.offset_of(self.produced)
        # Header never wraps: capacity and record sizes are word
        # multiples, so headers land word-aligned with >= 4 bytes of room.
        assert header_off + RECORD_HEADER_BYTES <= self.capacity
        segments = self._segments(self.produced + RECORD_HEADER_BYTES, pad_word(payload))
        self.produced += total
        return header, segments, self.produced

    # -- reader side -----------------------------------------------------------
    def next_header_offset(self) -> int:
        """Ring offset of the next unconsumed record's header."""
        return self.offset_of(self.consumed)

    def payload_segments(self, payload: int) -> List[Segment]:
        """Ring placements of the current record's payload."""
        return self._segments(self.consumed + RECORD_HEADER_BYTES, payload)

    def consume_record(self, payload: int) -> int:
        """Free the current record; returns the new consumed counter."""
        self.consumed += record_bytes(payload)
        assert self.consumed <= self.produced
        return self.consumed

    # -- shared ----------------------------------------------------------------
    def offset_of(self, counter: int) -> int:
        """Ring offset a byte counter maps to."""
        return counter % self.capacity

    def _segments(self, counter: int, length: int) -> List[Segment]:
        segments: List[Segment] = []
        while length > 0:
            offset = self.offset_of(counter)
            piece = min(length, self.capacity - offset)
            segments.append(Segment(offset, piece))
            counter += piece
            length -= piece
        return segments
