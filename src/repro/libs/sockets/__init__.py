"""Stream sockets compatibility library (system S16 in DESIGN.md)."""

from .api import (
    Listener,
    ShrimpSocket,
    SocketError,
    SocketLib,
    SocketTimeoutError,
    SocketVariant,
    SOCKET_VARIANTS,
)
from .circular import RecordRing, pad_word

__all__ = [
    "Listener",
    "RecordRing",
    "ShrimpSocket",
    "SocketError",
    "SocketLib",
    "SocketTimeoutError",
    "SocketVariant",
    "SOCKET_VARIANTS",
    "pad_word",
]
