"""Stub generator of the specialized SHRIMP RPC.

Reads an interface definition (see :mod:`.idl`) and emits Python source
for a client stub class and a server skeleton class — 'a stub generator
that reads an interface definition file and generates code to marshal
and unmarshal complex data types'.

The generated client marshals every procedure's arguments at their
fixed slot offsets with straight-line packing, emits them as one
ascending store stream (which the combining hardware turns into as few
packets as possible), and reads back only the return slot and the
OUT/INOUT slots.  Alongside each synchronous method the client also
gets a ``<name>_begin`` method — the pipelined submit half, returning
an :class:`~.runtime.SrpcTicket` to redeem with
:meth:`~.runtime.SrpcClientBase.finish` — and a shared ``_decode_<id>``
reply decoder both paths use.  The generated server skeleton decodes
IN parameters eagerly and hands OUT/INOUT parameters to the
implementation as by-reference :class:`~.runtime.ParamRef` objects.

Use :func:`generate_stubs` to get the source text (write it to a file,
inspect it, check it in) or :func:`compile_stubs` to exec it directly.
"""

from __future__ import annotations

from typing import Tuple, Type

from .idl import IdlType, Interface, Param, Procedure, parse_idl

__all__ = ["generate_stubs", "compile_stubs"]

_SCALARS = ("int", "uint", "float", "double")


def _marshal_lines(proc: Procedure) -> list:
    """Source lines building a procedure's ``_writes`` store list."""
    lines = ["        _writes = []"]
    for param in (p for p in proc.params if p.is_in):
        if param.type.kind in _SCALARS:
            lines.append(
                "        _writes.append((%d, pack_scalar(%r, %s)))"
                % (param.offset, param.type.kind, param.name)
            )
        else:
            lines.append(
                "        _writes.append((%d, encode_value(self.IDL.procedure(%r)"
                ".params[%d].type, %s)))"
                % (param.offset, proc.name, proc.params.index(param), param.name)
            )
    return lines


def _reply_shape(proc: Procedure):
    """(ret_bytes, out_reads, read_exprs) of a procedure's reply."""
    ret_bytes = 0 if proc.return_type.kind == "void" else proc.return_type.slot_bytes
    out_reads = []
    read_exprs = []
    if ret_bytes:
        read_exprs.append(
            "decode_value(self.IDL.procedure(%r).return_type, _raw[0])" % proc.name
        )
    for param in (p for p in proc.params if p.is_out):
        out_reads.append((param.offset, param.type.slot_bytes, param.type.is_variable))
        read_exprs.append(
            "decode_value(self.IDL.procedure(%r).params[%d].type, _raw[%d])"
            % (proc.name, proc.params.index(param),
               (1 if ret_bytes else 0) + len(out_reads) - 1)
        )
    return ret_bytes, out_reads, read_exprs


def _signature(proc: Procedure) -> str:
    return ", ".join(
        "%s %s %s" % (p.direction, p.type.describe(), p.name) for p in proc.params
    )


def _client_method(proc: Procedure) -> str:
    """Source of one generated client stub method (synchronous call)."""
    args = ", ".join(p.name for p in proc.params if p.is_in)
    lines = []
    lines.append("    def %s(self%s):" % (proc.name, ", " + args if args else ""))
    lines.append('        """%s %s(%s)"""'
                 % (proc.return_type.describe(), proc.name, _signature(proc)))
    lines.extend(_marshal_lines(proc))
    ret_bytes, out_reads, _ = _reply_shape(proc)
    lines.append("        _raw = yield from self._invoke(%d, _writes, %d, %r)"
                 % (proc.proc_id, ret_bytes, out_reads))
    lines.append("        return self._decode_%d(_raw)" % proc.proc_id)
    return "\n".join(lines)


def _client_begin_method(proc: Procedure) -> str:
    """Source of one generated pipelined-submit stub method."""
    args = ", ".join(p.name for p in proc.params if p.is_in)
    lines = []
    lines.append("    def %s_begin(self%s):"
                 % (proc.name, ", " + args if args else ""))
    lines.append('        """Pipelined %s(%s): submit without waiting; returns'
                 % (proc.name, _signature(proc)))
    lines.append("        an SrpcTicket to redeem with finish().\"\"\"")
    lines.extend(_marshal_lines(proc))
    ret_bytes, out_reads, _ = _reply_shape(proc)
    lines.append("        _t = yield from self._submit(%d, _writes, %d, %r)"
                 % (proc.proc_id, ret_bytes, out_reads))
    lines.append("        return _t")
    return "\n".join(lines)


def _client_decode_method(proc: Procedure) -> str:
    """Source of one generated reply decoder (shared by call paths)."""
    _, _, read_exprs = _reply_shape(proc)
    lines = []
    lines.append("    def _decode_%d(self, _raw):  # %s"
                 % (proc.proc_id, proc.name))
    if not read_exprs:
        lines.append("        return None")
    elif len(read_exprs) == 1:
        lines.append("        return %s" % read_exprs[0])
    else:
        lines.append("        return (%s)" % ", ".join(read_exprs))
    return "\n".join(lines)


def _server_dispatch(proc: Procedure) -> str:
    """Source of one generated server dispatch method."""
    lines = []
    lines.append("    def _dispatch_%d(self):  # %s" % (proc.proc_id, proc.name))
    call_args = []
    # Contiguous fixed-size IN parameters are read as one span; variable
    # ones via their length word (ParamRef.get reads exactly that much).
    fixed_in = [p for p in proc.params
                if p.direction == "in" and not p.type.is_variable]
    if fixed_in:
        start = min(p.offset for p in fixed_in)
        end = max(p.offset + p.type.slot_bytes for p in fixed_in)
        lines.append("        _span = yield from self._read(%d, %d)" % (start, end - start))
        for param in fixed_in:
            rel = param.offset - start
            lines.append(
                "        %s = decode_value(self.IDL.procedure(%r).params[%d].type, "
                "_span[%d:%d])"
                % (param.name, proc.name, proc.params.index(param),
                   rel, rel + param.type.slot_bytes)
            )
    for param in proc.params:
        if param.direction == "in" and param.type.is_variable:
            lines.append(
                "        %s = yield from self._ref(%r, %r).get()"
                % (param.name, proc.name, param.name)
            )
    for param in proc.params:
        if param.is_out:
            lines.append(
                "        %s = self._ref(%r, %r)" % (param.name, proc.name, param.name)
            )
        call_args.append(param.name)
    call = "self.impl.%s(%s)" % (proc.name, ", ".join(call_args))
    if proc.return_type.kind == "void":
        lines.append("        yield from %s" % call)
        lines.append("        return b''")
    else:
        lines.append("        _ret = yield from %s" % call)
        lines.append(
            "        return encode_value(self.IDL.procedure(%r).return_type, _ret)"
            % proc.name
        )
    return "\n".join(lines)


def generate_stubs(idl_text: str) -> str:
    """Generate the stub module's Python source for an interface."""
    interface = parse_idl(idl_text)  # validate before embedding
    name = interface.name
    parts = [
        '"""Generated by repro.libs.shrimp_rpc.stubgen for interface '
        "%s v%d — do not edit.\"\"\"" % (name, interface.version),
        "",
        "import struct",
        "",
        "from repro.libs.shrimp_rpc.idl import parse_idl",
        "from repro.libs.shrimp_rpc.runtime import (",
        "    ParamRef,",
        "    SrpcClientBase,",
        "    SrpcServerBase,",
        "    decode_value,",
        "    encode_value,",
        "    pack_scalar,",
        "    unpack_scalar,",
        ")",
        "",
        "_IDL = parse_idl('''%s''')" % idl_text,
        "",
        "",
        "class %sClient(SrpcClientBase):" % name,
        "    IDL = _IDL",
        "",
    ]
    parts.extend(_client_method(proc) + "\n" for proc in interface.procedures)
    parts.extend(_client_begin_method(proc) + "\n" for proc in interface.procedures)
    parts.extend(_client_decode_method(proc) + "\n" for proc in interface.procedures)
    parts.extend([
        "",
        "class %sServer(SrpcServerBase):" % name,
        "    IDL = _IDL",
        "",
    ])
    parts.extend(_server_dispatch(proc) + "\n" for proc in interface.procedures)
    return "\n".join(parts)


def compile_stubs(idl_text: str) -> Tuple[Type, Type, Interface]:
    """Generate and exec the stubs; returns (ClientClass, ServerClass, idl)."""
    source = generate_stubs(idl_text)
    namespace: dict = {}
    exec(compile(source, "<shrimp-rpc-stubs>", "exec"), namespace)
    interface = namespace["_IDL"]
    client_cls = namespace["%sClient" % interface.name]
    server_cls = namespace["%sServer" % interface.name]
    return client_cls, server_cls, interface
