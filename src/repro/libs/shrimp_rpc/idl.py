"""Interface definition language of the specialized SHRIMP RPC.

'SHRIMP RPC is not compatible with any existing RPC system, but it is a
real RPC system, with a stub generator that reads an interface
definition file and generates code to marshal and unmarshal complex
data types.'

The language (one construct per line, C-flavoured):

    program Calc version 2 {
        int add(in int a, in int b);
        void scale(inout double vec[4], in double factor);
        opaque<256> transform(in opaque<256> data);
        string<64> greet(in string<32> name);
    }

Types: ``int``, ``uint``, ``float``, ``double``, ``void`` (returns only),
fixed arrays ``T[N]`` of scalars, fixed opaque ``opaque[N]``, bounded
variable opaque ``opaque<N>`` and ``string<N>``.  Parameter directions
are ``in``, ``out``, ``inout``.

Parsing produces a typed model with *fixed slot offsets* for every
parameter — what lets the generated stubs marshal with straight-line
stores and the runtime place the flag word immediately after the
argument area (Section 5's buffer layout).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["IdlError", "IdlType", "Param", "Procedure", "Interface", "parse_idl"]

_SCALARS = {"int": 4, "uint": 4, "float": 4, "double": 8}
_DIRECTIONS = ("in", "out", "inout")


class IdlError(Exception):
    """Syntax or semantic error in an interface definition."""


def _pad4(n: int) -> int:
    return (n + 3) & ~3


@dataclass(frozen=True)
class IdlType:
    """A resolved IDL type.

    ``kind`` is one of scalar names, "array", "opaque_fixed",
    "opaque_var", "string", "void".  ``bound`` is the element count /
    byte bound; ``element`` the scalar element type of arrays.
    """

    kind: str
    bound: int = 0
    element: str = ""

    @property
    def slot_bytes(self) -> int:
        """Fixed communication-buffer bytes reserved for this type."""
        if self.kind in _SCALARS:
            return _SCALARS[self.kind]
        if self.kind == "array":
            return self.bound * _SCALARS[self.element]
        if self.kind == "opaque_fixed":
            return _pad4(self.bound)
        if self.kind in ("opaque_var", "string"):
            return 4 + _pad4(self.bound)  # length word + bounded payload
        if self.kind == "void":
            return 0
        raise IdlError("unknown type kind %r" % self.kind)

    @property
    def is_variable(self) -> bool:
        return self.kind in ("opaque_var", "string")

    def describe(self) -> str:
        """The type as IDL source text."""
        if self.kind in _SCALARS or self.kind == "void":
            return self.kind
        if self.kind == "array":
            return "%s[%d]" % (self.element, self.bound)
        if self.kind == "opaque_fixed":
            return "opaque[%d]" % self.bound
        if self.kind == "opaque_var":
            return "opaque<%d>" % self.bound
        return "string<%d>" % self.bound


@dataclass
class Param:
    name: str
    type: IdlType
    direction: str
    offset: int = 0  # fixed slot offset within the argument area

    @property
    def is_in(self) -> bool:
        return self.direction in ("in", "inout")

    @property
    def is_out(self) -> bool:
        return self.direction in ("out", "inout")


@dataclass
class Procedure:
    name: str
    proc_id: int
    return_type: IdlType
    params: List[Param]
    args_bytes: int = 0       # argument area bytes (params only)


@dataclass
class Interface:
    name: str
    version: int
    procedures: List[Procedure]

    @property
    def args_area_bytes(self) -> int:
        """The binding's fixed argument area: large enough for every
        procedure, so the call flag sits 'in the same place for all
        calls that use the same binding' — right after it."""
        return max((p.args_bytes for p in self.procedures), default=0)

    @property
    def ret_area_bytes(self) -> int:
        """Fixed result area (after the call word, before the return
        word) sized for the largest return value."""
        return max((p.return_type.slot_bytes for p in self.procedures), default=0)

    def procedure(self, name: str) -> Procedure:
        """Look a procedure up by name."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError("no procedure %r in interface %s" % (name, self.name))

    def by_id(self, proc_id: int) -> Procedure:
        """Look a procedure up by its wire id."""
        for proc in self.procedures:
            if proc.proc_id == proc_id:
                return proc
        raise KeyError("no procedure id %d in interface %s" % (proc_id, self.name))


_TYPE_RE = re.compile(
    r"^(?:(?P<scalar>int|uint|float|double|void)"
    r"|opaque\[(?P<ofix>\d+)\]"
    r"|opaque<(?P<ovar>\d+)>"
    r"|string<(?P<sbound>\d+)>"
    r"|(?P<elem>int|uint|float|double)\[(?P<count>\d+)\])$"
)


def _parse_type(text: str, where: str) -> IdlType:
    match = _TYPE_RE.match(text.strip())
    if match is None:
        raise IdlError("bad type %r in %s" % (text, where))
    if match.group("scalar"):
        return IdlType(match.group("scalar"))
    if match.group("ofix") is not None:
        bound = int(match.group("ofix"))
        if bound <= 0:
            raise IdlError("zero-size opaque in %s" % where)
        return IdlType("opaque_fixed", bound)
    if match.group("ovar") is not None:
        return IdlType("opaque_var", int(match.group("ovar")))
    if match.group("sbound") is not None:
        return IdlType("string", int(match.group("sbound")))
    count = int(match.group("count"))
    if count <= 0:
        raise IdlError("zero-length array in %s" % where)
    return IdlType("array", count, match.group("elem"))


_PROGRAM_RE = re.compile(r"^\s*program\s+(\w+)\s+version\s+(\d+)\s*\{\s*$")
_PROC_RE = re.compile(r"^\s*(?P<ret>[\w<>\[\]]+)\s+(?P<name>\w+)\s*\((?P<params>.*)\)\s*;\s*$")
_PARAM_RE = re.compile(r"^\s*(?P<dir>in|out|inout)\s+(?P<type>[\w<>\[\]]+?)\s+(?P<name>\w+?)"
                       r"(?P<suffix>(?:\[\d+\]|<\d+>)?)\s*$")


def parse_idl(text: str) -> Interface:
    """Parse an interface definition; returns the typed model."""
    lines = [line.split("//")[0].rstrip() for line in text.splitlines()]
    lines = [line for line in lines if line.strip()]
    if not lines:
        raise IdlError("empty interface definition")
    header = _PROGRAM_RE.match(lines[0])
    if header is None:
        raise IdlError("expected 'program <name> version <n> {', got %r" % lines[0])
    name, version = header.group(1), int(header.group(2))
    if lines[-1].strip() != "}":
        raise IdlError("missing closing '}'")

    procedures: List[Procedure] = []
    seen = set()
    for proc_id, line in enumerate(lines[1:-1], start=1):
        match = _PROC_RE.match(line)
        if match is None:
            raise IdlError("bad procedure declaration: %r" % line)
        proc_name = match.group("name")
        if proc_name in seen:
            raise IdlError("duplicate procedure %r" % proc_name)
        seen.add(proc_name)
        return_type = _parse_type(match.group("ret"), proc_name)
        params: List[Param] = []
        params_text = match.group("params").strip()
        if params_text:
            for piece in params_text.split(","):
                pm = _PARAM_RE.match(piece)
                if pm is None:
                    raise IdlError("bad parameter %r in %s" % (piece, proc_name))
                # Array/bound suffix may be attached to the name
                # (C style: 'double vec[4]') or the type.
                type_text = pm.group("type") + (pm.group("suffix") or "")
                ptype = _parse_type(type_text, proc_name)
                if ptype.kind == "void":
                    raise IdlError("void parameter in %s" % proc_name)
                params.append(Param(pm.group("name"), ptype, pm.group("dir")))
        # Fixed slot layout for the parameters.
        offset = 0
        for param in params:
            param.offset = offset
            offset += param.type.slot_bytes
        procedure = Procedure(proc_name, proc_id, return_type, params,
                              args_bytes=offset)
        procedures.append(procedure)
    if not procedures:
        raise IdlError("interface %s declares no procedures" % name)
    if len(procedures) > 0xFFFF:
        raise IdlError("too many procedures")
    return Interface(name, version, procedures)
