"""Specialized (non-compatible) SHRIMP RPC (system S17 in DESIGN.md):
IDL parser, stub generator, and URPC-style runtime."""

from .idl import IdlError, IdlType, Interface, Param, Procedure, parse_idl
from .runtime import ParamRef, SrpcClientBase, SrpcError, SrpcServerBase, SrpcTimeoutError
from .stubgen import compile_stubs, generate_stubs

__all__ = [
    "IdlError",
    "IdlType",
    "Interface",
    "Param",
    "ParamRef",
    "Procedure",
    "SrpcClientBase",
    "SrpcError",
    "SrpcServerBase",
    "SrpcTimeoutError",
    "compile_stubs",
    "generate_stubs",
    "parse_idl",
]
