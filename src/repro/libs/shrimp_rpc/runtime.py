"""Runtime of the specialized SHRIMP RPC (Section 5).

Design per the paper (close to Bershad's URPC): each binding consists of
one receive buffer on each side with bidirectional import-export
mappings (and automatic-update bindings) between them.

Buffer layout, identical on both sides:

    [argument/result area : frame_bytes][call word][return word]

'The buffers are laid out so that the flag is immediately after the
data, and so that the flag is in the same place for all calls that use
the same binding.'  The client marshals arguments with consecutive
stores and writes the call word; for the largest procedure the whole
thing combines into a single packet, and a null call is literally one
word.  OUT and INOUT parameters are passed to the server procedure *by
reference* — pointers into the server's communication buffer — so
whatever the procedure writes propagates back to the client by
automatic update, overlapped with the server's computation; an INOUT
the server never writes costs nothing on the return path.

**Multi-call pipelining** (docs/PROTOCOLS.md "Pipelined SHRIMP RPC"):
a binding created with ``window=W > 1`` replicates the whole buffer
layout into W consecutive *frames* of identical stride.  Call ``seq``
occupies frame ``(seq - 1) % W``; the client keeps up to W calls in
flight (``*_begin`` stub methods return a :class:`SrpcTicket`,
``finish`` matches the reply by sequence number, in any order), while
the server serves strictly in sequence order — requests travel the
same AU binding and arrive in issue order, so per-binding FIFO is
preserved and the reply for seq *n* can never overtake *n - 1*.  With
``window=1`` (the default) the layout and every timed operation are
bit-identical to the unpipelined protocol, which the zero-regression
goldens pin.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...kernel.system import ShrimpSystem
from ...vmmc import VmmcEndpoint, VmmcTimeoutError, attach
from ..recovery import MAX_XMIT, attempt_timeout_us, bounded_poll, crc32_of
from .idl import IdlType, Interface, Param

__all__ = ["SrpcError", "SrpcTimeoutError", "SrpcClientBase", "SrpcServerBase",
           "SrpcTicket", "ParamRef", "pack_scalar", "unpack_scalar"]

_ETH_SRPC_BASE = 100000
_ETH_REPLY_BASE = 120000
_reply_ports = itertools.count(1)

_STATUS_OK = 0
_STATUS_NO_PROC = 1

# How promptly the combining timer flushes an RPC buffer's tail packet.
# Short: the stubs coalesce each call's stores into single bursts.
_SRPC_FLUSH_TIMER = 0.10

# Hardened-protocol knobs (docs/FAULTS.md).  Under an armed fault plan
# each binding grows four reserved words past the return word —
# [call_xmit][call_crc][ret_xmit][ret_crc] — and both sides retransmit
# full buffer images until the peer's CRC check passes.
_HARDENED_EXT_BYTES = 16

# Causal-tracing extension (docs/OBSERVABILITY.md "Causal traces").
# When the machine-wide tracer is enabled at binding construction, each
# frame grows two words — [trace_id][parent_sid] — written by the
# client before the call word so the server can link its serve span to
# the client's call span.  Tracing off keeps the layout byte-identical.
_TRACE_EXT_BYTES = 8
_TRACE_EXT = struct.Struct("<II")


def _tag_span(span, ctx, cross: bool = False) -> None:
    """Link an open span under trace context ``ctx`` (no-ops on None)."""
    if span is not None and ctx is not None and isinstance(span.data, dict):
        span.data["tid"] = ctx[0]
        span.data["xparent" if cross else "cparent"] = ctx[1]
_RETRY_BASE_US = 400.0
_RETRY_PER_BYTE_US = 0.1
_SERVE_IDLE_US = 1_000_000.0

_SCALAR_CODES = {"int": "<i", "uint": "<I", "float": "<f", "double": "<d"}


class SrpcError(Exception):
    """Binding failure or protocol violation."""


class SrpcTimeoutError(SrpcError, VmmcTimeoutError):
    """A hardened SHRIMP RPC wait expired: the client's retransmission
    budget ran out, or the server's idle bound passed with no call."""


def pack_scalar(kind: str, value) -> bytes:
    """Encode one scalar in the wire byte order."""
    return struct.pack(_SCALAR_CODES[kind], value)


def unpack_scalar(kind: str, raw: bytes):
    """Decode one scalar from slot bytes."""
    return struct.unpack(_SCALAR_CODES[kind], raw[: struct.calcsize(_SCALAR_CODES[kind])])[0]


def encode_value(idltype: IdlType, value) -> bytes:
    """Marshal one value into its slot representation (used bytes only)."""
    kind = idltype.kind
    if kind in _SCALAR_CODES:
        return pack_scalar(kind, value)
    if kind == "array":
        if len(value) != idltype.bound:
            raise SrpcError("array needs %d elements, got %d" % (idltype.bound, len(value)))
        return struct.pack("<%d%s" % (idltype.bound, _SCALAR_CODES[idltype.element][1]), *value)
    if kind == "opaque_fixed":
        if len(value) != idltype.bound:
            raise SrpcError("fixed opaque needs %d bytes, got %d" % (idltype.bound, len(value)))
        return bytes(value) + b"\x00" * (-len(value) % 4)
    if kind in ("opaque_var", "string"):
        data = value.encode("utf-8") if kind == "string" else bytes(value)
        if len(data) > idltype.bound:
            raise SrpcError("value of %d bytes exceeds bound %d" % (len(data), idltype.bound))
        return struct.pack("<I", len(data)) + data + b"\x00" * (-len(data) % 4)
    raise SrpcError("cannot encode %s" % idltype.describe())


def decode_value(idltype: IdlType, raw: bytes):
    """Unmarshal one value from its slot bytes."""
    kind = idltype.kind
    if kind in _SCALAR_CODES:
        return unpack_scalar(kind, raw)
    if kind == "array":
        return list(struct.unpack_from(
            "<%d%s" % (idltype.bound, _SCALAR_CODES[idltype.element][1]), raw
        ))
    if kind == "opaque_fixed":
        return bytes(raw[: idltype.bound])
    if kind in ("opaque_var", "string"):
        (length,) = struct.unpack_from("<I", raw)
        if length > idltype.bound:
            raise SrpcError("corrupt length %d > bound %d" % (length, idltype.bound))
        data = bytes(raw[4 : 4 + length])
        return data.decode("utf-8") if kind == "string" else data
    raise SrpcError("cannot decode %s" % idltype.describe())


@dataclass
class _SrpcBindRequest:
    interface: str
    version: int
    client_node: int
    reply_port: int
    buffer_export: int


@dataclass
class _SrpcBindReply:
    ok: bool
    error: str = ""
    server_node: int = 0
    buffer_export: int = 0


class _SrpcEndpointBase:
    """Shared binding machinery: the mirrored buffer pair.

    ``window`` is the multi-call pipelining depth: the buffer holds
    that many identical frames, and up to that many calls may be in
    flight on the binding at once.  Both sides of a binding must agree
    on the window (the workload plumbing guarantees it); ``window=1``
    reproduces the unpipelined single-frame protocol exactly.
    """

    IDL: Interface  # installed by the stub generator on subclasses

    def __init__(self, system: ShrimpSystem, proc: UserProcess,
                 endpoint: Optional[VmmcEndpoint] = None, window: int = 1):
        if window < 1 or window > 64:
            raise SrpcError("pipeline window must be in [1, 64], got %d"
                            % window)
        self.system = system
        self.proc = proc
        self.ep = endpoint or attach(system, proc)
        self.ethernet = system.machine.ethernet
        interface = self.IDL
        # Frame layout: [args area][call word][ret area][return word].
        # Marshaled arguments run right up to the call word, and return
        # values right up to the return word, so each side's stores form
        # one ascending stream the combining hardware packs together.
        self.call_word_off = interface.args_area_bytes
        self.ret_off = self.call_word_off + 4
        self.return_word_off = self.ret_off + interface.ret_area_bytes
        # Hardened bindings reserve the CRC/xmit words after the return
        # word; both sides derive the flag from the same armed fault
        # plan, so the layouts always agree.
        self.hardened = proc.faults.enabled
        self.hx_off = self.return_word_off + 4
        # Traced bindings likewise reserve the [trace_id][parent_sid]
        # words past the hardened extension; the flag comes from the
        # machine-wide tracer, so both sides agree here too.
        self.traced = proc.tracer.enabled
        self.tx_off = self.hx_off + (_HARDENED_EXT_BYTES if self.hardened
                                     else 0)
        tail = self.tx_off + (_TRACE_EXT_BYTES if self.traced else 0)
        self.window = window
        self.frame_stride = tail
        page = proc.config.page_size
        self.region_bytes = -(-(tail * window) // page) * page
        self.buf = 0  # local buffer vaddr (set during binding)
        # Windowed calls temporarily re-base buffer access onto their
        # frame; 0 keeps the window=1 paths byte-identical.
        self._active_base = 0

    def _frame_base(self, seq: int) -> int:
        """The buffer offset of the frame call ``seq`` occupies."""
        return ((seq - 1) % self.window) * self.frame_stride

    def _make_buffer(self):
        self.buf = self.ep.alloc_buffer(self.region_bytes,
                                        cache_mode=CacheMode.WRITE_THROUGH)
        export = yield from self.ep.export(self.buf, self.region_bytes)
        return export

    def _bind_to_peer(self, node: int, export_id: int):
        imported = yield from self.ep.import_buffer(node, export_id)
        # The local buffer itself is AU-bound to the peer's: CPU stores
        # propagate; incoming DMA writes do not re-snoop, so no echo.
        yield from self.ep.bind(self.buf, imported, combining=True,
                                timer_us=_SRPC_FLUSH_TIMER)

    # -- timed buffer access helpers used by generated stubs ---------------
    def _read(self, offset: int, nbytes: int):
        data = yield from self.proc.read(
            self.buf + self._active_base + offset, nbytes)
        return data

    def _write(self, offset: int, data: bytes):
        yield from self.proc.write(self.buf + self._active_base + offset, data)

    def _trace_words(self, ctx, psid: int = 0) -> bytes:
        """Wire image of one frame's trace words (b"" when untraced).

        Zeros are written when the caller has no trace context so a
        frame reused across requests never leaks the previous call's
        identifiers to the server.
        """
        if not self.traced:
            return b""
        if ctx is None:
            return _TRACE_EXT.pack(0, 0)
        return _TRACE_EXT.pack(ctx[0], psid if psid else ctx[1])


class SrpcTicket:
    """One in-flight pipelined call, matched to its reply by sequence.

    Returned by the generated ``*_begin`` stub methods; redeem it with
    :meth:`SrpcClientBase.finish` (in any order — replies land in their
    own frame, so tickets may be finished out of submission order).
    """

    __slots__ = ("seq", "proc_id", "frame", "ret_bytes", "out_reads",
                 "start_us", "raw", "bad", "done", "trace_sid", "trace_ctx")

    def __init__(self, seq: int, proc_id: int, frame: int,
                 ret_bytes: int, out_reads, start_us: float):
        self.seq = seq
        self.proc_id = proc_id
        self.frame = frame
        self.ret_bytes = ret_bytes
        self.out_reads = out_reads
        self.start_us = start_us
        self.raw: Optional[List[bytes]] = None
        self.bad = False
        self.done = False
        # Pre-reserved call-span sid and the caller's trace context,
        # captured at submit so the span completed at harvest links into
        # the same causal tree the wire advertised.
        self.trace_sid: Optional[int] = None
        self.trace_ctx = None


class SrpcClientBase(_SrpcEndpointBase):
    """Base class of generated client stubs.

    Generated subclasses carry one plain method per IDL procedure
    (synchronous call) and, for pipelined bindings, one ``*_begin``
    method per procedure that submits the call and returns an
    :class:`SrpcTicket`; :meth:`finish` completes it.  At most
    ``window`` tickets can be outstanding; submitting past the window
    first harvests the frame's previous occupant (classic sliding-
    window flow control).
    """

    def __init__(self, system, proc, **kwargs):
        super().__init__(system, proc, **kwargs)
        self._seq = 0
        self.calls_made = 0
        self._call_xmit = 0
        # Pipelining state: frame index -> outstanding (unharvested)
        # ticket, per-frame hardened transmission counters, and the
        # depth statistics the workload metrics report.
        self._frames: Dict[int, SrpcTicket] = {}
        self._call_xmits: Dict[int, int] = {}
        self.submits = 0
        self.inflight_high_water = 0
        self._depth_total = 0

    def bind(self, server_node: int, port: int):
        """Establish the binding with a serving SrpcServer."""
        export = yield from self._make_buffer()
        reply_port = _ETH_REPLY_BASE + next(_reply_ports)
        request = _SrpcBindRequest(
            interface=self.IDL.name,
            version=self.IDL.version,
            client_node=self.proc.node.node_id,
            reply_port=reply_port,
            buffer_export=export.export_id,
        )
        self.ethernet.send(self.proc.node.node_id, server_node,
                           _ETH_SRPC_BASE + port, request)
        frame = yield self.ethernet.recv(self.proc.node.node_id, reply_port)
        reply: _SrpcBindReply = frame.payload
        if not reply.ok:
            raise SrpcError("bind failed: %s" % reply.error)
        yield from self._bind_to_peer(reply.server_node, reply.buffer_export)

    def _transmit_call(self, call_word: bytes, trace_words: bytes = b""):
        """One hardened transmission: the full args image, the call word
        and the [xmit][crc] stamp.  Idempotent — the retry loop replays
        it until the server's CRC check accepts the call."""
        args_img = yield from self._read(0, self.call_word_off)
        crc = crc32_of(args_img, call_word, trace_words)
        self._call_xmit = (self._call_xmit + 1) & 0xFFFFFFFF
        # Stamp last: the server treats a stamp bump whose CRC matches
        # the already-present call image as the trigger, so the image
        # must land first.
        yield from self._write(0, args_img + call_word)
        if trace_words:
            yield from self._write(self.tx_off, trace_words)
        yield from self._write(self.hx_off, struct.pack("<II", self._call_xmit, crc))

    def _exchange_hardened(self, call_word, writes, expected_ok, expected_bad,
                           trace_words: bytes = b""):
        """Retransmit the call until a CRC-valid reply lands; returns
        (return word, args image, ret image) or raises SrpcTimeoutError.

        The reply CRC covers the whole args area (where the server's
        OUT/INOUT stores land), the result area, and the return word —
        so a corrupted reply is rejected and served again from the
        server's replay log."""
        proc = self.proc
        for offset, data in _coalesce(writes):
            yield from self._write(offset, data)
        base_us = _RETRY_BASE_US + _RETRY_PER_BYTE_US * self.call_word_off
        ret_span = self.return_word_off - self.ret_off
        window_off = self.return_word_off
        window_len = self.hx_off + _HARDENED_EXT_BYTES - window_off
        xm_lo = self.hx_off + 8 - window_off
        for attempt in range(MAX_XMIT):
            yield from self._transmit_call(call_word, trace_words)
            deadline = proc.sim.now + attempt_timeout_us(base_us, attempt)
            while True:
                remaining = deadline - proc.sim.now
                if remaining <= 0:
                    break
                snapshot = proc.peek(self.buf + window_off + xm_lo, 4)

                def fresh(w, snapshot=snapshot):
                    return (w[:4] in (expected_ok, expected_bad)
                            or w[xm_lo : xm_lo + 4] != snapshot)

                window = yield from bounded_poll(
                    proc, self.buf + window_off, window_len, fresh, remaining
                )
                if window is None:
                    break
                result = window[:4]
                if result not in (expected_ok, expected_bad):
                    continue  # only the xmit stamp moved; revalidate later
                # Candidate reply: validate the CRC over full images.
                args_img = yield from self._read(0, self.call_word_off)
                ret_img = yield from self._read(self.ret_off, ret_span)
                raw = yield from self._read(self.hx_off + 8, 8)
                _ret_xmit, ret_crc = struct.unpack("<II", raw)
                if crc32_of(args_img, ret_img, result) == ret_crc:
                    return result, args_img, ret_img
                # Corrupt or partial: wait for the server's next replay.
        raise SrpcTimeoutError(
            "no valid reply for seq %d after %d transmissions"
            % (self._seq, MAX_XMIT)
        )

    def _invoke(self, proc_id: int, writes: List[Tuple[int, bytes]],
                ret_bytes: int, out_reads: List[Tuple[int, int]]):
        """One call: marshal, flag, wait, collect.

        ``writes``: (offset, bytes) argument stores.  The call word is
        appended and everything is coalesced into maximal consecutive
        streams — arguments that fill the area combine with the flag
        into a single burst ('all of the arguments and the flag can be
        combined into a single packet by the client-side hardware').
        ``ret_bytes``: return-slot bytes to read back (0 for void).
        ``out_reads``: (offset, nbytes) OUT/INOUT slots to read back.
        Returns [ret_raw?] + out slot bytes, in order.
        """
        if self.window > 1:
            # Pipelined binding: a synchronous call is submit + finish
            # behind every outstanding ticket, so per-binding order holds.
            yield from self.drain()
            ticket = yield from self._submit(proc_id, writes, ret_bytes,
                                             out_reads)
            yield from self._harvest(ticket)
            if ticket.bad:
                raise SrpcError("server has no procedure %d" % proc_id)
            return ticket.raw
        proc = self.proc
        span = None
        if proc.tracer.enabled:
            span = proc.tracer.begin(
                "srpc.call", "call proc %d" % proc_id, track=proc.trace_track,
                data={"proc": proc_id},
            )
            _tag_span(span, proc.trace_ctx)
        trace_words = self._trace_words(
            proc.trace_ctx, span.sid if span is not None else 0)
        try:
            # Deferred charge: everything between here and the first
            # buffer write is pure marshaling, so the stub cost folds
            # into that write's deadline (one wake instead of two).
            proc.charge(proc.config.costs.srpc_client_stub)
            self._seq = (self._seq % 0xFFFF) + 1
            call_word = struct.pack("<I", (self._seq << 16) | proc_id)
            expected_ok = struct.pack("<I", (self._seq << 16) | _STATUS_OK)
            expected_bad = struct.pack(
                "<I", (self._seq << 16) | _STATUS_NO_PROC)
            if self.hardened:
                result, args_img, ret_img = yield from self._exchange_hardened(
                    call_word, writes, expected_ok, expected_bad, trace_words
                )
                if result == expected_bad:
                    raise SrpcError("server has no procedure %d" % proc_id)
                # Everything was read (and CRC-validated) as full images;
                # slice the slots out instead of re-reading them.
                out = []
                if ret_bytes:
                    out.append(ret_img[:ret_bytes])
                for offset, nbytes, variable in out_reads:
                    raw = args_img[offset : offset + nbytes]
                    if variable:
                        (length,) = struct.unpack_from("<I", raw)
                        length = min(length, nbytes - 4)
                        raw = raw[: 4 + length]
                    out.append(raw)
                self.calls_made += 1
                return out
            if trace_words:
                # The trace words sit past the call word, so they cannot
                # join the coalesced stream — they must land before the
                # call word wakes the server's poll.
                yield from self._write(self.tx_off, trace_words)
            for offset, data in _coalesce(writes
                                          + [(self.call_word_off, call_word)]):
                yield from self._write(offset, data)
            result = yield from proc.poll(
                self.buf + self.return_word_off, 4,
                lambda b: b in (expected_ok, expected_bad),
            )
            if result == expected_bad:
                raise SrpcError("server has no procedure %d" % proc_id)
            out = []
            if ret_bytes:
                data = yield from self._read(self.ret_off, ret_bytes)
                out.append(data)
            for offset, nbytes, variable in out_reads:
                if variable:
                    # Bounded-variable slot: read the length word, then only
                    # the bytes actually present (an empty INOUT costs one
                    # word, not the whole bound).
                    lraw = yield from self._read(offset, 4)
                    (length,) = struct.unpack("<I", lraw)
                    length = min(length, nbytes - 4)
                    data = lraw
                    if length:
                        rest = yield from self._read(offset + 4, length)
                        data += rest
                else:
                    data = yield from self._read(offset, nbytes)
                out.append(data)
            self.calls_made += 1
            return out
        finally:
            # finally: fault-raised timeouts and SrpcError exits must
            # not leak the call span (span-balance audit).
            proc.tracer.end(span)

    # -- pipelined (windowed) call machinery --------------------------------
    def _submit(self, proc_id: int, writes: List[Tuple[int, bytes]],
                ret_bytes: int, out_reads: List[Tuple[int, int]]):
        """Issue one pipelined call and return its :class:`SrpcTicket`.

        If the call's frame still holds an unharvested ticket (the
        window is full) that occupant is harvested first — sliding-
        window flow control.  The arguments and call word land in the
        call's own frame; the reply is collected later by
        :meth:`finish` or :meth:`drain`.
        """
        proc = self.proc
        # Deferred into the frame's first buffer access (see _invoke);
        # a full-window harvest consumes it at its first poll check.
        proc.charge(proc.config.costs.srpc_client_stub)
        self._seq = (self._seq % 0xFFFF) + 1
        seq = self._seq
        frame = (seq - 1) % self.window
        occupant = self._frames.get(frame)
        if occupant is not None:
            yield from self._harvest(occupant)
        call_word = struct.pack("<I", (seq << 16) | proc_id)
        ticket = SrpcTicket(seq, proc_id, frame, ret_bytes, out_reads,
                            proc.sim.now)
        if proc.tracer.enabled:
            # The call span is completed at harvest time, but its sid
            # must ride the wire now — reserve it up front.
            ticket.trace_ctx = proc.trace_ctx
            ticket.trace_sid = proc.tracer.reserve_sid()
        trace_words = self._trace_words(ticket.trace_ctx,
                                        ticket.trace_sid or 0)
        prev_base = self._active_base
        self._active_base = frame * self.frame_stride
        try:
            if self.hardened:
                for offset, data in _coalesce(writes):
                    yield from self._write(offset, data)
                yield from self._transmit_frame(frame, call_word, trace_words)
            else:
                if trace_words:
                    yield from self._write(self.tx_off, trace_words)
                for offset, data in _coalesce(
                        writes + [(self.call_word_off, call_word)]):
                    yield from self._write(offset, data)
        finally:
            self._active_base = prev_base
        self._frames[frame] = ticket
        self.submits += 1
        depth = len(self._frames)
        if depth > self.inflight_high_water:
            self.inflight_high_water = depth
        self._depth_total += depth
        return ticket

    def _transmit_frame(self, frame: int, call_word: bytes,
                        trace_words: bytes = b""):
        """One hardened transmission of a frame's call image.  The
        caller must have ``_active_base`` set to the frame; per-frame
        xmit counters keep concurrent calls' replays distinguishable."""
        args_img = yield from self._read(0, self.call_word_off)
        crc = crc32_of(args_img, call_word, trace_words)
        xmit = (self._call_xmits.get(frame, 0) + 1) & 0xFFFFFFFF
        self._call_xmits[frame] = xmit
        yield from self._write(0, args_img + call_word)
        if trace_words:
            yield from self._write(self.tx_off, trace_words)
        yield from self._write(self.hx_off, struct.pack("<II", xmit, crc))

    def _harvest(self, ticket: SrpcTicket):
        """Collect one ticket's reply, blocking until it lands."""
        if ticket.done:
            return
        proc = self.proc
        seq = ticket.seq
        expected_ok = struct.pack("<I", (seq << 16) | _STATUS_OK)
        expected_bad = struct.pack("<I", (seq << 16) | _STATUS_NO_PROC)
        base = ticket.frame * self.frame_stride
        prev_base = self._active_base
        self._active_base = base
        try:
            if self.hardened:
                call_word = struct.pack("<I", (seq << 16) | ticket.proc_id)
                result, args_img, ret_img = yield from self._retry_frame(
                    ticket, call_word, expected_ok, expected_bad,
                    self._trace_words(ticket.trace_ctx,
                                      ticket.trace_sid or 0))
                out = []
                if ticket.ret_bytes:
                    out.append(ret_img[: ticket.ret_bytes])
                for offset, nbytes, variable in ticket.out_reads:
                    raw = args_img[offset : offset + nbytes]
                    if variable:
                        (length,) = struct.unpack_from("<I", raw)
                        length = min(length, nbytes - 4)
                        raw = raw[: 4 + length]
                    out.append(raw)
            else:
                result = yield from proc.poll(
                    self.buf + base + self.return_word_off, 4,
                    lambda b: b in (expected_ok, expected_bad),
                )
                out = []
                if ticket.ret_bytes:
                    data = yield from self._read(self.ret_off,
                                                 ticket.ret_bytes)
                    out.append(data)
                for offset, nbytes, variable in ticket.out_reads:
                    if variable:
                        lraw = yield from self._read(offset, 4)
                        (length,) = struct.unpack("<I", lraw)
                        length = min(length, nbytes - 4)
                        data = lraw
                        if length:
                            rest = yield from self._read(offset + 4, length)
                            data += rest
                    else:
                        data = yield from self._read(offset, nbytes)
                    out.append(data)
        finally:
            self._active_base = prev_base
        ticket.raw = out
        ticket.bad = result == expected_bad
        ticket.done = True
        if self._frames.get(ticket.frame) is ticket:
            del self._frames[ticket.frame]
        self.calls_made += 1
        if proc.tracer.enabled:
            data = {"proc": ticket.proc_id, "seq": seq}
            if ticket.trace_ctx is not None:
                data["tid"] = ticket.trace_ctx[0]
                data["cparent"] = ticket.trace_ctx[1]
            proc.tracer.complete(
                "srpc.call", "call proc %d" % ticket.proc_id,
                ticket.start_us, track=proc.trace_track,
                data=data, sid=ticket.trace_sid,
            )

    def _retry_frame(self, ticket, call_word, expected_ok, expected_bad,
                     trace_words: bytes = b""):
        """Hardened harvest: wait for a CRC-valid reply in the ticket's
        frame, retransmitting its call image on timeout.  The submit
        itself counts as the first transmission, so attempt 0 only
        waits.  The caller must have ``_active_base`` on the frame."""
        proc = self.proc
        base = ticket.frame * self.frame_stride
        base_us = _RETRY_BASE_US + _RETRY_PER_BYTE_US * self.call_word_off
        ret_span = self.return_word_off - self.ret_off
        window_off = self.return_word_off
        window_len = self.hx_off + _HARDENED_EXT_BYTES - window_off
        xm_lo = self.hx_off + 8 - window_off
        for attempt in range(MAX_XMIT):
            if attempt:
                yield from self._transmit_frame(ticket.frame, call_word,
                                                trace_words)
            deadline = proc.sim.now + attempt_timeout_us(base_us, attempt)
            while True:
                remaining = deadline - proc.sim.now
                if remaining <= 0:
                    break
                snapshot = proc.peek(self.buf + base + window_off + xm_lo, 4)

                def fresh(w, snapshot=snapshot):
                    return (w[:4] in (expected_ok, expected_bad)
                            or w[xm_lo : xm_lo + 4] != snapshot)

                window = yield from bounded_poll(
                    proc, self.buf + base + window_off, window_len, fresh,
                    remaining,
                )
                if window is None:
                    break
                result = window[:4]
                if result not in (expected_ok, expected_bad):
                    continue  # only the xmit stamp moved; revalidate later
                args_img = yield from self._read(0, self.call_word_off)
                ret_img = yield from self._read(self.ret_off, ret_span)
                raw = yield from self._read(self.hx_off + 8, 8)
                _ret_xmit, ret_crc = struct.unpack("<II", raw)
                if crc32_of(args_img, ret_img, result) == ret_crc:
                    return result, args_img, ret_img
                # Corrupt or partial: wait for the server's next replay.
        raise SrpcTimeoutError(
            "no valid reply for seq %d after %d transmissions"
            % (ticket.seq, MAX_XMIT)
        )

    def finish(self, ticket: SrpcTicket):
        """Complete a pipelined call: wait for the matching reply and
        return the procedure's decoded result.  Tickets of one binding
        may be finished in any order."""
        yield from self._harvest(ticket)
        if ticket.bad:
            raise SrpcError("server has no procedure %d" % ticket.proc_id)
        return getattr(self, "_decode_%d" % ticket.proc_id)(ticket.raw)

    def drain(self):
        """Harvest every outstanding ticket, oldest first.  Results stay
        available via :meth:`finish` (which is then immediate)."""
        for ticket in sorted(self._frames.values(), key=lambda t: t.seq):
            yield from self._harvest(ticket)

    @property
    def mean_depth(self) -> float:
        """Mean in-flight depth observed at submit time."""
        return self._depth_total / self.submits if self.submits else 0.0


class ParamRef:
    """A by-reference OUT/INOUT parameter handed to server procedures.

    ``get()``/``set()`` are generators: they read/write the slot in the
    server's communication buffer with real (timed) memory operations;
    sets propagate to the client via automatic update, overlapped with
    the rest of the procedure ('in many cases it appears to have no
    cost at all').
    """

    def __init__(self, server: "SrpcServerBase", param: Param):
        self._server = server
        self._param = param

    @property
    def name(self) -> str:
        return self._param.name

    def get(self):
        """Read and decode the parameter's current slot value."""
        if self._param.type.is_variable:
            lraw = yield from self._server._read(self._param.offset, 4)
            (length,) = struct.unpack("<I", lraw)
            length = min(length, self._param.type.bound)
            raw = lraw + (yield from self._server._read(self._param.offset + 4, length))
        else:
            raw = yield from self._server._read(
                self._param.offset, self._param.type.slot_bytes
            )
        return decode_value(self._param.type, raw)

    def set(self, value):
        """Encode and write the slot (propagates via AU)."""
        data = encode_value(self._param.type, value)
        yield from self._server._write(self._param.offset, data)


class SrpcServerBase(_SrpcEndpointBase):
    """Base class of generated server skeletons.

    ``impl`` provides one generator method per procedure; IN parameters
    arrive as Python values, OUT/INOUT as :class:`ParamRef`.
    """

    def __init__(self, system, proc, impl, **kwargs):
        super().__init__(system, proc, **kwargs)
        self.impl = impl
        self._last_seq = 0
        self.calls_served = 0
        # Hardened replay state: the exact (offset, bytes) stores of the
        # last reply (OUT/INOUT sets included), so a duplicate call —
        # the client never saw our answer — can be answered again even
        # after its retransmission clobbered the buffer.
        self._reply_log: List[Tuple[int, bytes]] = []
        self._reply_crc = 0
        self._ret_xmit = 0
        self._call_xmit_seen = 0
        # Windowed serving state: the next sequence number to serve and
        # the per-frame mirrors of the replay machinery above.
        self._next_seq = 1
        self._frame_seqs: Dict[int, int] = {}
        self._reply_logs: Dict[int, List[Tuple[int, bytes]]] = {}
        self._reply_crcs: Dict[int, int] = {}
        self._ret_xmits: Dict[int, int] = {}
        self._call_xmit_seen_f: Dict[int, int] = {}

    def _write(self, offset: int, data: bytes):
        if self.hardened:
            # Log absolute offsets so a windowed frame's replay works
            # after _active_base has been reset (base 0 at window=1).
            self._reply_log.append((self._active_base + offset, bytes(data)))
        yield from super()._write(offset, data)

    def serve_binding(self, port: int):
        """Accept one client binding on ``port``."""
        frame = yield self.ethernet.recv(
            self.proc.node.node_id, _ETH_SRPC_BASE + port
        )
        request: _SrpcBindRequest = frame.payload
        if request.interface != self.IDL.name or request.version != self.IDL.version:
            reply = _SrpcBindReply(ok=False, error="interface mismatch")
            self.ethernet.send(self.proc.node.node_id, request.client_node,
                               request.reply_port, reply)
            raise SrpcError("client expected %s v%d" % (request.interface, request.version))
        export = yield from self._make_buffer()
        reply = _SrpcBindReply(
            ok=True,
            server_node=self.proc.node.node_id,
            buffer_export=export.export_id,
        )
        self.ethernet.send(self.proc.node.node_id, request.client_node,
                           request.reply_port, reply)
        yield from self._bind_to_peer(request.client_node, request.buffer_export)

    def run(self, max_calls: Optional[int] = None):
        """The server loop: poll the call word, dispatch, flag return."""
        if self.window > 1:
            yield from self._run_windowed(max_calls)
            return
        proc = self.proc
        served = 0
        while max_calls is None or served < max_calls:
            if self.hardened:
                word = yield from self._await_call_hardened()
            else:
                raw = yield from proc.poll(
                    self.buf + self.call_word_off, 4,
                    lambda b: (struct.unpack("<I", b)[0] >> 16) != self._last_seq
                    and struct.unpack("<I", b)[0] != 0,
                )
                word = struct.unpack("<I", raw)[0]
            seq, proc_id = word >> 16, word & 0xFFFF
            self._last_seq = seq
            wire_ctx = None
            if self.traced:
                tw = yield from self._read(self.tx_off, _TRACE_EXT_BYTES)
                tid, psid = _TRACE_EXT.unpack(tw)
                if tid:
                    wire_ctx = (tid, psid)
            span = None
            if proc.tracer.enabled:
                span = proc.tracer.begin(
                    "srpc.serve", "serve proc %d" % proc_id,
                    track=proc.trace_track, data={"proc": proc_id},
                )
                _tag_span(span, wire_ctx, cross=True)
            self._reply_log = []
            prev_ctx = proc.trace_ctx
            if wire_ctx is not None:
                # Downstream work the dispatcher starts (replication,
                # nested calls) parents under this serve span.
                proc.trace_ctx = (wire_ctx[0], span.sid if span is not None
                                  else wire_ctx[1])
            try:
                # Deferred charge: dispatcher lookup and ParamRef setup
                # are pure, so the dispatch cost folds into the first
                # parameter read (or, for no-arg procedures, into the
                # reply write) — one wake instead of two.
                proc.charge(proc.config.costs.srpc_server_dispatch)
                dispatcher = getattr(self, "_dispatch_%d" % proc_id, None)
                status = _STATUS_OK
                ret_data = b""
                if dispatcher is None:
                    status = _STATUS_NO_PROC
                else:
                    ret_data = (yield from dispatcher()) or b""
                # Return value + return word as one coalesced stream: when
                # the value fills the result area they leave as one packet.
                return_word = struct.pack("<I", (seq << 16) | status)
                writes = [(self.return_word_off, return_word)]
                if ret_data:
                    writes.insert(0, (self.ret_off, ret_data))
                for offset, data in _coalesce(writes):
                    yield from self._write(offset, data)
                if self.hardened:
                    yield from self._stamp_reply(return_word)
            finally:
                proc.trace_ctx = prev_ctx
                # finally: a fault-raised timeout mid-dispatch must not
                # leak the serve span (span-balance audit).
                proc.tracer.end(span)
            self.calls_served += 1
            served += 1

    def _run_windowed(self, max_calls: Optional[int] = None):
        """The pipelined server loop: serve strictly in sequence order.

        Calls travel one AU binding and land in issue order, so waiting
        on seq *n* before *n + 1* never deadlocks; each reply lands in
        its own frame, which lets the client collect out of order."""
        proc = self.proc
        served = 0
        while max_calls is None or served < max_calls:
            expected = self._next_seq
            frame = (expected - 1) % self.window
            base = frame * self.frame_stride
            if self.hardened:
                word = yield from self._await_call_windowed(
                    expected, frame, base)
            else:
                raw = yield from proc.poll(
                    self.buf + base + self.call_word_off, 4,
                    lambda b: (struct.unpack("<I", b)[0] >> 16) == expected,
                )
                word = struct.unpack("<I", raw)[0]
            seq, proc_id = word >> 16, word & 0xFFFF
            self._last_seq = seq
            wire_ctx = None
            if self.traced:
                tw = yield from self._read(base + self.tx_off,
                                           _TRACE_EXT_BYTES)
                tid, psid = _TRACE_EXT.unpack(tw)
                if tid:
                    wire_ctx = (tid, psid)
            span = None
            if proc.tracer.enabled:
                span = proc.tracer.begin(
                    "srpc.serve", "serve proc %d" % proc_id,
                    track=proc.trace_track,
                    data={"proc": proc_id, "seq": seq},
                )
                _tag_span(span, wire_ctx, cross=True)
            self._reply_log = []
            prev_ctx = proc.trace_ctx
            if wire_ctx is not None:
                proc.trace_ctx = (wire_ctx[0], span.sid if span is not None
                                  else wire_ctx[1])
            self._active_base = base
            try:
                # Deferred into the first parameter read (see run()).
                proc.charge(proc.config.costs.srpc_server_dispatch)
                dispatcher = getattr(self, "_dispatch_%d" % proc_id, None)
                status = _STATUS_OK
                ret_data = b""
                if dispatcher is None:
                    status = _STATUS_NO_PROC
                else:
                    ret_data = (yield from dispatcher()) or b""
                return_word = struct.pack("<I", (seq << 16) | status)
                writes = [(self.return_word_off, return_word)]
                if ret_data:
                    writes.insert(0, (self.ret_off, ret_data))
                for offset, data in _coalesce(writes):
                    yield from self._write(offset, data)
                if self.hardened:
                    yield from self._stamp_frame(frame, return_word)
            finally:
                self._active_base = 0
                proc.trace_ctx = prev_ctx
                # finally: a fault-raised timeout mid-dispatch must not
                # leak the serve span (span-balance audit).
                proc.tracer.end(span)
            self._frame_seqs[frame] = seq
            self._reply_logs[frame] = self._reply_log
            self._reply_log = []
            self._next_seq = (expected % 0xFFFF) + 1
            self.calls_served += 1
            served += 1

    def _await_call_windowed(self, expected: int, frame: int, base: int):
        """Hardened windowed wait for a CRC-valid call with sequence
        ``expected`` in its frame.  While waiting, replays any already-
        served frame whose call image the client demonstrably
        retransmitted (new xmit stamp, consistent CRC): that frame's
        reply was lost, and the client's harvest is blocked on it."""
        proc = self.proc
        deadline = proc.sim.now + _SERVE_IDLE_US
        stride = self.frame_stride
        region_len = stride * self.window
        call_off = self.call_word_off
        while True:
            remaining = deadline - proc.sim.now
            if remaining <= 0:
                raise SrpcTimeoutError(
                    "no call within %.0f us" % _SERVE_IDLE_US
                )
            snapshots = [
                proc.peek(self.buf + f * stride + self.hx_off, 4)
                for f in range(self.window)
            ]

            def fresh(region, snapshots=snapshots):
                word = struct.unpack_from(
                    "<I", region, frame * stride + call_off)[0]
                if (word >> 16) == expected and word != 0:
                    return True
                for f, snap in enumerate(snapshots):
                    lo = f * stride + self.hx_off
                    if region[lo : lo + 4] != snap:
                        return True
                return False

            region = yield from bounded_poll(
                proc, self.buf, region_len, fresh, remaining
            )
            if region is None:
                continue
            # First sweep the window for retransmissions of calls we
            # already served — the stamp moved but the seq did not —
            # and replay their logged replies.
            for f in range(self.window):
                fb = f * stride
                raw = yield from self._read(fb + call_off, 4)
                word_f = struct.unpack("<I", raw)[0]
                seq_f = word_f >> 16
                if seq_f == 0 or seq_f != self._frame_seqs.get(f):
                    continue
                hx = yield from self._read(fb + self.hx_off, 8)
                call_xmit, call_crc = struct.unpack("<II", hx)
                if call_xmit == self._call_xmit_seen_f.get(f):
                    continue
                args_img = yield from self._read(fb, call_off)
                tw = b""
                if self.traced:
                    tw = yield from self._read(fb + self.tx_off,
                                               _TRACE_EXT_BYTES)
                if crc32_of(args_img, raw, tw) != call_crc:
                    continue  # a new call's stamp racing its image
                if not self._reply_logs.get(f):
                    continue
                self._call_xmit_seen_f[f] = call_xmit
                yield from self._replay_frame(f)
            # Then check the expected frame for the next call.
            fb = frame * stride
            raw = yield from self._read(fb + call_off, 4)
            word = struct.unpack("<I", raw)[0]
            if (word >> 16) != expected or word == 0:
                continue
            hx = yield from self._read(fb + self.hx_off, 8)
            call_xmit, call_crc = struct.unpack("<II", hx)
            args_img = yield from self._read(fb, call_off)
            tw = b""
            if self.traced:
                tw = yield from self._read(fb + self.tx_off,
                                           _TRACE_EXT_BYTES)
            if crc32_of(args_img, raw, tw) != call_crc:
                continue  # corrupt arguments: await the retransmission
            self._call_xmit_seen_f[frame] = call_xmit
            return word

    def _stamp_frame(self, frame: int, return_word: bytes):
        """Checksum and stamp one frame's reply.  The caller must have
        ``_active_base`` on the frame; per-frame stamp/CRC state lets
        the client validate every in-flight frame independently."""
        args_img = yield from self._read(0, self.call_word_off)
        ret_img = yield from self._read(
            self.ret_off, self.return_word_off - self.ret_off
        )
        crc = crc32_of(args_img, ret_img, return_word)
        self._reply_crcs[frame] = crc
        xmit = (self._ret_xmits.get(frame, 0) + 1) & 0xFFFFFFFF
        self._ret_xmits[frame] = xmit
        yield from _SrpcEndpointBase._write(
            self, self.hx_off + 8, struct.pack("<II", xmit, crc),
        )

    def _replay_frame(self, frame: int):
        """Rewrite one frame's logged reply stores (absolute offsets),
        then bump its stamp — runs between calls, with base 0."""
        for offset, data in self._reply_logs[frame]:
            yield from _SrpcEndpointBase._write(self, offset, data)
        xmit = (self._ret_xmits.get(frame, 0) + 1) & 0xFFFFFFFF
        self._ret_xmits[frame] = xmit
        yield from _SrpcEndpointBase._write(
            self, frame * self.frame_stride + self.hx_off + 8,
            struct.pack("<II", xmit, self._reply_crcs[frame]),
        )

    def _await_call_hardened(self):
        """Wait (bounded) for a CRC-valid new call word; replays the
        last reply when the client retransmits an already-served call."""
        proc = self.proc
        deadline = proc.sim.now + _SERVE_IDLE_US
        window_off = self.call_word_off
        window_len = self.hx_off + 8 - window_off
        xm_lo = self.hx_off - window_off
        while True:
            remaining = deadline - proc.sim.now
            if remaining <= 0:
                raise SrpcTimeoutError(
                    "no call within %.0f us" % _SERVE_IDLE_US
                )
            snapshot = proc.peek(self.buf + self.hx_off, 4)

            def fresh(w, snapshot=snapshot):
                word = struct.unpack_from("<I", w)[0]
                return ((word >> 16) != self._last_seq and word != 0) \
                    or w[xm_lo : xm_lo + 4] != snapshot

            window = yield from bounded_poll(
                proc, self.buf + window_off, window_len, fresh, remaining
            )
            if window is None:
                continue
            raw = yield from self._read(self.call_word_off, 4)
            word = struct.unpack("<I", raw)[0]
            hx = yield from self._read(self.hx_off, 8)
            call_xmit, call_crc = struct.unpack("<II", hx)
            seq = word >> 16
            args_img = yield from self._read(0, self.call_word_off)
            tw = b""
            if self.traced:
                tw = yield from self._read(self.tx_off, _TRACE_EXT_BYTES)
            consistent = crc32_of(args_img, raw, tw) == call_crc
            if seq == self._last_seq or word == 0:
                # A consistent image with the seq we already served is a
                # genuine retransmission: the client never saw the reply
                # — serve it again.  An inconsistent one is the next
                # call's stamp racing ahead of its image (or corruption);
                # replaying now would clobber the incoming arguments.
                if (consistent and seq == self._last_seq and word != 0
                        and call_xmit != self._call_xmit_seen
                        and self._reply_log):
                    self._call_xmit_seen = call_xmit
                    yield from self._replay_reply()
                continue
            if not consistent:
                continue  # corrupt arguments: await the retransmission
            self._call_xmit_seen = call_xmit
            return word

    def _stamp_reply(self, return_word: bytes):
        """Checksum the reply state and publish the [xmit][crc] stamp.

        The CRC covers the args area (OUT/INOUT stores live there), the
        result area and the return word — everything the client reads."""
        args_img = yield from self._read(0, self.call_word_off)
        ret_img = yield from self._read(
            self.ret_off, self.return_word_off - self.ret_off
        )
        self._reply_crc = crc32_of(args_img, ret_img, return_word)
        self._ret_xmit = (self._ret_xmit + 1) & 0xFFFFFFFF
        yield from _SrpcEndpointBase._write(
            self, self.hx_off + 8,
            struct.pack("<II", self._ret_xmit, self._reply_crc),
        )

    def _replay_reply(self):
        """Rewrite every store of the last reply, then bump the stamp —
        restores OUT slots a retransmitted call image clobbered."""
        for offset, data in self._reply_log:
            yield from _SrpcEndpointBase._write(self, offset, data)
        self._ret_xmit = (self._ret_xmit + 1) & 0xFFFFFFFF
        yield from _SrpcEndpointBase._write(
            self, self.hx_off + 8,
            struct.pack("<II", self._ret_xmit, self._reply_crc),
        )

    def _ref(self, proc_name: str, param_name: str) -> ParamRef:
        procedure = self.IDL.procedure(proc_name)
        for param in procedure.params:
            if param.name == param_name:
                return ParamRef(self, param)
        raise SrpcError("no parameter %s in %s" % (param_name, proc_name))


def _coalesce(writes: List[Tuple[int, bytes]]) -> List[Tuple[int, bytes]]:
    """Merge adjacent (offset, bytes) stores into consecutive streams."""
    merged: List[Tuple[int, bytearray]] = []
    for offset, data in sorted(writes, key=lambda w: w[0]):
        if merged and merged[-1][0] + len(merged[-1][1]) == offset:
            merged[-1][1].extend(data)
        else:
            merged.append((offset, bytearray(data)))
    return [(offset, bytes(data)) for offset, data in merged]
