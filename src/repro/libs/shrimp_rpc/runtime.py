"""Runtime of the specialized SHRIMP RPC (Section 5).

Design per the paper (close to Bershad's URPC): each binding consists of
one receive buffer on each side with bidirectional import-export
mappings (and automatic-update bindings) between them.

Buffer layout, identical on both sides:

    [argument/result area : frame_bytes][call word][return word]

'The buffers are laid out so that the flag is immediately after the
data, and so that the flag is in the same place for all calls that use
the same binding.'  The client marshals arguments with consecutive
stores and writes the call word; for the largest procedure the whole
thing combines into a single packet, and a null call is literally one
word.  OUT and INOUT parameters are passed to the server procedure *by
reference* — pointers into the server's communication buffer — so
whatever the procedure writes propagates back to the client by
automatic update, overlapped with the server's computation; an INOUT
the server never writes costs nothing on the return path.
"""

from __future__ import annotations

import itertools
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...hardware.config import CacheMode
from ...kernel.process import UserProcess
from ...kernel.system import ShrimpSystem
from ...vmmc import VmmcEndpoint, VmmcTimeoutError, attach
from ..recovery import MAX_XMIT, attempt_timeout_us, bounded_poll, crc32_of
from .idl import IdlType, Interface, Param

__all__ = ["SrpcError", "SrpcTimeoutError", "SrpcClientBase", "SrpcServerBase",
           "ParamRef", "pack_scalar", "unpack_scalar"]

_ETH_SRPC_BASE = 100000
_ETH_REPLY_BASE = 120000
_reply_ports = itertools.count(1)

_STATUS_OK = 0
_STATUS_NO_PROC = 1

# How promptly the combining timer flushes an RPC buffer's tail packet.
# Short: the stubs coalesce each call's stores into single bursts.
_SRPC_FLUSH_TIMER = 0.10

# Hardened-protocol knobs (docs/FAULTS.md).  Under an armed fault plan
# each binding grows four reserved words past the return word —
# [call_xmit][call_crc][ret_xmit][ret_crc] — and both sides retransmit
# full buffer images until the peer's CRC check passes.
_HARDENED_EXT_BYTES = 16
_RETRY_BASE_US = 400.0
_RETRY_PER_BYTE_US = 0.1
_SERVE_IDLE_US = 1_000_000.0

_SCALAR_CODES = {"int": "<i", "uint": "<I", "float": "<f", "double": "<d"}


class SrpcError(Exception):
    """Binding failure or protocol violation."""


class SrpcTimeoutError(SrpcError, VmmcTimeoutError):
    """A hardened SHRIMP RPC wait expired: the client's retransmission
    budget ran out, or the server's idle bound passed with no call."""


def pack_scalar(kind: str, value) -> bytes:
    """Encode one scalar in the wire byte order."""
    return struct.pack(_SCALAR_CODES[kind], value)


def unpack_scalar(kind: str, raw: bytes):
    """Decode one scalar from slot bytes."""
    return struct.unpack(_SCALAR_CODES[kind], raw[: struct.calcsize(_SCALAR_CODES[kind])])[0]


def encode_value(idltype: IdlType, value) -> bytes:
    """Marshal one value into its slot representation (used bytes only)."""
    kind = idltype.kind
    if kind in _SCALAR_CODES:
        return pack_scalar(kind, value)
    if kind == "array":
        if len(value) != idltype.bound:
            raise SrpcError("array needs %d elements, got %d" % (idltype.bound, len(value)))
        return struct.pack("<%d%s" % (idltype.bound, _SCALAR_CODES[idltype.element][1]), *value)
    if kind == "opaque_fixed":
        if len(value) != idltype.bound:
            raise SrpcError("fixed opaque needs %d bytes, got %d" % (idltype.bound, len(value)))
        return bytes(value) + b"\x00" * (-len(value) % 4)
    if kind in ("opaque_var", "string"):
        data = value.encode("utf-8") if kind == "string" else bytes(value)
        if len(data) > idltype.bound:
            raise SrpcError("value of %d bytes exceeds bound %d" % (len(data), idltype.bound))
        return struct.pack("<I", len(data)) + data + b"\x00" * (-len(data) % 4)
    raise SrpcError("cannot encode %s" % idltype.describe())


def decode_value(idltype: IdlType, raw: bytes):
    """Unmarshal one value from its slot bytes."""
    kind = idltype.kind
    if kind in _SCALAR_CODES:
        return unpack_scalar(kind, raw)
    if kind == "array":
        return list(struct.unpack_from(
            "<%d%s" % (idltype.bound, _SCALAR_CODES[idltype.element][1]), raw
        ))
    if kind == "opaque_fixed":
        return bytes(raw[: idltype.bound])
    if kind in ("opaque_var", "string"):
        (length,) = struct.unpack_from("<I", raw)
        if length > idltype.bound:
            raise SrpcError("corrupt length %d > bound %d" % (length, idltype.bound))
        data = bytes(raw[4 : 4 + length])
        return data.decode("utf-8") if kind == "string" else data
    raise SrpcError("cannot decode %s" % idltype.describe())


@dataclass
class _SrpcBindRequest:
    interface: str
    version: int
    client_node: int
    reply_port: int
    buffer_export: int


@dataclass
class _SrpcBindReply:
    ok: bool
    error: str = ""
    server_node: int = 0
    buffer_export: int = 0


class _SrpcEndpointBase:
    """Shared binding machinery: the mirrored buffer pair."""

    IDL: Interface  # installed by the stub generator on subclasses

    def __init__(self, system: ShrimpSystem, proc: UserProcess,
                 endpoint: Optional[VmmcEndpoint] = None):
        self.system = system
        self.proc = proc
        self.ep = endpoint or attach(system, proc)
        self.ethernet = system.machine.ethernet
        interface = self.IDL
        # Buffer layout: [args area][call word][ret area][return word].
        # Marshaled arguments run right up to the call word, and return
        # values right up to the return word, so each side's stores form
        # one ascending stream the combining hardware packs together.
        self.call_word_off = interface.args_area_bytes
        self.ret_off = self.call_word_off + 4
        self.return_word_off = self.ret_off + interface.ret_area_bytes
        # Hardened bindings reserve the CRC/xmit words after the return
        # word; both sides derive the flag from the same armed fault
        # plan, so the layouts always agree.
        self.hardened = proc.faults.enabled
        self.hx_off = self.return_word_off + 4
        tail = self.hx_off + (_HARDENED_EXT_BYTES if self.hardened else 0)
        page = proc.config.page_size
        self.region_bytes = -(-tail // page) * page
        self.buf = 0  # local buffer vaddr (set during binding)

    def _make_buffer(self):
        self.buf = self.ep.alloc_buffer(self.region_bytes,
                                        cache_mode=CacheMode.WRITE_THROUGH)
        export = yield from self.ep.export(self.buf, self.region_bytes)
        return export

    def _bind_to_peer(self, node: int, export_id: int):
        imported = yield from self.ep.import_buffer(node, export_id)
        # The local buffer itself is AU-bound to the peer's: CPU stores
        # propagate; incoming DMA writes do not re-snoop, so no echo.
        yield from self.ep.bind(self.buf, imported, combining=True,
                                timer_us=_SRPC_FLUSH_TIMER)

    # -- timed buffer access helpers used by generated stubs ---------------
    def _read(self, offset: int, nbytes: int):
        data = yield from self.proc.read(self.buf + offset, nbytes)
        return data

    def _write(self, offset: int, data: bytes):
        yield from self.proc.write(self.buf + offset, data)


class SrpcClientBase(_SrpcEndpointBase):
    """Base class of generated client stubs."""

    def __init__(self, system, proc, **kwargs):
        super().__init__(system, proc, **kwargs)
        self._seq = 0
        self.calls_made = 0
        self._call_xmit = 0

    def bind(self, server_node: int, port: int):
        """Establish the binding with a serving SrpcServer."""
        export = yield from self._make_buffer()
        reply_port = _ETH_REPLY_BASE + next(_reply_ports)
        request = _SrpcBindRequest(
            interface=self.IDL.name,
            version=self.IDL.version,
            client_node=self.proc.node.node_id,
            reply_port=reply_port,
            buffer_export=export.export_id,
        )
        self.ethernet.send(self.proc.node.node_id, server_node,
                           _ETH_SRPC_BASE + port, request)
        frame = yield self.ethernet.recv(self.proc.node.node_id, reply_port)
        reply: _SrpcBindReply = frame.payload
        if not reply.ok:
            raise SrpcError("bind failed: %s" % reply.error)
        yield from self._bind_to_peer(reply.server_node, reply.buffer_export)

    def _transmit_call(self, call_word: bytes):
        """One hardened transmission: the full args image, the call word
        and the [xmit][crc] stamp.  Idempotent — the retry loop replays
        it until the server's CRC check accepts the call."""
        args_img = yield from self._read(0, self.call_word_off)
        crc = crc32_of(args_img, call_word)
        self._call_xmit = (self._call_xmit + 1) & 0xFFFFFFFF
        # Stamp last: the server treats a stamp bump whose CRC matches
        # the already-present call image as the trigger, so the image
        # must land first.
        yield from self._write(0, args_img + call_word)
        yield from self._write(self.hx_off, struct.pack("<II", self._call_xmit, crc))

    def _exchange_hardened(self, call_word, writes, expected_ok, expected_bad):
        """Retransmit the call until a CRC-valid reply lands; returns
        (return word, args image, ret image) or raises SrpcTimeoutError.

        The reply CRC covers the whole args area (where the server's
        OUT/INOUT stores land), the result area, and the return word —
        so a corrupted reply is rejected and served again from the
        server's replay log."""
        proc = self.proc
        for offset, data in _coalesce(writes):
            yield from self._write(offset, data)
        base_us = _RETRY_BASE_US + _RETRY_PER_BYTE_US * self.call_word_off
        ret_span = self.return_word_off - self.ret_off
        window_off = self.return_word_off
        window_len = self.hx_off + _HARDENED_EXT_BYTES - window_off
        xm_lo = self.hx_off + 8 - window_off
        for attempt in range(MAX_XMIT):
            yield from self._transmit_call(call_word)
            deadline = proc.sim.now + attempt_timeout_us(base_us, attempt)
            while True:
                remaining = deadline - proc.sim.now
                if remaining <= 0:
                    break
                snapshot = proc.peek(self.buf + window_off + xm_lo, 4)

                def fresh(w, snapshot=snapshot):
                    return (w[:4] in (expected_ok, expected_bad)
                            or w[xm_lo : xm_lo + 4] != snapshot)

                window = yield from bounded_poll(
                    proc, self.buf + window_off, window_len, fresh, remaining
                )
                if window is None:
                    break
                result = window[:4]
                if result not in (expected_ok, expected_bad):
                    continue  # only the xmit stamp moved; revalidate later
                # Candidate reply: validate the CRC over full images.
                args_img = yield from self._read(0, self.call_word_off)
                ret_img = yield from self._read(self.ret_off, ret_span)
                raw = yield from self._read(self.hx_off + 8, 8)
                _ret_xmit, ret_crc = struct.unpack("<II", raw)
                if crc32_of(args_img, ret_img, result) == ret_crc:
                    return result, args_img, ret_img
                # Corrupt or partial: wait for the server's next replay.
        raise SrpcTimeoutError(
            "no valid reply for seq %d after %d transmissions"
            % (self._seq, MAX_XMIT)
        )

    def _invoke(self, proc_id: int, writes: List[Tuple[int, bytes]],
                ret_bytes: int, out_reads: List[Tuple[int, int]]):
        """One call: marshal, flag, wait, collect.

        ``writes``: (offset, bytes) argument stores.  The call word is
        appended and everything is coalesced into maximal consecutive
        streams — arguments that fill the area combine with the flag
        into a single burst ('all of the arguments and the flag can be
        combined into a single packet by the client-side hardware').
        ``ret_bytes``: return-slot bytes to read back (0 for void).
        ``out_reads``: (offset, nbytes) OUT/INOUT slots to read back.
        Returns [ret_raw?] + out slot bytes, in order.
        """
        proc = self.proc
        span = None
        if proc.tracer.enabled:
            span = proc.tracer.begin(
                "srpc.call", "call proc %d" % proc_id, track=proc.trace_track,
                data={"proc": proc_id},
            )
        yield from proc.compute(proc.config.costs.srpc_client_stub)
        self._seq = (self._seq % 0xFFFF) + 1
        call_word = struct.pack("<I", (self._seq << 16) | proc_id)
        expected_ok = struct.pack("<I", (self._seq << 16) | _STATUS_OK)
        expected_bad = struct.pack("<I", (self._seq << 16) | _STATUS_NO_PROC)
        if self.hardened:
            result, args_img, ret_img = yield from self._exchange_hardened(
                call_word, writes, expected_ok, expected_bad
            )
            if result == expected_bad:
                raise SrpcError("server has no procedure %d" % proc_id)
            # Everything was read (and CRC-validated) as full images;
            # slice the slots out instead of re-reading them.
            out = []
            if ret_bytes:
                out.append(ret_img[:ret_bytes])
            for offset, nbytes, variable in out_reads:
                raw = args_img[offset : offset + nbytes]
                if variable:
                    (length,) = struct.unpack_from("<I", raw)
                    length = min(length, nbytes - 4)
                    raw = raw[: 4 + length]
                out.append(raw)
            self.calls_made += 1
            proc.tracer.end(span)
            return out
        for offset, data in _coalesce(writes + [(self.call_word_off, call_word)]):
            yield from self._write(offset, data)
        result = yield from proc.poll(
            self.buf + self.return_word_off, 4,
            lambda b: b in (expected_ok, expected_bad),
        )
        if result == expected_bad:
            raise SrpcError("server has no procedure %d" % proc_id)
        out = []
        if ret_bytes:
            data = yield from self._read(self.ret_off, ret_bytes)
            out.append(data)
        for offset, nbytes, variable in out_reads:
            if variable:
                # Bounded-variable slot: read the length word, then only
                # the bytes actually present (an empty INOUT costs one
                # word, not the whole bound).
                lraw = yield from self._read(offset, 4)
                (length,) = struct.unpack("<I", lraw)
                length = min(length, nbytes - 4)
                data = lraw
                if length:
                    rest = yield from self._read(offset + 4, length)
                    data += rest
            else:
                data = yield from self._read(offset, nbytes)
            out.append(data)
        self.calls_made += 1
        proc.tracer.end(span)
        return out


class ParamRef:
    """A by-reference OUT/INOUT parameter handed to server procedures.

    ``get()``/``set()`` are generators: they read/write the slot in the
    server's communication buffer with real (timed) memory operations;
    sets propagate to the client via automatic update, overlapped with
    the rest of the procedure ('in many cases it appears to have no
    cost at all').
    """

    def __init__(self, server: "SrpcServerBase", param: Param):
        self._server = server
        self._param = param

    @property
    def name(self) -> str:
        return self._param.name

    def get(self):
        """Read and decode the parameter's current slot value."""
        if self._param.type.is_variable:
            lraw = yield from self._server._read(self._param.offset, 4)
            (length,) = struct.unpack("<I", lraw)
            length = min(length, self._param.type.bound)
            raw = lraw + (yield from self._server._read(self._param.offset + 4, length))
        else:
            raw = yield from self._server._read(
                self._param.offset, self._param.type.slot_bytes
            )
        return decode_value(self._param.type, raw)

    def set(self, value):
        """Encode and write the slot (propagates via AU)."""
        data = encode_value(self._param.type, value)
        yield from self._server._write(self._param.offset, data)


class SrpcServerBase(_SrpcEndpointBase):
    """Base class of generated server skeletons.

    ``impl`` provides one generator method per procedure; IN parameters
    arrive as Python values, OUT/INOUT as :class:`ParamRef`.
    """

    def __init__(self, system, proc, impl, **kwargs):
        super().__init__(system, proc, **kwargs)
        self.impl = impl
        self._last_seq = 0
        self.calls_served = 0
        # Hardened replay state: the exact (offset, bytes) stores of the
        # last reply (OUT/INOUT sets included), so a duplicate call —
        # the client never saw our answer — can be answered again even
        # after its retransmission clobbered the buffer.
        self._reply_log: List[Tuple[int, bytes]] = []
        self._reply_crc = 0
        self._ret_xmit = 0
        self._call_xmit_seen = 0

    def _write(self, offset: int, data: bytes):
        if self.hardened:
            self._reply_log.append((offset, bytes(data)))
        yield from super()._write(offset, data)

    def serve_binding(self, port: int):
        """Accept one client binding on ``port``."""
        frame = yield self.ethernet.recv(
            self.proc.node.node_id, _ETH_SRPC_BASE + port
        )
        request: _SrpcBindRequest = frame.payload
        if request.interface != self.IDL.name or request.version != self.IDL.version:
            reply = _SrpcBindReply(ok=False, error="interface mismatch")
            self.ethernet.send(self.proc.node.node_id, request.client_node,
                               request.reply_port, reply)
            raise SrpcError("client expected %s v%d" % (request.interface, request.version))
        export = yield from self._make_buffer()
        reply = _SrpcBindReply(
            ok=True,
            server_node=self.proc.node.node_id,
            buffer_export=export.export_id,
        )
        self.ethernet.send(self.proc.node.node_id, request.client_node,
                           request.reply_port, reply)
        yield from self._bind_to_peer(request.client_node, request.buffer_export)

    def run(self, max_calls: Optional[int] = None):
        """The server loop: poll the call word, dispatch, flag return."""
        proc = self.proc
        served = 0
        while max_calls is None or served < max_calls:
            if self.hardened:
                word = yield from self._await_call_hardened()
            else:
                raw = yield from proc.poll(
                    self.buf + self.call_word_off, 4,
                    lambda b: (struct.unpack("<I", b)[0] >> 16) != self._last_seq
                    and struct.unpack("<I", b)[0] != 0,
                )
                word = struct.unpack("<I", raw)[0]
            seq, proc_id = word >> 16, word & 0xFFFF
            self._last_seq = seq
            span = None
            if proc.tracer.enabled:
                span = proc.tracer.begin(
                    "srpc.serve", "serve proc %d" % proc_id,
                    track=proc.trace_track, data={"proc": proc_id},
                )
            self._reply_log = []
            yield from proc.compute(proc.config.costs.srpc_server_dispatch)
            dispatcher = getattr(self, "_dispatch_%d" % proc_id, None)
            status = _STATUS_OK
            ret_data = b""
            if dispatcher is None:
                status = _STATUS_NO_PROC
            else:
                ret_data = (yield from dispatcher()) or b""
            # Return value + return word as one coalesced stream: when
            # the value fills the result area they leave as one packet.
            return_word = struct.pack("<I", (seq << 16) | status)
            writes = [(self.return_word_off, return_word)]
            if ret_data:
                writes.insert(0, (self.ret_off, ret_data))
            for offset, data in _coalesce(writes):
                yield from self._write(offset, data)
            if self.hardened:
                yield from self._stamp_reply(return_word)
            self.calls_served += 1
            served += 1
            proc.tracer.end(span)

    def _await_call_hardened(self):
        """Wait (bounded) for a CRC-valid new call word; replays the
        last reply when the client retransmits an already-served call."""
        proc = self.proc
        deadline = proc.sim.now + _SERVE_IDLE_US
        window_off = self.call_word_off
        window_len = self.hx_off + 8 - window_off
        xm_lo = self.hx_off - window_off
        while True:
            remaining = deadline - proc.sim.now
            if remaining <= 0:
                raise SrpcTimeoutError(
                    "no call within %.0f us" % _SERVE_IDLE_US
                )
            snapshot = proc.peek(self.buf + self.hx_off, 4)

            def fresh(w, snapshot=snapshot):
                word = struct.unpack_from("<I", w)[0]
                return ((word >> 16) != self._last_seq and word != 0) \
                    or w[xm_lo : xm_lo + 4] != snapshot

            window = yield from bounded_poll(
                proc, self.buf + window_off, window_len, fresh, remaining
            )
            if window is None:
                continue
            raw = yield from self._read(self.call_word_off, 4)
            word = struct.unpack("<I", raw)[0]
            hx = yield from self._read(self.hx_off, 8)
            call_xmit, call_crc = struct.unpack("<II", hx)
            seq = word >> 16
            args_img = yield from self._read(0, self.call_word_off)
            consistent = crc32_of(args_img, raw) == call_crc
            if seq == self._last_seq or word == 0:
                # A consistent image with the seq we already served is a
                # genuine retransmission: the client never saw the reply
                # — serve it again.  An inconsistent one is the next
                # call's stamp racing ahead of its image (or corruption);
                # replaying now would clobber the incoming arguments.
                if (consistent and seq == self._last_seq and word != 0
                        and call_xmit != self._call_xmit_seen
                        and self._reply_log):
                    self._call_xmit_seen = call_xmit
                    yield from self._replay_reply()
                continue
            if not consistent:
                continue  # corrupt arguments: await the retransmission
            self._call_xmit_seen = call_xmit
            return word

    def _stamp_reply(self, return_word: bytes):
        """Checksum the reply state and publish the [xmit][crc] stamp.

        The CRC covers the args area (OUT/INOUT stores live there), the
        result area and the return word — everything the client reads."""
        args_img = yield from self._read(0, self.call_word_off)
        ret_img = yield from self._read(
            self.ret_off, self.return_word_off - self.ret_off
        )
        self._reply_crc = crc32_of(args_img, ret_img, return_word)
        self._ret_xmit = (self._ret_xmit + 1) & 0xFFFFFFFF
        yield from _SrpcEndpointBase._write(
            self, self.hx_off + 8,
            struct.pack("<II", self._ret_xmit, self._reply_crc),
        )

    def _replay_reply(self):
        """Rewrite every store of the last reply, then bump the stamp —
        restores OUT slots a retransmitted call image clobbered."""
        for offset, data in self._reply_log:
            yield from _SrpcEndpointBase._write(self, offset, data)
        self._ret_xmit = (self._ret_xmit + 1) & 0xFFFFFFFF
        yield from _SrpcEndpointBase._write(
            self, self.hx_off + 8,
            struct.pack("<II", self._ret_xmit, self._reply_crc),
        )

    def _ref(self, proc_name: str, param_name: str) -> ParamRef:
        procedure = self.IDL.procedure(proc_name)
        for param in procedure.params:
            if param.name == param_name:
                return ParamRef(self, param)
        raise SrpcError("no parameter %s in %s" % (param_name, proc_name))


def _coalesce(writes: List[Tuple[int, bytes]]) -> List[Tuple[int, bytes]]:
    """Merge adjacent (offset, bytes) stores into consecutive streams."""
    merged: List[Tuple[int, bytearray]] = []
    for offset, data in sorted(writes, key=lambda w: w[0]):
        if merged and merged[-1][0] + len(merged[-1][1]) == offset:
            merged[-1][1].extend(data)
        else:
            merged.append((offset, bytearray(data)))
    return [(offset, bytes(data)) for offset, data in merged]
