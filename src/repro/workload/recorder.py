"""Workload record & replay: frozen request streams for paired A/Bs.

The traffic engine is seed-deterministic, but a *seed* is a weak
artifact: change any sampler knob (load, mix, skew) and the stream it
implies changes wholesale.  A **recorded stream** freezes the actual
request sequence — arrival gaps, op kinds, keys, value sizes — into a
schema'd JSON artifact that replays *verbatim* against any serving
configuration.  Two replays of the same stream see byte-identical
offered traffic, so an A/B over transport or mitigation knobs compares
exactly-paired runs instead of merely same-seed runs.

Because the engine's samplers are pure functions of the spec (dedicated
``random.Random`` streams, spec.py), :func:`record_stream` re-derives
the stream analytically — no simulation run needed — and
``run_workload(spec, stream=...)`` replaying it reproduces the original
report byte for byte (pinned by tests/workload/test_replay_fidelity.py).

Frozen streams are also the substrate for shaped scenarios no sampler
knob can express:

* :func:`flash_crowd` — compress the arrival gaps inside a window by a
  surge factor (a sudden crowd on otherwise-steady traffic);
* :func:`diurnal` — modulate gaps sinusoidally around the mean (a
  day/night load curve compressed into one run);
* :func:`skew_shift` — re-sample the keys of all requests after a cut
  point from a different popularity distribution (a mid-run hot-set
  migration), leaving gaps, ops, and sizes untouched.

See docs/WORKLOADS.md ("Record & replay") for the CLI round trip.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .spec import (
    KeySampler,
    ValueSizeSampler,
    WorkloadSpec,
    exponential_gap_us,
    key_name,
)

__all__ = [
    "SCHEMA", "RecordedStream", "record_stream", "load_stream",
    "save_stream", "flash_crowd", "diurnal", "skew_shift",
]

#: Artifact schema tag; bump on any incompatible layout change.
SCHEMA = "repro.workload.stream/v1"

# One open-loop entry: (gap_us, op, key, value_size, scan_limit).
# Gaps — not absolute times — so shaping transforms stay local and the
# replayed arrival instants re-accumulate exactly like the generator's.
OpenEntry = Tuple[float, str, str, int, int]
# One closed-loop entry: (op, key, value_size, scan_limit).
ClosedEntry = Tuple[str, str, int, int]


@dataclass
class RecordedStream:
    """A frozen request stream plus its provenance.

    ``requests`` holds open-loop entries (empty for closed streams);
    ``workers`` holds the per-worker closed-loop sequences (empty for
    open streams).  ``meta`` records where the stream came from — the
    source spec fields and any scenario transforms applied — purely for
    humans and reports; replay reads only the entries.
    """

    arrival: str                                  # "open" | "closed"
    requests: List[OpenEntry] = field(default_factory=list)
    workers: List[List[ClosedEntry]] = field(default_factory=list)
    meta: Dict = field(default_factory=dict)

    def __len__(self) -> int:
        """Total requests carried by the stream."""
        if self.arrival == "open":
            return len(self.requests)
        return sum(len(seq) for seq in self.workers)

    def describe(self) -> str:
        """One human line: shape, size, and applied scenarios."""
        scenarios = self.meta.get("scenarios", [])
        suffix = (" scenarios=" + "+".join(s["kind"] for s in scenarios)
                  if scenarios else "")
        return ("stream %s arrival=%s requests=%d%s"
                % (SCHEMA, self.arrival, len(self), suffix))


def _sample_entry(rng: random.Random, spec: WorkloadSpec,
                  keys: KeySampler, sizes: ValueSizeSampler) -> ClosedEntry:
    # Mirror of engine._sample_request — same draws, same order, so a
    # recorded stream is bit-identical to what the live engine samples.
    r = rng.random()
    key = key_name(keys.sample(rng))
    if r < spec.read_fraction:
        return ("get", key, 0, 0)
    if r < spec.read_fraction + spec.scan_fraction:
        return ("scan", key[:4], 0, spec.scan_limit)
    return ("put", key, sizes.sample(rng), 0)


def record_stream(spec: WorkloadSpec) -> RecordedStream:
    """Freeze the request stream ``spec`` implies, without running it.

    Re-performs exactly the ``random.Random`` draws the live engine
    would make (gap, then request, from one stream per generator), so
    ``run_workload(spec)`` and ``run_workload(spec, stream=
    record_stream(spec))`` produce byte-identical reports.
    """
    spec.validate()
    keys = KeySampler(spec.keys, spec.key_distribution, spec.zipf_s)
    sizes = ValueSizeSampler(spec.value_sizes)
    meta = {
        "seed": spec.seed,
        "load": spec.load,
        "read_fraction": spec.read_fraction,
        "scan_fraction": spec.scan_fraction,
        "keys": spec.keys,
        "key_distribution": spec.key_distribution,
        "zipf_s": spec.zipf_s,
        "concurrency": spec.concurrency,
        "scenarios": [],
    }
    if spec.arrival == "open":
        rng = random.Random(spec.seed)
        entries: List[OpenEntry] = []
        for _ in range(spec.requests):
            gap = exponential_gap_us(rng, spec.load)
            op, key, size, limit = _sample_entry(rng, spec, keys, sizes)
            entries.append((gap, op, key, size, limit))
        return RecordedStream("open", requests=entries, meta=meta)
    workers: List[List[ClosedEntry]] = []
    for wid in range(spec.concurrency):
        rng = random.Random(spec.seed * 1_000_003 + wid)
        quota = spec.requests // spec.concurrency
        if wid < spec.requests % spec.concurrency:
            quota += 1
        workers.append([_sample_entry(rng, spec, keys, sizes)
                        for _ in range(quota)])
    return RecordedStream("closed", workers=workers, meta=meta)


def save_stream(stream: RecordedStream, path: str) -> None:
    """Write ``stream`` as a schema'd JSON artifact.

    Floats go through ``repr`` (the json module's default), which
    round-trips IEEE doubles exactly — a reloaded stream replays on the
    bit-identical arrival instants.
    """
    doc = {
        "schema": SCHEMA,
        "arrival": stream.arrival,
        "meta": stream.meta,
        "requests": [list(e) for e in stream.requests],
        "workers": [[list(e) for e in seq] for seq in stream.workers],
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
        fh.write("\n")


def load_stream(path: str) -> RecordedStream:
    """Load a stream artifact written by :func:`save_stream`."""
    with open(path) as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != SCHEMA:
        raise ValueError("unsupported stream schema %r (want %r)"
                         % (schema, SCHEMA))
    if doc.get("arrival") not in ("open", "closed"):
        raise ValueError("stream has unknown arrival %r" % doc.get("arrival"))
    return RecordedStream(
        arrival=doc["arrival"],
        requests=[(float(g), str(op), str(key), int(size), int(limit))
                  for g, op, key, size, limit in doc.get("requests", [])],
        workers=[[(str(op), str(key), int(size), int(limit))
                  for op, key, size, limit in seq]
                 for seq in doc.get("workers", [])],
        meta=doc.get("meta", {}),
    )


def _require_open(stream: RecordedStream, what: str) -> None:
    if stream.arrival != "open":
        raise ValueError("%s shapes arrival gaps, which closed-loop "
                         "streams do not have" % what)


def _noted(stream: RecordedStream, entries: List[OpenEntry],
           note: Dict) -> RecordedStream:
    meta = dict(stream.meta)
    meta["scenarios"] = list(meta.get("scenarios", [])) + [note]
    return RecordedStream("open", requests=entries, meta=meta)


def flash_crowd(stream: RecordedStream, start_us: float, duration_us: float,
                factor: float) -> RecordedStream:
    """A surge: gaps of arrivals inside the window shrink by ``factor``.

    The window is evaluated against the *original* arrival instants
    (accumulated gaps), so the crowd covers the intended stretch of the
    source timeline rather than drifting with its own compression.
    """
    _require_open(stream, "flash_crowd")
    if factor <= 0.0:
        raise ValueError("surge factor must be positive")
    entries: List[OpenEntry] = []
    at = 0.0
    for gap, op, key, size, limit in stream.requests:
        at += gap
        if start_us <= at < start_us + duration_us:
            gap = gap / factor
        entries.append((gap, op, key, size, limit))
    return _noted(stream, entries, {
        "kind": "flash_crowd", "start_us": start_us,
        "duration_us": duration_us, "factor": factor})


def diurnal(stream: RecordedStream, period_us: float,
            amplitude: float) -> RecordedStream:
    """A day/night curve: modulate gaps by ``1/(1 + A*sin(2πt/T))``.

    ``amplitude`` in [0, 1): at the sinusoid's peak the instantaneous
    offered load is ``(1+A)×`` the mean, at its trough ``(1-A)×``.
    """
    _require_open(stream, "diurnal")
    if period_us <= 0.0:
        raise ValueError("diurnal period must be positive")
    if not 0.0 <= amplitude < 1.0:
        raise ValueError("diurnal amplitude must be in [0, 1)")
    entries: List[OpenEntry] = []
    at = 0.0
    for gap, op, key, size, limit in stream.requests:
        at += gap
        scale = 1.0 + amplitude * math.sin(2.0 * math.pi * at / period_us)
        entries.append((gap / scale, op, key, size, limit))
    return _noted(stream, entries, {
        "kind": "diurnal", "period_us": period_us, "amplitude": amplitude})


def skew_shift(stream: RecordedStream, at_request: int,
               key_distribution: str = "zipf", zipf_s: float = 1.1,
               reseed: int = 1) -> RecordedStream:
    """A mid-run hot-set migration: re-key requests from ``at_request`` on.

    GET and PUT keys after the cut point are re-sampled from a fresh
    popularity distribution over the same keyspace (scan prefixes ride
    along untouched); gaps, op mix, and value sizes are preserved, so
    the A/B isolates *which keys are hot* from everything else.
    """
    _require_open(stream, "skew_shift")
    keyspace = int(stream.meta.get("keys", 0))
    if keyspace < 1:
        raise ValueError("stream meta lacks the keyspace size")
    if not 0 <= at_request <= len(stream.requests):
        raise ValueError("cut point outside the stream")
    sampler = KeySampler(keyspace, key_distribution, zipf_s)
    rng = random.Random(int(stream.meta.get("seed", 0)) * 2_000_003 + reseed)
    entries: List[OpenEntry] = []
    for index, (gap, op, key, size, limit) in enumerate(stream.requests):
        if index >= at_request and op in ("get", "put"):
            key = key_name(sampler.sample(rng))
        entries.append((gap, op, key, size, limit))
    return _noted(stream, entries, {
        "kind": "skew_shift", "at_request": at_request,
        "key_distribution": key_distribution, "zipf_s": zipf_s})
