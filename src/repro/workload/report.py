"""The workload run report: tail latency, throughput, utilization.

Rendered entirely from simulated quantities — no wall-clock, no host
state — so the same seed produces a byte-identical report, which the
determinism tests (and the acceptance criteria) compare directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import TAIL_PERCENTILES, LatencyHistogram
from ..bench.report import format_table

__all__ = ["WorkloadReport"]


@dataclass
class WorkloadReport:
    """Everything one :func:`~repro.workload.engine.run_workload` measured."""

    spec_line: str
    transport: str
    arrival: str
    offered_load: float          # ops/s (0.0 for closed loop)
    duration_us: float           # measurement window
    completed: int
    errors: int
    misses: int
    failovers: int
    corruptions: int
    overall: LatencyHistogram
    per_op: Dict[str, LatencyHistogram]
    utilization: str             # the metrics-registry table
    service_lines: List[str] = field(default_factory=list)
    fault_lines: List[str] = field(default_factory=list)
    telemetry_lines: List[str] = field(default_factory=list)
    overload_lines: List[str] = field(default_factory=list)
    consistency_lines: List[str] = field(default_factory=list)
    rejected: int = 0            # requests shed past the retry budget
    in_slo: int = 0              # completions within slo_latency_us
    slo_latency_us: float = 0.0  # the goodput threshold (0 = off)
    #: Structured replica-correctness extras (None when the knobs are
    #: off): the staleness tallies (``reads``/``stale``) and the
    #: anti-entropy convergence record (rounds, repaired, series).
    #: Machine-readable companions to ``consistency_lines`` for the
    #: JSON artifacts and the consistency experiments.
    staleness: Optional[Dict[str, int]] = None
    convergence: Optional[dict] = None
    #: Scheduler entries the run dispatched (``Simulator.
    #: events_executed``) — the denominator of the engine-speed metric
    #: (bench/simspeed).  Never rendered into the text report, so the
    #: determinism goldens are unaffected.
    events_executed: int = 0
    #: The run's recorded spans when ``spec.trace`` was set, else None.
    #: Carried for trace assembly (``python -m repro explain``) and the
    #: observability tests; never rendered into the text report, so the
    #: determinism goldens are unaffected.
    spans: Optional[list] = None
    #: The metrics-registry snapshot (``{"now": ..., "entries": [...]}``)
    #: when ``spec.trace`` was set, else None — the contention source
    #: for ``python -m repro profile``.  Never rendered into the text
    #: report, like ``spans``.
    metrics: Optional[dict] = None

    @property
    def throughput_ops_s(self) -> float:
        """Completed requests per second of measurement window."""
        if self.duration_us <= 0.0:
            return 0.0
        return self.completed / (self.duration_us / 1e6)

    @property
    def goodput_ops_s(self) -> float:
        """Useful completions per second: within-SLO when an SLO
        threshold was set, otherwise all completions."""
        if self.duration_us <= 0.0:
            return 0.0
        useful = self.in_slo if self.slo_latency_us > 0.0 else self.completed
        return useful / (self.duration_us / 1e6)

    def percentile(self, p: float) -> float:
        """Overall latency percentile (µs)."""
        return self.overall.percentile(p)

    def latency_rows(self) -> List[List[str]]:
        """The per-op latency table (one row per op plus OVERALL)."""
        header = ["op", "count", "mean us"] + [
            "p%g us" % p for p in TAIL_PERCENTILES] + ["max us"]
        rows = [header]
        entries = [(name, hist) for name, hist in sorted(self.per_op.items())
                   if hist.count]
        entries.append(("OVERALL", self.overall))
        for name, hist in entries:
            rows.append([name, str(hist.count), "%.2f" % hist.mean]
                        + ["%.2f" % hist.percentile(p)
                           for p in TAIL_PERCENTILES]
                        + ["%.2f" % hist.max])
        return rows

    def report(self) -> str:
        """The full run report as deterministic text."""
        lines = [self.spec_line]
        lines.append(
            "window %.1f us  completed %d  throughput %.0f ops/s"
            % (self.duration_us, self.completed, self.throughput_ops_s))
        if self.offered_load > 0.0:
            lines.append("offered load %.0f ops/s  (achieved/offered = %.2f)"
                         % (self.offered_load,
                            self.throughput_ops_s / self.offered_load))
        lines.append(
            "errors %d  misses %d  failovers %d  corruptions %d"
            % (self.errors, self.misses, self.failovers, self.corruptions))
        lines.append("")
        lines.extend(format_table(self.latency_rows()))
        if self.service_lines:
            lines.append("")
            lines.extend(self.service_lines)
        if self.overload_lines:
            # Conditional, like the telemetry block: overload-off
            # reports stay byte-identical to the goldens.
            lines.append("")
            lines.extend(self.overload_lines)
        if self.consistency_lines:
            # Conditional, like the overload block: runs without the
            # replica-correctness knobs keep golden-identical reports.
            lines.append("")
            lines.extend(self.consistency_lines)
        if self.telemetry_lines:
            # Conditional, like the fault block: telemetry-off reports
            # stay byte-identical to the zero-regression goldens.
            lines.append("")
            lines.extend(self.telemetry_lines)
        if self.fault_lines:
            lines.append("")
            lines.extend(self.fault_lines)
        lines.append("")
        lines.append("per-resource utilization (registered metrics):")
        lines.append(self.utilization)
        return "\n".join(lines)
