"""The traffic engine: drive the KV service inside the DES and measure.

Workers are simulated processes placed round-robin over the mesh nodes,
each owning a :class:`~repro.apps.kv.KVClient` (so every worker talks
to every shard).  Arrivals are either:

* **open loop** — a Poisson arrival process stamps requests into a
  dispatch queue at the offered load, independent of completions;
  latency is *completion minus arrival*, so queueing delay shows up in
  the tail and the saturation knee emerges past capacity; or
* **closed loop** — each worker issues back-to-back requests (plus
  optional think time), the classic fixed-concurrency load generator
  that can never overrun the service.

The engine is seed-deterministic end to end: sampling uses dedicated
``random.Random`` streams, the dispatch queue is FIFO, and the report
contains only simulated quantities.  Runs use
:func:`repro.testbed.make_system`, so every workload run is subject to
the conftest invariant audit (mesh conservation, span balance, queue
sanity) like any other test workload.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from ..apps.kv import (
    KVClient,
    KVService,
    KvRejectedError,
    ST_ERROR,
    ST_OK,
    VERSION_ZERO,
)
from ..analysis import LatencyHistogram
from ..hardware.config import MachineConfig
from ..obs import FlightRecorder, SloMonitor, TelemetrySampler
from ..obs import profile as profiling
from ..sim import Store
from ..sim.faults import FaultPlan
from ..testbed import Rendezvous, make_system
from .backpressure import BackpressureGovernor
from .recorder import RecordedStream
from .report import WorkloadReport
from .spec import (
    KeySampler,
    ValueSizeSampler,
    WorkloadSpec,
    exponential_gap_us,
    key_name,
    value_bytes,
)

__all__ = ["run_workload"]

_OPS = ("get", "put", "scan")


def _sample_request(rng: random.Random, spec: WorkloadSpec,
                    keys: KeySampler, sizes: ValueSizeSampler):
    """One request tuple ``(op, key, value_size, scan_limit)``."""
    r = rng.random()
    key = key_name(keys.sample(rng))
    if r < spec.read_fraction:
        return ("get", key, 0, 0)
    if r < spec.read_fraction + spec.scan_fraction:
        return ("scan", key[:4], 0, spec.scan_limit)
    return ("put", key, sizes.sample(rng), 0)


def run_workload(spec: WorkloadSpec,
                 fault_plan: Optional[FaultPlan] = None,
                 stream: Optional[RecordedStream] = None) -> WorkloadReport:
    """Run one complete workload and return its report.

    Boots a machine, starts the KV service, pre-loads the keyspace,
    drives ``spec.requests`` requests through it, then drains the
    replication fan-out.  With ``fault_plan`` armed the run exercises
    the degraded mode: hardened transports retry, clients fail over to
    replicas, and the run completes (bounded by typed timeouts) rather
    than hanging.

    With ``stream`` (a :class:`~repro.workload.RecordedStream`) the
    engine *replays* that frozen request sequence instead of sampling
    its own: gaps, ops, keys, and sizes come from the artifact, so two
    replays under different serving configs see byte-identical offered
    traffic (docs/WORKLOADS.md, "Record & replay").  The stream must
    match the spec's arrival shape and request count.
    """
    spec.validate()
    if stream is not None:
        if stream.arrival != spec.arrival:
            raise ValueError("stream arrival %r does not match spec "
                             "arrival %r" % (stream.arrival, spec.arrival))
        if len(stream) != spec.requests:
            raise ValueError("stream carries %d requests but the spec "
                             "expects %d" % (len(stream), spec.requests))
        if spec.arrival == "closed" \
                and len(stream.workers) != spec.concurrency:
            raise ValueError("closed stream was recorded for %d workers, "
                             "spec has %d"
                             % (len(stream.workers), spec.concurrency))
    config = (MachineConfig.shrimp_prototype() if spec.nodes == 4
              else MachineConfig.sixteen_node())
    system = make_system(config=config, fault_plan=fault_plan)
    traced = spec.trace
    if traced:
        system.machine.tracer.enabled = True
    sim = system.sim

    # Overload modeling (docs/OVERLOAD.md): with ``cpu_slots`` the
    # node CPUs become contended resources every prioritized compute
    # charge queues on — enabled before the service boots, so its
    # admission controllers front the same schedulers.
    if spec.cpu_slots > 0:
        for node in system.machine.nodes:
            system.machine.metrics.register(node.enable_cpu(spec.cpu_slots))

    service = KVService(system, replicas=spec.replicas,
                        batch=spec.batch_keys > 1,
                        srpc_window=spec.pipeline_window,
                        onesided=spec.onesided_reads,
                        admission=spec.admission,
                        admit_queue=spec.admit_queue,
                        admit_deadline_us=spec.admit_deadline_us,
                        handler_cpu_us=(spec.cpu_op_us
                                        if spec.cpu_slots > 0 else 0.0),
                        versioned=spec.versioned(),
                        repl_queue_cap=spec.repl_queue_cap,
                        antientropy=spec.antientropy,
                        antientropy_interval_us=spec.antientropy_interval_us)
    prefill = random.Random(spec.seed * 7919 + 13)
    sizes = ValueSizeSampler(spec.value_sizes)
    service.preload({
        key_name(i): value_bytes(key_name(i), sizes.sample(prefill))
        for i in range(spec.keys)})

    workers = spec.concurrency
    service.start(
        srpc_handlers=workers if spec.transport == "srpc" else 0,
        socket_handlers=workers if spec.needs_sockets() else 0)

    keys = KeySampler(spec.keys, spec.key_distribution, spec.zipf_s)
    dispatch = Store(sim, name="wl-dispatch-q")
    system.machine.metrics.register(dispatch)
    rdv = Rendezvous(system)
    ready = [0]
    window = {"start": 0.0, "end": 0.0}
    tally = {"completed": 0, "errors": 0, "rejected": 0, "in_slo": 0}
    overall = LatencyHistogram("overall")
    per_op: Dict[str, LatencyHistogram] = {
        op: LatencyHistogram(op) for op in _OPS}

    # Telemetry is strictly additive: the sampler is its own simulated
    # process spawned OUTSIDE the measured handle list (it never
    # finishes), and every hook below checks ``sampler is not None``.
    sampler = slo = recorder = None
    if spec.telemetry:
        if spec.slo_latency_budget > 0.0 or spec.slo_error_budget > 0.0:
            slo = SloMonitor.from_thresholds(
                latency_budget=spec.slo_latency_budget,
                error_budget=spec.slo_error_budget)
        sampler = TelemetrySampler(
            system, interval_us=spec.telemetry_interval_us,
            slow_threshold_us=spec.slo_latency_us, slo=slo)
        recorder = FlightRecorder(system.machine.tracer, sampler)
        sampler.recorder = recorder
        sampler.install()

    # Client-side cooperation: the governor stretches open-loop
    # inter-arrival gaps while rejections exceed its target fraction.
    governor = BackpressureGovernor() if spec.backpressure else None

    # Staleness accounting (``spec.staleness``): ``expected`` holds the
    # newest dot any client's write has been *acknowledged* at, per key,
    # snapshotted when a GET dispatches.  A read answering with an older
    # dot than the snapshot returned a value some acknowledged write
    # already superseded — the replication-lag reads the quorum
    # experiment in docs/REPLICATION.md must drive to zero.
    expected: Dict[str, tuple] = {}
    vreads = {"reads": 0, "stale": 0}

    def _execute(client, op, key, size, limit):
        if op == "get":
            snap = expected.get(key, VERSION_ZERO) if spec.staleness else None
            status, value = yield from client.get(key)
            if status == ST_OK and value:
                if bytes(value) != value_bytes(key, len(value)):
                    client.corruptions += 1
            if snap is not None and status != ST_ERROR:
                vreads["reads"] += 1
                if client.last_version < snap:
                    vreads["stale"] += 1
        elif op == "put":
            status = yield from client.put(key, value_bytes(key, size))
            if spec.staleness and status == ST_OK \
                    and client.last_version > expected.get(key, VERSION_ZERO):
                expected[key] = client.last_version
        else:
            status, _records = yield from client.scan(key, limit)
        return status

    def _record(op, latency, status):
        overall.record(latency)
        per_op[op].record(latency)
        if sampler is not None:
            sampler.window.record(latency, error=status == ST_ERROR)
        if governor is not None:
            governor.note(False)
        if status != ST_ERROR and spec.slo_latency_us > 0.0 \
                and latency <= spec.slo_latency_us:
            tally["in_slo"] += 1
        if status == ST_ERROR:
            tally["errors"] += 1
            # An ST_ERROR means the replica walk exhausted its typed
            # VmmcTimeoutError retries — exactly the incident the
            # flight recorder exists for.
            if recorder is not None:
                recorder.capture("request-error", sim.now)
        else:
            tally["completed"] += 1

    def _reject():
        """Account one request the retry budget could not recover."""
        tally["rejected"] += 1
        if governor is not None:
            governor.note(True)

    def _check_value(client, key, status, value):
        if status == ST_OK and value:
            if bytes(value) != value_bytes(key, len(value)):
                client.corruptions += 1

    # Mitigated open-loop workers drain the dispatch queue in groups of
    # up to ``group`` requests: GETs ride one multi_get batch (when
    # batching is on), other point ops are submitted through the SRPC
    # pipeline window and collected in order.  Latency is still
    # completion minus arrival per request.  ``_EMPTY`` disambiguates
    # "queue empty right now" from a buffered None stop sentinel.
    _EMPTY = object()
    group = max(spec.pipeline_window, spec.batch_keys)
    grouped = spec.arrival == "open" and group > 1 \
        and spec.transport == "srpc"

    def _execute_group(client, batch):
        get_items = []
        handles = []
        for item in batch:
            op, key, size, limit, arrival = item
            if op == "get" and spec.batch_keys > 1:
                get_items.append(item)
            elif op == "scan":
                status = yield from _execute(client, op, key, size, limit)
                _record(op, sim.now - arrival, status)
            elif op == "get":
                handle = yield from client.get_begin(key)
                handles.append((item, handle))
            else:
                handle = yield from client.put_begin(
                    key, value_bytes(key, size))
                handles.append((item, handle))
        if get_items:
            results = yield from client.multi_get(
                [item[1] for item in get_items])
            for item, (status, value) in zip(get_items, results):
                _, key, _, _, arrival = item
                _check_value(client, key, status, value)
                _record("get", sim.now - arrival, status)
        for item, handle in handles:
            op, key, _, _, arrival = item
            status, value = yield from client.collect(handle)
            if op == "get":
                _check_value(client, key, status, value)
            _record(op, sim.now - arrival, status)
        window["end"] = max(window["end"], sim.now)

    clients = []

    class _MitigationMetrics:
        """Metrics-registry adapter for the client-side mitigation layer.

        Registered only for mitigated specs, so unmitigated utilization
        tables (and their goldens) are untouched.  Aggregates over the
        worker clients and their SRPC bindings at snapshot time.
        """

        name = "kv-mitigation"

        def metrics_snapshot(self, now=None):
            lookups = sum(c.cache_lookups for c in clients)
            hits = sum(c.cache_hits for c in clients)
            submits = depth_total = high = 0
            for c in clients:
                for binding in c.rpc.values():
                    submits += binding.submits
                    depth_total += binding.mean_depth * binding.submits
                    high = max(high, binding.inflight_high_water)
            # ``count``/``mean_depth``/``high_water`` are the keys the
            # registry report renders; the rest ride along for
            # ``metrics.snapshot()`` consumers.
            return {
                "name": self.name,
                "kind": "mitigation",
                "count": lookups + submits,
                "mean_depth": depth_total / submits if submits else 0.0,
                "high_water": high,
                "cache_lookups": lookups,
                "cache_hits": hits,
                "cache_hit_rate": hits / lookups if lookups else 0.0,
                "pipeline_submits": submits,
                "spread_reads": sum(c.spread_reads for c in clients),
                "batch_calls": sum(c.batch_calls for c in clients),
                "batched_keys": sum(c.batched_keys for c in clients),
                "onesided_hits": sum(c.onesided_hits for c in clients),
                "onesided_fallbacks": sum(c.onesided_fallbacks
                                          for c in clients),
            }

    if spec.mitigated():
        system.machine.metrics.register(_MitigationMetrics())

    # Host-wide slot-occupancy caches for the one-sided bypass: the
    # workers of one node share what their reads and writes learn about
    # each shard's region, like any per-host client-library cache.
    host_hints = ({node: {} for node in range(spec.nodes)}
                  if spec.onesided_reads else None)

    def make_worker(wid):
        def worker(proc):
            client = KVClient(service, proc, transport=spec.transport,
                              want_sockets=spec.needs_sockets(),
                              client_id=wid,
                              cache_keys=spec.cache_keys,
                              cache_ttl_us=spec.cache_ttl_us,
                              read_spread=spec.read_spread,
                              onesided=spec.onesided_reads,
                              onesided_hints=(
                                  host_hints[wid % spec.nodes]
                                  if host_hints is not None else None),
                              retry_budget=spec.retry_budget,
                              retry_base_us=spec.retry_base_us,
                              retry_jitter=spec.retry_jitter,
                              consistency=spec.consistency,
                              quorum_r=spec.quorum_r,
                              quorum_w=spec.quorum_w,
                              read_repair=spec.read_repair)
            clients.append(client)
            yield from client.connect()
            ready[0] += 1
            if ready[0] == workers:
                window["start"] = sim.now
                rdv.put("go", sim.now)
            yield rdv.get("go")
            if spec.arrival == "open" and grouped:
                stopped = False
                while not stopped:
                    item = dispatch.try_get(_EMPTY)
                    if item is _EMPTY:
                        item = yield dispatch.get()
                    if item is None:
                        break
                    batch = [item]
                    while len(batch) < group:
                        more = dispatch.try_get(_EMPTY)
                        if more is _EMPTY:
                            break
                        if more is None:
                            stopped = True
                            break
                        batch.append(more)
                    yield from _execute_group(client, batch)
            elif spec.arrival == "open":
                while True:
                    item = dispatch.try_get(_EMPTY)
                    if item is _EMPTY:
                        item = yield dispatch.get()
                    if item is None:
                        break
                    op, key, size, limit, arrival = item
                    try:
                        status = yield from _execute(
                            client, op, key, size, limit)
                    except KvRejectedError:
                        _reject()
                    else:
                        _record(op, sim.now - arrival, status)
                    if traced:
                        # Stamp the root span with its dispatch arrival
                        # (the queue wait precedes the span) and the
                        # tenant tag, so per-request profile totals
                        # equal the recorded latency exactly.
                        profiling.tag_root(client, arrival=arrival,
                                           tenant=spec.tenant or None)
                    window["end"] = max(window["end"], sim.now)
                    if spec.read_repair:
                        # After the latency was recorded: repairs ride
                        # the worker's idle gap, not the request tail.
                        yield from client.flush_repairs()
            else:
                rng = random.Random(spec.seed * 1_000_003 + wid)
                quota = spec.requests // workers
                if wid < spec.requests % workers:
                    quota += 1
                for index in range(quota):
                    if stream is not None:
                        op, key, size, limit = stream.workers[wid][index]
                    else:
                        op, key, size, limit = _sample_request(
                            rng, spec, keys, sizes)
                    issued = sim.now
                    try:
                        status = yield from _execute(
                            client, op, key, size, limit)
                    except KvRejectedError:
                        _reject()
                    else:
                        _record(op, sim.now - issued, status)
                    if traced:
                        profiling.tag_root(client, arrival=issued,
                                           tenant=spec.tenant or None)
                    window["end"] = max(window["end"], sim.now)
                    if spec.read_repair:
                        yield from client.flush_repairs()
                    if spec.think_us > 0.0:
                        yield sim.timeout(spec.think_us)
            yield from client.shutdown()
            return client.stats()

        return worker

    handles = [system.spawn(wid % spec.nodes, make_worker(wid),
                            name="wl-worker-%d" % wid)
               for wid in range(workers)]

    if spec.arrival == "open":
        def arrivals(_proc):
            rng = random.Random(spec.seed)
            yield rdv.get("go")
            for index in range(spec.requests):
                # Replay keeps the generator's exact shape: gap first,
                # then the request — the instants and tuples a replayed
                # run stamps are bit-identical to the recorded run's.
                if stream is not None:
                    gap, op, key, size, limit = stream.requests[index]
                else:
                    gap = exponential_gap_us(rng, spec.load)
                if governor is not None:
                    gap *= governor.gap_scale()
                yield sim.timeout(gap)
                if stream is None:
                    op, key, size, limit = _sample_request(
                        rng, spec, keys, sizes)
                dispatch.try_put((op, key, size, limit, sim.now))
            for _ in range(workers):
                dispatch.try_put(None)

        handles.append(system.spawn(0, arrivals, name="wl-arrivals"))

    system.run_processes(handles, timeout=spec.timeout_us)
    service.shutdown()
    system.run_processes(service.handles, timeout=spec.timeout_us)

    spec_line = ("workload seed=%d transport=%s arrival=%s load=%g "
                 "concurrency=%d requests=%d keys=%d dist=%s nodes=%d "
                 "replicas=%d read=%.2f scan=%.2f"
                 % (spec.seed, spec.transport, spec.arrival, spec.load,
                    spec.concurrency, spec.requests, spec.keys,
                    spec.key_distribution, spec.nodes, spec.replicas,
                    spec.read_fraction, spec.scan_fraction))
    if spec.mitigated():
        # Conditional so unmitigated reports stay byte-identical to the
        # pre-mitigation engine (the zero-regression goldens).
        spec_line += " " + spec.mitigation_label()
    if spec.telemetry:
        spec_line += " " + spec.telemetry_label()
    if spec.overloaded():
        spec_line += " " + spec.overload_label()
    if spec.consistent():
        # Conditional so eventually-consistent reports stay
        # byte-identical to the zero-regression goldens.
        spec_line += " " + spec.consistency_label()
    if spec.tenant:
        # Conditional so untagged reports keep golden-identical lines.
        spec_line += " tenant=%s" % spec.tenant
    misses = sum(c.misses for c in clients)
    failovers = sum(c.failovers for c in clients)
    corruptions = sum(c.corruptions for c in clients)
    service_lines = [
        "service: keys=%d repl_applied_total=%s repl_send_failures=%d "
        "map_mismatches=%s"
        % (service.total_keys(), service.repl_applied_total,
           service.repl_send_failures, service.map_mismatches)]
    for node_label, counters in service.counters().items():
        service_lines.append(
            "  %s: keys=%d gets=%d hits=%d puts=%d deletes=%d scans=%d "
            "repl_applied=%d"
            % (node_label, counters["keys"], counters["gets"],
               counters["hits"], counters["puts"], counters["deletes"],
               counters["scans"], counters["repl_applied"]))
    if spec.mitigated():
        lookups = sum(c.cache_lookups for c in clients)
        hits = sum(c.cache_hits for c in clients)
        submits = depth_total = 0
        for c in clients:
            for binding in c.rpc.values():
                submits += binding.submits
                depth_total += binding.mean_depth * binding.submits
        service_lines.append(
            "mitigation: cache_hits=%d/%d (%.1f%%) spread_reads=%d "
            "batch_calls=%d batched_keys=%d pipeline_submits=%d "
            "mean_depth=%.2f onesided_hits=%d onesided_fallbacks=%d"
            % (hits, lookups, 100.0 * hits / lookups if lookups else 0.0,
               sum(c.spread_reads for c in clients),
               sum(c.batch_calls for c in clients),
               sum(c.batched_keys for c in clients),
               submits, depth_total / submits if submits else 0.0,
               sum(c.onesided_hits for c in clients),
               sum(c.onesided_fallbacks for c in clients)))
    fault_lines = []
    if fault_plan is not None:
        fault_lines = system.faults.report().splitlines()
    telemetry_lines = []
    if sampler is not None:
        telemetry_lines.extend(sampler.report().splitlines())
        if slo is not None:
            telemetry_lines.extend(slo.report().splitlines())
        telemetry_lines.extend(recorder.report().splitlines())
    overload_lines = []
    if spec.overloaded():
        controllers = list(service.admission.values())
        overload_lines.append(
            "overload: served=%d shed_full=%d shed_brownout=%d "
            "shed_deadline=%d brownouts=%d retries=%d slowdown_peak=%.2f"
            % (sum(c.served for c in controllers),
               sum(c.rejected_full for c in controllers),
               sum(c.rejected_brownout for c in controllers),
               sum(c.shed_deadline for c in controllers),
               sum(c.brownouts for c in controllers),
               sum(c.retries for c in clients),
               governor.peak if governor is not None else 1.0))
        duration = max(0.0, window["end"] - window["start"])
        answered = tally["completed"] + tally["errors"]
        total = answered + tally["rejected"]
        overload_lines.append(
            "rejected: %d of %d offered (%.1f%%)"
            % (tally["rejected"], spec.requests,
               100.0 * tally["rejected"] / spec.requests))
        goodput = (tally["in_slo"] if spec.slo_latency_us > 0.0
                   else tally["completed"])
        overload_lines.append(
            "goodput: %d in-slo of %d completed (%.0f ops/s); "
            "completed+errors+rejected = %d+%d+%d = %d of %d offered [%s]"
            % (goodput, tally["completed"],
               goodput * 1e6 / duration if duration > 0 else 0.0,
               tally["completed"], tally["errors"], tally["rejected"],
               total, spec.requests,
               "OK" if total == spec.requests else "VIOLATED"))

    staleness = convergence = None
    if spec.staleness:
        staleness = {"reads": vreads["reads"], "stale": vreads["stale"]}
    if spec.antientropy:
        ae = service.ae_stats
        convergence = {
            "rounds": ae.rounds,
            "repaired": ae.repaired,
            "divergent_last": ae.divergent_last,
            "divergent_high": ae.divergent_high,
            "converged_at_us": ae.converged_at,
            "sweep_failures": ae.sweep_failures,
            "series": ae.series_payload(),
        }
    consistency_lines = []
    if spec.consistent():
        if spec.staleness:
            reads = vreads["reads"]
            consistency_lines.append(
                "staleness: reads=%d stale=%d rate=%.4f"
                % (reads, vreads["stale"],
                   vreads["stale"] / reads if reads else 0.0))
        if spec.versioned():
            consistency_lines.append(
                "repair: detected=%d repaired=%d quorum_reads=%d "
                "quorum_writes=%d"
                % (sum(c.stale_detected for c in clients),
                   sum(c.repairs for c in clients),
                   sum(c.quorum_reads for c in clients),
                   sum(c.quorum_writes for c in clients)))
        if spec.repl_queue_cap > 0:
            consistency_lines.append(
                "repl drops: queue_full=%d crash_window=%d"
                % (sum(service.repl_drops.values()),
                   service.repl_crash_drops))
        if spec.antientropy:
            ae = service.ae_stats
            consistency_lines.append(
                "convergence: rounds=%d repaired=%d divergent=%d "
                "converged_at=%s"
                % (ae.rounds, ae.repaired, ae.divergent_last,
                   ("%.1f" % ae.converged_at)
                   if ae.converged_at is not None else "never"))
            if ae.series:
                consistency_lines.append(
                    "  series: " + " ".join(
                        "%.0f:%d" % (t, n) for t, n in ae.series))

    return WorkloadReport(
        spec_line=spec_line,
        transport=spec.transport,
        arrival=spec.arrival,
        offered_load=spec.load if spec.arrival == "open" else 0.0,
        duration_us=max(0.0, window["end"] - window["start"]),
        completed=tally["completed"],
        errors=tally["errors"],
        rejected=tally["rejected"],
        in_slo=tally["in_slo"],
        slo_latency_us=spec.slo_latency_us,
        misses=misses,
        failovers=failovers,
        corruptions=corruptions,
        overall=overall,
        per_op=per_op,
        utilization=system.machine.utilization_report(min_count=1),
        service_lines=service_lines,
        fault_lines=fault_lines,
        telemetry_lines=telemetry_lines,
        overload_lines=overload_lines,
        consistency_lines=consistency_lines,
        staleness=staleness,
        convergence=convergence,
        events_executed=sim.events_executed,
        spans=list(system.machine.tracer.spans) if spec.trace else None,
        metrics=({"now": sim.now,
                  "entries": system.machine.metrics.snapshot()}
                 if spec.trace else None),
    )
