"""Workload specification and the seed-deterministic samplers.

Everything random flows from ``random.Random(spec.seed)`` streams that
draw **only** ``rng.random()`` — no distribution helpers whose
algorithms could differ between Python releases — so the same spec
produces the same request sequence, byte for byte, everywhere.

The shapes:

* **arrivals** — open-loop Poisson (exponential inter-arrival gaps at
  the offered load) or closed-loop fixed concurrency with optional
  think time;
* **key popularity** — Zipf(s) over the keyspace (rank 1 hottest) or
  uniform, sampled by inverse CDF from a precomputed table;
* **operation mix** — read fraction, scan fraction, remainder writes;
* **value sizes** — a discrete distribution of (size, weight) pairs.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, replace
from typing import List, Sequence, Tuple

from ..apps.kv import protocol as wire

__all__ = [
    "WorkloadSpec", "KeySampler", "ValueSizeSampler",
    "exponential_gap_us", "key_name", "value_bytes",
]

#: (value size in bytes, relative weight) — a small-object serving mix.
DEFAULT_VALUE_SIZES: Tuple[Tuple[int, float], ...] = (
    (32, 0.50), (128, 0.35), (512, 0.12), (1024, 0.03),
)


def key_name(index: int) -> str:
    """The canonical key for keyspace index ``index``."""
    return "k%06d" % index


def value_bytes(key: str, size: int) -> bytes:
    """The deterministic value pattern for ``key`` at ``size`` bytes.

    A function of the key alone (cycled to length), so a reader can
    verify any fetched value against the pattern without knowing which
    write produced it — the workload's end-to-end integrity check.
    """
    if size <= 0:
        return b""
    unit = key.encode() + b"/"
    return (unit * (size // len(unit) + 1))[:size]


def exponential_gap_us(rng: random.Random, rate_per_s: float) -> float:
    """One Poisson inter-arrival gap (µs) at ``rate_per_s`` offered load."""
    if rate_per_s <= 0.0:
        raise ValueError("offered load must be positive")
    u = rng.random()
    while u <= 0.0:  # pragma: no cover - p < 2**-53
        u = rng.random()
    return -math.log(u) * 1e6 / rate_per_s


class KeySampler:
    """Inverse-CDF sampling of key indices, Zipfian or uniform."""

    def __init__(self, keys: int, distribution: str = "zipf",
                 zipf_s: float = 1.1):
        if keys < 1:
            raise ValueError("keyspace must hold at least one key")
        if distribution not in ("zipf", "uniform"):
            raise ValueError("unknown key distribution %r" % distribution)
        self.keys = keys
        self.distribution = distribution
        self._cdf: List[float] = []
        if distribution == "zipf":
            weights = [1.0 / (i + 1) ** zipf_s for i in range(keys)]
            total = sum(weights)
            acc = 0.0
            for w in weights:
                acc += w / total
                self._cdf.append(acc)
            self._cdf[-1] = 1.0  # guard against rounding shortfall

    def sample(self, rng: random.Random) -> int:
        """One key index (0 = most popular under Zipf)."""
        if self.distribution == "uniform":
            return min(int(rng.random() * self.keys), self.keys - 1)
        return bisect.bisect_left(self._cdf, rng.random())


class ValueSizeSampler:
    """Discrete (size, weight) sampling by inverse CDF."""

    def __init__(self, sizes: Sequence[Tuple[int, float]] = DEFAULT_VALUE_SIZES):
        if not sizes:
            raise ValueError("need at least one value size")
        total = float(sum(w for _, w in sizes))
        if total <= 0.0:
            raise ValueError("value-size weights must sum positive")
        self.sizes = [s for s, _ in sizes]
        for s in self.sizes:
            if not 0 < s <= wire.VALUE_BOUND:
                raise ValueError("value size %d outside (0, %d]"
                                 % (s, wire.VALUE_BOUND))
        self._cdf = []
        acc = 0.0
        for _, w in sizes:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        """One value size in bytes."""
        return self.sizes[bisect.bisect_left(self._cdf, rng.random())]


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines one workload run (hashable, replayable)."""

    seed: int = 1
    transport: str = "srpc"          # "srpc" | "sockets"
    arrival: str = "open"            # "open" | "closed"
    load: float = 20000.0            # offered ops/s (open loop)
    concurrency: int = 8             # worker processes (both loops)
    requests: int = 400              # total requests in the run
    read_fraction: float = 0.90
    scan_fraction: float = 0.0       # scans ride the socket transport
    scan_limit: int = 8
    keys: int = 200
    key_distribution: str = "zipf"   # "zipf" | "uniform"
    zipf_s: float = 1.1
    value_sizes: Tuple[Tuple[int, float], ...] = DEFAULT_VALUE_SIZES
    nodes: int = 4                   # 4 (2x2 prototype) or 16 (4x4)
    replicas: int = 2
    think_us: float = 0.0            # closed-loop think time
    trace: bool = False              # record kv.client spans
    timeout_us: float = 120_000_000.0
    # Telemetry / SLO knobs (all default off — with them off the run,
    # its wire traffic, and its report are byte-identical to the
    # pre-telemetry engine, which the zero-regression goldens pin):
    telemetry: bool = False          # run the time-series sampler
    telemetry_interval_us: float = 500.0
    slo_latency_us: float = 0.0      # per-request "slow" threshold
    slo_latency_budget: float = 0.0  # allowed slow fraction (0 = off)
    slo_error_budget: float = 0.0    # allowed error fraction (0 = off)
    # Serving-stack mitigation knobs (all default off — the defaults
    # reproduce the unmitigated engine byte for byte):
    pipeline_window: int = 1         # SRPC multi-call window per binding
    batch_keys: int = 1              # >1 groups GETs into multi_get calls
    cache_keys: int = 0              # client LRU entries (0 = off)
    cache_ttl_us: float = 0.0        # cache entry lifetime (0 = no TTL)
    read_spread: bool = False        # rotate reads over the replica set
    onesided_reads: bool = False     # GETs bypass the server over VMMC
    # Overload-control knobs (docs/OVERLOAD.md; all default off — the
    # defaults reproduce the uncontrolled engine byte for byte):
    cpu_slots: int = 0               # per-node CPU scheduler slots (0 = off)
    cpu_op_us: float = 10.0          # handler CPU per op once cpu_slots > 0
    admission: bool = False          # server-side admission control
    admit_queue: int = 32            # bounded accept-queue occupancy
    admit_deadline_us: float = 0.0   # queueing-delay budget (0 = no deadline)
    retry_budget: int = 0            # client retries after a rejection
    retry_base_us: float = 100.0     # backoff base (doubles per attempt)
    retry_jitter: float = 0.5        # jitter fraction on each backoff
    backpressure: bool = False       # adaptive open-loop rate trimming
    # Replica-correctness knobs (docs/REPLICATION.md; all default off —
    # the defaults reproduce the eventually-consistent engine byte for
    # byte, which the zero-regression goldens pin):
    consistency: str = "eventual"    # "eventual" | "session" | "quorum"
    quorum_r: int = 0                # read quorum size (0 = majority)
    quorum_w: int = 0                # write quorum size (0 = majority)
    read_repair: bool = False        # repair stale replicas off-path
    staleness: bool = False          # measure the stale-read rate
    antientropy: bool = False        # background Merkle sweeper
    antientropy_interval_us: float = 2000.0  # gap between sweeps
    repl_queue_cap: int = 0          # bound replication queues (0 = inf)
    # Profiling tag (docs/OBSERVABILITY.md "Profiles & diffs"; default
    # off — the empty tenant adds nothing to spans or the spec line,
    # so untagged reports stay byte-identical to the goldens):
    tenant: str = ""                 # label traced requests for grouping

    def mitigated(self) -> bool:
        """Whether any hot-key/pipelining mitigation knob is non-default."""
        return (self.pipeline_window > 1 or self.batch_keys > 1
                or self.cache_keys > 0 or self.read_spread
                or self.onesided_reads)

    def mitigation_label(self) -> str:
        """The spec-line suffix describing the enabled mitigations."""
        return ("pipeline=%d batch=%d cache=%d ttl=%g spread=%d onesided=%d"
                % (self.pipeline_window, self.batch_keys, self.cache_keys,
                   self.cache_ttl_us, int(self.read_spread),
                   int(self.onesided_reads)))

    def telemetry_label(self) -> str:
        """The spec-line suffix describing the telemetry configuration."""
        return ("telemetry interval=%g slo_lat=%g lat_budget=%g "
                "err_budget=%g"
                % (self.telemetry_interval_us, self.slo_latency_us,
                   self.slo_latency_budget, self.slo_error_budget))

    def overloaded(self) -> bool:
        """Whether any overload-control knob is non-default."""
        return (self.cpu_slots > 0 or self.admission
                or self.retry_budget > 0 or self.backpressure)

    def overload_label(self) -> str:
        """The spec-line suffix describing the overload configuration."""
        return ("overload cpu=%d op_us=%g admission=%d queue=%d "
                "deadline=%g retry=%d base=%g jitter=%g backpressure=%d"
                % (self.cpu_slots, self.cpu_op_us, int(self.admission),
                   self.admit_queue, self.admit_deadline_us,
                   self.retry_budget, self.retry_base_us, self.retry_jitter,
                   int(self.backpressure)))

    def versioned(self) -> bool:
        """Whether the run needs the v3 (versioned) shard interface."""
        return (self.consistency != "eventual" or self.read_repair
                or self.staleness)

    def consistent(self) -> bool:
        """Whether any replica-correctness knob is non-default."""
        return (self.versioned() or self.antientropy
                or self.repl_queue_cap > 0)

    def consistency_label(self) -> str:
        """The spec-line suffix describing the consistency configuration."""
        return ("consistency=%s r=%d w=%d repair=%d staleness=%d "
                "antientropy=%d ae_interval=%g repl_cap=%d"
                % (self.consistency, self.quorum_r, self.quorum_w,
                   int(self.read_repair), int(self.staleness),
                   int(self.antientropy), self.antientropy_interval_us,
                   self.repl_queue_cap))

    def validate(self) -> None:
        """Raise ValueError on an inconsistent spec."""
        if self.transport not in ("srpc", "sockets"):
            raise ValueError("unknown transport %r" % self.transport)
        if self.arrival not in ("open", "closed"):
            raise ValueError("unknown arrival process %r" % self.arrival)
        if self.nodes not in (4, 16):
            raise ValueError("nodes must be 4 or 16 (the two calibrated "
                             "machine configurations)")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.requests < 1:
            raise ValueError("requests must be >= 1")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        if not 0.0 <= self.scan_fraction <= 1.0 - self.read_fraction:
            raise ValueError("scan_fraction must fit beside read_fraction")
        if self.arrival == "open" and self.load <= 0.0:
            raise ValueError("open-loop load must be positive")
        if not 1 <= self.pipeline_window <= 64:
            raise ValueError("pipeline_window must be in [1, 64]")
        if not 1 <= self.batch_keys <= wire.MULTI_GET_MAX:
            raise ValueError("batch_keys must be in [1, %d]"
                             % wire.MULTI_GET_MAX)
        if self.cache_keys < 0:
            raise ValueError("cache_keys must be >= 0")
        if self.cache_ttl_us < 0.0:
            raise ValueError("cache_ttl_us must be >= 0")
        if (self.pipeline_window > 1 or self.batch_keys > 1) \
                and self.transport != "srpc":
            raise ValueError("pipelining and batching need the srpc "
                             "transport")
        if self.onesided_reads and self.transport != "srpc":
            raise ValueError("one-sided reads need the srpc transport "
                             "(their fallback path)")
        if self.telemetry_interval_us <= 0.0:
            raise ValueError("telemetry_interval_us must be positive")
        if self.slo_latency_us < 0.0:
            raise ValueError("slo_latency_us must be >= 0")
        for budget in (self.slo_latency_budget, self.slo_error_budget):
            if budget and not 0.0 < budget < 1.0:
                raise ValueError("SLO budgets must be 0 (off) or in (0, 1)")
        if self.slo_latency_budget > 0.0 and self.slo_latency_us <= 0.0:
            raise ValueError("slo_latency_budget needs slo_latency_us")
        if self.cpu_slots < 0:
            raise ValueError("cpu_slots must be >= 0")
        if self.cpu_op_us < 0.0:
            raise ValueError("cpu_op_us must be >= 0")
        if self.admit_queue < 1:
            raise ValueError("admit_queue must be >= 1")
        if self.admit_deadline_us < 0.0:
            raise ValueError("admit_deadline_us must be >= 0")
        if self.retry_budget < 0:
            raise ValueError("retry_budget must be >= 0")
        if self.retry_base_us <= 0.0:
            raise ValueError("retry_base_us must be positive")
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError("retry_jitter must be in [0, 1]")
        if (self.admission or self.retry_budget > 0 or self.backpressure) \
                and (self.pipeline_window > 1 or self.batch_keys > 1):
            raise ValueError("overload control composes with the plain "
                             "request path only (pipeline_window=1, "
                             "batch_keys=1)")
        if self.backpressure and self.arrival != "open":
            raise ValueError("backpressure governs the open-loop arrival "
                             "process only")
        if self.consistency not in ("eventual", "session", "quorum"):
            raise ValueError("unknown consistency mode %r"
                             % self.consistency)
        if self.quorum_r < 0 or self.quorum_w < 0:
            raise ValueError("quorum_r/quorum_w must be >= 0")
        if (self.quorum_r or self.quorum_w) and self.consistency != "quorum":
            raise ValueError("quorum_r/quorum_w apply to quorum mode only")
        if self.consistency == "quorum":
            majority = self.replicas // 2 + 1
            r = self.quorum_r or majority
            w = self.quorum_w or majority
            if not 1 <= r <= self.replicas or not 1 <= w <= self.replicas:
                raise ValueError("quorum sizes must be in [1, replicas]")
            if r + w <= self.replicas:
                raise ValueError("quorum mode needs R + W > replicas "
                                 "(read/write quorum intersection)")
        if self.versioned():
            if self.transport != "srpc":
                raise ValueError("consistency modes need the srpc "
                                 "transport (the v3 shard interface)")
            if self.pipeline_window > 1 or self.batch_keys > 1:
                raise ValueError("consistency modes compose with the "
                                 "plain request path only "
                                 "(pipeline_window=1, batch_keys=1)")
            if self.onesided_reads:
                raise ValueError("one-sided reads bypass the versioned "
                                 "interface; disable them with "
                                 "consistency modes")
            if self.cache_keys > 0:
                raise ValueError("the client cache serves unversioned "
                                 "values; disable it with consistency "
                                 "modes")
        if self.antientropy_interval_us <= 0.0:
            raise ValueError("antientropy_interval_us must be positive")
        if self.repl_queue_cap < 0:
            raise ValueError("repl_queue_cap must be >= 0")
        if ";" in self.tenant or any(c.isspace() for c in self.tenant):
            raise ValueError("tenant must contain no whitespace or ';' "
                             "(it becomes a folded-stack frame)")
        KeySampler(self.keys, self.key_distribution, self.zipf_s)
        ValueSizeSampler(self.value_sizes)

    def needs_sockets(self) -> bool:
        """Whether workers must open stream sockets (transport or scans)."""
        return self.transport == "sockets" or self.scan_fraction > 0.0

    def with_load(self, load: float) -> "WorkloadSpec":
        """This spec at a different offered load (for capacity sweeps)."""
        return replace(self, load=load)
