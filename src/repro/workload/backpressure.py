"""Client-side adaptive backpressure for open-loop workloads.

An open-loop generator keeps offering load no matter what the service
says — that is the point of the open-loop model, and exactly what makes
it lethal past the knee: rejected work is re-offered as fresh work and
the arrival rate never relents.  :class:`BackpressureGovernor` is the
cooperative half of overload control (docs/OVERLOAD.md): it watches the
recent rejection fraction and stretches the inter-arrival gap
multiplicatively while the service is shedding, then decays back to
the nominal rate once acceptances dominate again — AIMD in spirit,
multiplicative in both directions so recovery is fast but bounded.

Deterministic on purpose: windows are *count*-based (every ``window``
outcomes, not every N microseconds), so the governor's decisions depend
only on the sequence of accept/reject outcomes the simulation already
fixed, never on wall-clock sampling.
"""

from __future__ import annotations

__all__ = ["BackpressureGovernor"]


class BackpressureGovernor:
    """Multiplicative slow-down of an open-loop arrival process.

    ``note(rejected)`` records one request outcome.  Every ``window``
    outcomes the rejection fraction is compared with ``target``: above
    it the slow-down factor grows by ``grow`` (capped at
    ``max_slowdown``); below ``target / 2`` it decays by ``decay``
    (floored at 1.0 — the governor never pushes *faster* than
    nominal); the band between holds steady.  The hysteresis matters:
    under sustained overload the doors keep shedding a trickle even
    once the rate is trimmed to capacity, and a governor that releases
    on any below-target window re-grows the backlog it just drained —
    while one that releases only on perfectly clean windows stays
    throttled forever on burst noise.  ``gap_scale()`` is the factor
    the arrival process multiplies its next inter-arrival gap by.
    """

    def __init__(self, window: int = 50, target: float = 0.05,
                 grow: float = 1.25, decay: float = 0.9,
                 max_slowdown: float = 8.0):
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 0.0 <= target < 1.0:
            raise ValueError("target must be in [0, 1)")
        if grow <= 1.0 or not 0.0 < decay < 1.0:
            raise ValueError("need grow > 1 and 0 < decay < 1")
        self.window = window
        self.target = target
        self.grow = grow
        self.decay = decay
        self.max_slowdown = max_slowdown
        self.slowdown = 1.0
        self.peak = 1.0
        self.adjustments = 0
        self._count = 0
        self._rejected = 0

    def note(self, rejected: bool) -> None:
        """Record one request outcome; fold the window when it fills."""
        self._count += 1
        if rejected:
            self._rejected += 1
        if self._count < self.window:
            return
        frac = self._rejected / self._count
        if frac > self.target:
            self.slowdown = min(self.slowdown * self.grow,
                                self.max_slowdown)
            self.adjustments += 1
        elif frac <= self.target / 2.0 and self.slowdown > 1.0:
            self.slowdown = max(self.slowdown * self.decay, 1.0)
            self.adjustments += 1
        self.peak = max(self.peak, self.slowdown)
        self._count = 0
        self._rejected = 0

    def gap_scale(self) -> float:
        """The factor to stretch the next inter-arrival gap by."""
        return self.slowdown
