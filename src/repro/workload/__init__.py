"""Seed-deterministic workload generation against the in-sim KV service.

The package splits into three pieces:

* :mod:`~repro.workload.spec` — :class:`WorkloadSpec` and the samplers
  (Poisson gaps, Zipf/uniform keys, discrete value sizes);
* :mod:`~repro.workload.engine` — :func:`run_workload`, which boots a
  machine, starts the service, and drives the traffic;
* :mod:`~repro.workload.report` — :class:`WorkloadReport`, the
  deterministic text report with the tail-latency table;
* :mod:`~repro.workload.recorder` — frozen request streams
  (:func:`record_stream`/:func:`load_stream`) replayed verbatim for
  exactly-paired A/Bs, plus the shaped scenarios (flash crowd,
  diurnal, skew shift).

See ``docs/WORKLOADS.md`` for the model and the CLI.
"""

from .engine import run_workload
from .recorder import (
    RecordedStream,
    diurnal,
    flash_crowd,
    load_stream,
    record_stream,
    save_stream,
    skew_shift,
)
from .report import WorkloadReport
from .spec import (
    DEFAULT_VALUE_SIZES,
    KeySampler,
    ValueSizeSampler,
    WorkloadSpec,
    exponential_gap_us,
    key_name,
    value_bytes,
)

__all__ = [
    "DEFAULT_VALUE_SIZES",
    "KeySampler",
    "RecordedStream",
    "ValueSizeSampler",
    "WorkloadReport",
    "WorkloadSpec",
    "diurnal",
    "exponential_gap_us",
    "flash_crowd",
    "key_name",
    "load_stream",
    "record_stream",
    "run_workload",
    "save_stream",
    "skew_shift",
    "value_bytes",
]
