"""Seed-deterministic workload generation against the in-sim KV service.

The package splits into three pieces:

* :mod:`~repro.workload.spec` — :class:`WorkloadSpec` and the samplers
  (Poisson gaps, Zipf/uniform keys, discrete value sizes);
* :mod:`~repro.workload.engine` — :func:`run_workload`, which boots a
  machine, starts the service, and drives the traffic;
* :mod:`~repro.workload.report` — :class:`WorkloadReport`, the
  deterministic text report with the tail-latency table.

See ``docs/WORKLOADS.md`` for the model and the CLI.
"""

from .engine import run_workload
from .report import WorkloadReport
from .spec import (
    DEFAULT_VALUE_SIZES,
    KeySampler,
    ValueSizeSampler,
    WorkloadSpec,
    exponential_gap_us,
    key_name,
    value_bytes,
)

__all__ = [
    "DEFAULT_VALUE_SIZES",
    "KeySampler",
    "ValueSizeSampler",
    "WorkloadReport",
    "WorkloadSpec",
    "exponential_gap_us",
    "key_name",
    "run_workload",
    "value_bytes",
]
