"""Analytic latency decomposition and shared latency statistics.

Two halves live here.  The first builds the one-word latency budget
straight from :class:`~repro.hardware.config.MachineConfig` constants —
the same arithmetic a designer would do on a whiteboard — and names each
stage.  `tests/calibration/test_analysis.py` checks the analytic totals
against the simulated measurements, so the configuration, the simulator,
and the documentation cannot drift apart silently.

The second half is the repo-wide percentile toolkit: an exact
:func:`percentile` over a finite sample list, and a streaming
:class:`LatencyHistogram` with geometric buckets for workloads whose
sample counts would make keeping every latency wasteful.  Everything
that reports p50/p95/p99/p99.9 (``repro.workload``, the capacity sweep
in ``repro.bench``) goes through these two, so tail numbers are computed
one way everywhere.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .hardware.config import CacheMode, MachineConfig

__all__ = [
    "Stage",
    "LatencyBudget",
    "LatencyHistogram",
    "TAIL_PERCENTILES",
    "au_word_budget",
    "du_word_budget",
    "percentile",
]

# The canonical tail-latency report: median plus the three tails the
# serving literature quotes.  Reports iterate this tuple so every table
# lists the same columns in the same order.
TAIL_PERCENTILES: Tuple[float, ...] = (50.0, 95.0, 99.0, 99.9)


def percentile(samples: Sequence[float], p: float) -> float:
    """Exact percentile of a finite sample, with linear interpolation.

    ``p`` is in percent (``percentile(xs, 99.9)``).  Uses the common
    "linear" definition (NumPy's default): rank ``p/100 * (n-1)`` into
    the sorted samples, interpolating between neighbors.
    """
    if not 0.0 <= p <= 100.0:
        raise ValueError("percentile must be in [0, 100], got %r" % p)
    data = sorted(samples)
    if not data:
        raise ValueError("percentile of an empty sample")
    if len(data) == 1:
        return data[0]
    rank = (p / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    return data[lo] + (data[hi] - data[lo]) * (rank - lo)


class LatencyHistogram:
    """A streaming latency histogram with geometric (log-scale) buckets.

    Memory is bounded by the *dynamic range* of the samples, not their
    count, so the workload engine can record one entry per request
    without keeping the requests.  Bucket ``i >= 1`` covers
    ``(resolution * growth**(i-1), resolution * growth**i]``; everything
    at or below ``resolution`` lands in bucket 0.  With the default
    ``growth`` of 1.02 a reported percentile is within 2% (one bucket)
    of the exact value, and the exact ``min``/``max`` are kept so the
    extreme percentiles are clamped to real samples.
    """

    __slots__ = ("name", "count", "total", "min", "max",
                 "_resolution", "_growth", "_log_growth", "_buckets")

    def __init__(self, name: str = "latency", resolution: float = 0.01,
                 growth: float = 1.02):
        if resolution <= 0.0:
            raise ValueError("resolution must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._resolution = resolution
        self._growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}

    def record(self, value: float) -> None:
        """Add one sample (non-negative; microseconds by convention)."""
        if value < 0.0:
            raise ValueError("latency samples cannot be negative: %r" % value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if value <= self._resolution:
            index = 0
        else:
            index = 1 + int(math.log(value / self._resolution)
                            / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def extend(self, values: Iterable[float]) -> None:
        """Record every value in ``values``."""
        for value in values:
            self.record(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same geometry) into this one."""
        if (other._resolution != self._resolution
                or other._growth != self._growth):
            raise ValueError("cannot merge histograms with different buckets")
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
            self.max = other.max if self.max is None else max(self.max, other.max)
        for index, n in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + n

    @property
    def mean(self) -> float:
        if not self.count:
            raise ValueError("histogram %r has no samples" % self.name)
        return self.total / self.count

    def percentile(self, p: float) -> float:
        """The latency at percentile ``p`` (upper bucket edge, clamped).

        Bounded above by the bucket width: at most ``growth``-times the
        exact sample, and never outside the observed ``[min, max]``.
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100], got %r" % p)
        if not self.count:
            raise ValueError("histogram %r has no samples" % self.name)
        assert self.min is not None and self.max is not None
        if p == 0.0:
            return self.min
        target = (p / 100.0) * self.count
        cumulative = 0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if cumulative >= target:
                edge = self._resolution * math.exp(self._log_growth * index)
                return max(self.min, min(self.max, edge))
        return self.max

    def percentiles(self, ps: Sequence[float] = TAIL_PERCENTILES) -> Dict[float, float]:
        """``{p: latency}`` for each requested percentile."""
        return {p: self.percentile(p) for p in ps}

    def summary(self) -> str:
        """One line: count, mean, and the canonical tail percentiles."""
        if not self.count:
            return "%s: no samples" % self.name
        tails = " ".join("p%s=%.2f" % (("%g" % p), self.percentile(p))
                         for p in TAIL_PERCENTILES)
        return "%s: n=%d mean=%.2f %s max=%.2f" % (
            self.name, self.count, self.mean, tails, self.max)


@dataclass
class Stage:
    name: str
    microseconds: float


@dataclass
class LatencyBudget:
    """A named decomposition of one transfer's latency."""

    title: str
    stages: List[Stage]

    @property
    def total(self) -> float:
        return sum(stage.microseconds for stage in self.stages)

    def report(self) -> str:
        """The budget as aligned text, one line per stage."""
        width = max(len(s.name) for s in self.stages)
        lines = [self.title]
        for stage in self.stages:
            lines.append("  %-*s %6.2f us" % (width, stage.name, stage.microseconds))
        lines.append("  %-*s %6.2f us" % (width, "TOTAL", self.total))
        return "\n".join(lines)


def _network_stages(config: MachineConfig, payload: int, hops: int) -> List[Stage]:
    wire_bytes = payload + config.packet_header_bytes
    return [
        Stage("packetize + FIFO entry", config.packetize_latency),
        Stage("arbiter + NIC injection", config.nic_injection_latency),
        Stage("NIC<->router handoffs", 2 * config.nic_link_latency),
        Stage("router hops (%d)" % hops, hops * config.router_hop_latency),
        Stage("wire time (%dB)" % wire_bytes, wire_bytes / config.link_bandwidth),
        Stage("IPT lookup", config.ipt_lookup),
        Stage("incoming DMA setup", config.incoming_dma_setup),
        Stage("EISA DMA write", payload / config.eisa_dma_bandwidth),
    ]


def _poll_stage(config: MachineConfig, mode: CacheMode) -> Stage:
    cost = config.read_cost(mode, config.word_size) + config.costs.vmmc_poll_check
    return Stage("receiver poll detect", cost)


def au_word_budget(config: Optional[MachineConfig] = None,
                   cache_mode: CacheMode = CacheMode.WRITE_THROUGH,
                   hops: int = 1) -> LatencyBudget:
    """The 4.75 us (write-through) / 3.7 us (uncached) decomposition.

    Assumes a non-combining page, as the latency-optimal configuration
    uses (a combining page would add its flush-timer wait).
    """
    config = config or MachineConfig.shrimp_prototype()
    word = config.word_size
    stages = [
        Stage("sender store (%s)" % cache_mode.value, config.write_cost(cache_mode, word)),
        Stage("snoop + OPT lookup", config.snoop_opt_lookup),
    ]
    stages += _network_stages(config, word, hops)
    stages.append(_poll_stage(config, cache_mode))
    return LatencyBudget("AU one-word transfer (%s)" % cache_mode.value, stages)


def du_word_budget(config: Optional[MachineConfig] = None,
                   cache_mode: CacheMode = CacheMode.WRITE_THROUGH,
                   hops: int = 1) -> LatencyBudget:
    """The 7.6 us deliberate-update decomposition."""
    config = config or MachineConfig.shrimp_prototype()
    word = config.word_size
    stages = [
        Stage("vmmc_send bookkeeping", config.costs.vmmc_send_call),
        Stage("2 EISA PIO accesses", 2 * config.eisa_pio_access),
        Stage("DU engine setup", config.du_engine_setup),
        Stage("DMA read setup", config.du_dma_read_setup),
        Stage("EISA DMA read", word / config.eisa_dma_bandwidth),
    ]
    stages += _network_stages(config, word, hops)
    stages.append(_poll_stage(config, cache_mode))
    return LatencyBudget("DU one-word transfer (%s)" % cache_mode.value, stages)
