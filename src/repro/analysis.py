"""Analytic latency decomposition of the VMMC datapaths.

Builds the one-word latency budget straight from
:class:`~repro.hardware.config.MachineConfig` constants — the same
arithmetic a designer would do on a whiteboard — and names each stage.
`tests/calibration/test_analysis.py` checks the analytic totals against
the simulated measurements, so the configuration, the simulator, and
the documentation cannot drift apart silently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .hardware.config import CacheMode, MachineConfig

__all__ = ["Stage", "LatencyBudget", "au_word_budget", "du_word_budget"]


@dataclass
class Stage:
    name: str
    microseconds: float


@dataclass
class LatencyBudget:
    """A named decomposition of one transfer's latency."""

    title: str
    stages: List[Stage]

    @property
    def total(self) -> float:
        return sum(stage.microseconds for stage in self.stages)

    def report(self) -> str:
        """The budget as aligned text, one line per stage."""
        width = max(len(s.name) for s in self.stages)
        lines = [self.title]
        for stage in self.stages:
            lines.append("  %-*s %6.2f us" % (width, stage.name, stage.microseconds))
        lines.append("  %-*s %6.2f us" % (width, "TOTAL", self.total))
        return "\n".join(lines)


def _network_stages(config: MachineConfig, payload: int, hops: int) -> List[Stage]:
    wire_bytes = payload + config.packet_header_bytes
    return [
        Stage("packetize + FIFO entry", config.packetize_latency),
        Stage("arbiter + NIC injection", config.nic_injection_latency),
        Stage("NIC<->router handoffs", 2 * config.nic_link_latency),
        Stage("router hops (%d)" % hops, hops * config.router_hop_latency),
        Stage("wire time (%dB)" % wire_bytes, wire_bytes / config.link_bandwidth),
        Stage("IPT lookup", config.ipt_lookup),
        Stage("incoming DMA setup", config.incoming_dma_setup),
        Stage("EISA DMA write", payload / config.eisa_dma_bandwidth),
    ]


def _poll_stage(config: MachineConfig, mode: CacheMode) -> Stage:
    cost = config.read_cost(mode, config.word_size) + config.costs.vmmc_poll_check
    return Stage("receiver poll detect", cost)


def au_word_budget(config: Optional[MachineConfig] = None,
                   cache_mode: CacheMode = CacheMode.WRITE_THROUGH,
                   hops: int = 1) -> LatencyBudget:
    """The 4.75 us (write-through) / 3.7 us (uncached) decomposition.

    Assumes a non-combining page, as the latency-optimal configuration
    uses (a combining page would add its flush-timer wait).
    """
    config = config or MachineConfig.shrimp_prototype()
    word = config.word_size
    stages = [
        Stage("sender store (%s)" % cache_mode.value, config.write_cost(cache_mode, word)),
        Stage("snoop + OPT lookup", config.snoop_opt_lookup),
    ]
    stages += _network_stages(config, word, hops)
    stages.append(_poll_stage(config, cache_mode))
    return LatencyBudget("AU one-word transfer (%s)" % cache_mode.value, stages)


def du_word_budget(config: Optional[MachineConfig] = None,
                   cache_mode: CacheMode = CacheMode.WRITE_THROUGH,
                   hops: int = 1) -> LatencyBudget:
    """The 7.6 us deliberate-update decomposition."""
    config = config or MachineConfig.shrimp_prototype()
    word = config.word_size
    stages = [
        Stage("vmmc_send bookkeeping", config.costs.vmmc_send_call),
        Stage("2 EISA PIO accesses", 2 * config.eisa_pio_access),
        Stage("DU engine setup", config.du_engine_setup),
        Stage("DMA read setup", config.du_dma_read_setup),
        Stage("EISA DMA read", word / config.eisa_dma_bandwidth),
    ]
    stages += _network_stages(config, word, hops)
    stages.append(_poll_stage(config, cache_mode))
    return LatencyBudget("DU one-word transfer (%s)" % cache_mode.value, stages)
