"""Test/benchmark scaffolding: build systems, coordinate processes.

Real SHRIMP programs exchange bootstrap information (export ids, ports)
out of band — over NFS files or the Ethernet.  :class:`Rendezvous` is
that side channel for simulated programs: a zero-cost, event-based
mailbox keyed by name.  It deliberately carries *no* simulated time —
anything timing-relevant must flow through the modeled channels.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .hardware.config import MachineConfig
from .kernel.system import ShrimpSystem
from .sim import Event, FaultPlan

__all__ = ["Rendezvous", "audit_invariants", "make_system"]

# Hook for the tests/conftest.py invariant fixture: while a test has
# this set to a list, every system built by :func:`make_system` is
# appended so the fixture can audit conservation properties afterwards.
_audit_registry: Optional[List[ShrimpSystem]] = None


def audit_invariants(system: ShrimpSystem) -> List[str]:
    """Audit conservation properties of a (finished) simulated run.

    Returns human-readable violations, empty when healthy:

    * mesh packet and byte conservation — everything routed was
      delivered, dropped, or is still in flight;
    * no negative busy/wait time on any registered resource, and no
      serial resource busier than the elapsed simulated time;
    * queue (Store) statistics are sane — non-negative put counts,
      high-water marks, and occupancy integrals.  Application-level
      queues (the KV service's replication queues, the workload
      engine's dispatch queue) register themselves in the machine
      metrics registry precisely so this audit covers them;
    * every tracer span that was opened was also closed — including
      the per-request ``kv.*`` spans the service emits.

    The checks read counters the hardware keeps anyway, so auditing
    costs nothing and runs after every test via ``tests/conftest.py``.
    """
    problems: List[str] = []
    mesh = system.machine.mesh
    for unit in ("packets", "bytes"):
        routed = getattr(mesh, unit + "_routed")
        delivered = getattr(mesh, unit + "_delivered")
        dropped = getattr(mesh, unit + "_dropped")
        in_flight = getattr(mesh, unit + "_in_flight")
        if routed != delivered + dropped + in_flight:
            problems.append(
                "mesh %s conservation violated: routed=%s != delivered=%s "
                "+ dropped=%s + in-flight=%s"
                % (unit, routed, delivered, dropped, in_flight))
        if min(routed, delivered, dropped, in_flight) < 0:
            problems.append("mesh %s counter went negative" % unit)
    now = system.sim.now
    for snap in system.machine.metrics.snapshot():
        name = snap.get("name")
        for key in ("busy_time", "wait_time"):
            if snap.get(key, 0.0) < 0.0:
                problems.append("%s: negative %s (%r)"
                                % (name, key, snap[key]))
        # Serial contention points (channels, engines) cannot be busy
        # longer than the clock has run.
        if snap.get("kind") in ("channel", "engine"):
            if snap.get("busy_time", 0.0) > now + 1e-6:
                problems.append(
                    "%s: busy_time %.3f exceeds elapsed time %.3f"
                    % (name, snap["busy_time"], now))
        if snap.get("kind") == "store":
            if snap.get("count", 0) < 0 or snap.get("high_water", 0) < 0:
                problems.append("%s: negative queue counters" % name)
            if snap.get("mean_depth", 0.0) < -1e-9:
                problems.append("%s: negative mean queue depth (%r)"
                                % (name, snap["mean_depth"]))
    for span in system.machine.tracer.spans:
        if span.end is None:
            problems.append(
                "tracer span %r (%s, track %s) opened at t=%.3f never closed"
                % (span.name, span.category, span.track, span.start))
    return problems


class Rendezvous:
    """A named mailbox for out-of-band coordination between sim processes.

    ``put(key, value)`` stores a value; ``get(key)`` returns an event
    that fires (immediately if already stored) with the value.  Each key
    holds exactly one value, write-once.
    """

    def __init__(self, system: ShrimpSystem):
        self.sim = system.sim
        self._values: Dict[str, Any] = {}
        self._waiters: Dict[str, list] = {}

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (write-once) and wake waiters."""
        if key in self._values:
            raise KeyError("rendezvous key %r already set" % key)
        self._values[key] = value
        for event in self._waiters.pop(key, []):
            event.succeed(value)

    def get(self, key: str) -> Event:
        """Event that fires with the value once ``key`` is put."""
        event = Event(self.sim, name="rendezvous(%s)" % key)
        if key in self._values:
            event.succeed(self._values[key])
        else:
            self._waiters.setdefault(key, []).append(event)
        return event

    def peek(self, key: str) -> Optional[Any]:
        """The value if already put, else None (never blocks)."""
        return self._values.get(key)


def make_system(config: Optional[MachineConfig] = None,
                fault_plan: Optional[FaultPlan] = None,
                **config_overrides) -> ShrimpSystem:
    """A booted prototype system, optionally with config field overrides.

    ``fault_plan`` arms the machine's fault injector (docs/FAULTS.md);
    without one the fault sites stay disabled and cost nothing.
    """
    if config is None:
        config = MachineConfig.shrimp_prototype()
    if config_overrides:
        from dataclasses import replace

        config = replace(config, **config_overrides)
    system = ShrimpSystem(config, fault_plan=fault_plan)
    if _audit_registry is not None:
        _audit_registry.append(system)
    return system
