"""Test/benchmark scaffolding: build systems, coordinate processes.

Real SHRIMP programs exchange bootstrap information (export ids, ports)
out of band — over NFS files or the Ethernet.  :class:`Rendezvous` is
that side channel for simulated programs: a zero-cost, event-based
mailbox keyed by name.  It deliberately carries *no* simulated time —
anything timing-relevant must flow through the modeled channels.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .hardware.config import MachineConfig
from .kernel.system import ShrimpSystem
from .sim import Event

__all__ = ["Rendezvous", "make_system"]


class Rendezvous:
    """A named mailbox for out-of-band coordination between sim processes.

    ``put(key, value)`` stores a value; ``get(key)`` returns an event
    that fires (immediately if already stored) with the value.  Each key
    holds exactly one value, write-once.
    """

    def __init__(self, system: ShrimpSystem):
        self.sim = system.sim
        self._values: Dict[str, Any] = {}
        self._waiters: Dict[str, list] = {}

    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (write-once) and wake waiters."""
        if key in self._values:
            raise KeyError("rendezvous key %r already set" % key)
        self._values[key] = value
        for event in self._waiters.pop(key, []):
            event.succeed(value)

    def get(self, key: str) -> Event:
        """Event that fires with the value once ``key`` is put."""
        event = Event(self.sim, name="rendezvous(%s)" % key)
        if key in self._values:
            event.succeed(self._values[key])
        else:
            self._waiters.setdefault(key, []).append(event)
        return event

    def peek(self, key: str) -> Optional[Any]:
        """The value if already put, else None (never blocks)."""
        return self._values.get(key)


def make_system(config: Optional[MachineConfig] = None, **config_overrides) -> ShrimpSystem:
    """A booted prototype system, optionally with config field overrides."""
    if config is None:
        config = MachineConfig.shrimp_prototype()
    if config_overrides:
        from dataclasses import replace

        config = replace(config, **config_overrides)
    return ShrimpSystem(config)
